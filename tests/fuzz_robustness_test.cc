// Robustness fuzzing: the text-facing parsers (privacy DSL, SQL, CSV) and
// the database load path must never crash or hang on arbitrary input —
// only return OK or a clean error status. Seeds are fixed; failures are
// reproducible.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "common/crc32c.h"
#include "common/macros.h"
#include "common/rng.h"
#include "privacy/policy_dsl.h"
#include "relational/csv.h"
#include "relational/sql.h"
#include "server/net/framer.h"
#include "server/request.h"
#include "storage/database_io.h"
#include "storage/journal.h"
#include "tests/test_util.h"

namespace ppdb {
namespace {

// Characters weighted toward the parsers' special syntax so the fuzz
// reaches deep branches, plus raw bytes.
std::string RandomText(Rng& rng, size_t max_len) {
  static constexpr char kAlphabet[] =
      "abcdefghij0123456789 \t\n,:=<>()'\"#\\*.-_";
  std::string out;
  size_t len = rng.NextBounded(max_len + 1);
  out.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    if (rng.NextBool(0.9)) {
      out += kAlphabet[rng.NextBounded(sizeof(kAlphabet) - 1)];
    } else {
      out += static_cast<char>(rng.NextBounded(256));
    }
  }
  return out;
}

// Splices random mutations into a valid document, which exercises the
// later stages of each parser.
std::string Mutate(const std::string& seed_text, Rng& rng) {
  std::string out = seed_text;
  int edits = static_cast<int>(rng.NextBounded(8)) + 1;
  for (int e = 0; e < edits && !out.empty(); ++e) {
    size_t pos = rng.NextBounded(out.size());
    switch (rng.NextBounded(3)) {
      case 0:
        out[pos] = static_cast<char>(rng.NextBounded(256));
        break;
      case 1:
        out.insert(pos, RandomText(rng, 6));
        break;
      default:
        out.erase(pos, rng.NextBounded(4) + 1);
        break;
    }
  }
  return out;
}

class FuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzTest, PolicyDslNeverCrashes) {
  Rng rng(GetParam());
  const std::string valid = R"(
purpose care
policy weight for care: visibility=house, granularity=specific, retention=year
pref 1 weight for care: visibility=house, granularity=partial, retention=year
attr_sensitivity weight = 4
threshold 1 = 10
)";
  for (int i = 0; i < 200; ++i) {
    std::string input =
        rng.NextBool(0.5) ? RandomText(rng, 300) : Mutate(valid, rng);
    Result<privacy::PrivacyConfig> result =
        privacy::ParsePrivacyConfig(input);
    if (result.ok()) {
      // Whatever parsed must also re-serialize and re-parse.
      std::string round = privacy::SerializePrivacyConfig(result.value());
      EXPECT_OK(privacy::ParsePrivacyConfig(round).status()) << input;
    }
  }
}

TEST_P(FuzzTest, SqlParserNeverCrashes) {
  Rng rng(GetParam() + 500);
  const std::string valid =
      "SELECT city, COUNT(*) AS n FROM people WHERE age > 20 AND city != "
      "'x' GROUP BY city HAVING n >= 1 ORDER BY n DESC LIMIT 5";
  for (int i = 0; i < 300; ++i) {
    std::string input =
        rng.NextBool(0.5) ? RandomText(rng, 200) : Mutate(valid, rng);
    // Must return, not crash; status content is unconstrained.
    (void)rel::ParseSql(input);
  }
}

TEST_P(FuzzTest, CsvParserNeverCrashes) {
  Rng rng(GetParam() + 900);
  const std::string valid =
      "provider_id,age,weight\n1,34,81.5\n2,\"2,8\",64.2\n";
  rel::Schema schema =
      rel::Schema::Create({{"age", rel::DataType::kInt64, ""},
                           {"weight", rel::DataType::kDouble, ""}})
          .value();
  for (int i = 0; i < 300; ++i) {
    std::string input =
        rng.NextBool(0.5) ? RandomText(rng, 200) : Mutate(valid, rng);
    (void)rel::ParseCsv(input);
    (void)rel::TableFromCsv("t", schema, input);
  }
}

// The serve request parser fronts an untrusted byte stream; arbitrary
// lines — malformed commands, oversized lines, embedded NULs and control
// bytes — must come back as clean statuses, and whatever it accepts must
// format into a single well-terminated response line.
TEST_P(FuzzTest, ServeRequestParserNeverCrashes) {
  Rng rng(GetParam() + 1700);
  const std::string valid_lines[] = {
      "ping",
      "@250 analyze",
      "certify 0.5",
      "estimate pw 1000 42",
      "whatif visibility 4 0.5",
      "search 16 1.5",
      "event add 7 2.5",
      "event pref 7 weight care 1 2 3",
      "event unpref 7 weight care",
      "event threshold 7 9",
      "query provider 7",
      "query pw",
      "save",
      "drain",
  };
  for (int i = 0; i < 400; ++i) {
    std::string input;
    switch (rng.NextBounded(4)) {
      case 0:
        input = RandomText(rng, 200);
        break;
      case 1:
        input = Mutate(valid_lines[rng.NextBounded(std::size(valid_lines))],
                       rng);
        break;
      case 2: {
        // Oversized lines, right around the cap.
        size_t len = server::kMaxRequestLine - 2 + rng.NextBounded(5);
        input.assign(len, 'a');
        input[rng.NextBounded(len)] = ' ';
        break;
      }
      default: {
        // Embedded NULs and raw control bytes in otherwise-valid requests.
        input = valid_lines[rng.NextBounded(std::size(valid_lines))];
        size_t pos = rng.NextBounded(input.size() + 1);
        input.insert(pos, 1, static_cast<char>(rng.NextBounded(32)));
        break;
      }
    }
    Result<server::Request> parsed = server::ParseRequest(input);
    if (parsed.ok()) {
      // Anything accepted must classify and re-serialize cleanly.
      (void)parsed.value().IsCheap();
      (void)parsed.value().IsWrite();
      (void)server::RequestKindName(parsed.value().kind);
    } else {
      std::string line = server::FormatResponse(
          static_cast<int64_t>(i), server::Response{parsed.status(), {}});
      ASSERT_FALSE(line.empty());
      EXPECT_EQ(line.find('\n'), line.size() - 1) << input;
      EXPECT_EQ(line.find('\0'), std::string::npos) << input;
    }
  }
}

// Socket framing: the TCP front-end's LineFramer sits directly on
// untrusted bytes, delivered in arbitrary read-sized pieces. Random
// sessions — valid requests, mutated garbage, embedded NULs, oversized
// lines, truncated tails — fed through random split points must never
// crash, never hang, never hold more than O(cap) memory, and every
// delivered line must parse (or error) cleanly.
TEST_P(FuzzTest, SocketFramingNeverCrashesOrDesyncs) {
  Rng rng(GetParam() + 2100);
  const std::string valid_lines[] = {
      "ping", "analyze", "query pw", "event add 7 2.5", "stats", "drain",
  };
  const size_t cap = 128;  // small cap reaches the discard path often

  for (int session = 0; session < 60; ++session) {
    // Assemble a session byte stream.
    std::string stream;
    int lines = static_cast<int>(rng.NextBounded(12)) + 1;
    for (int l = 0; l < lines; ++l) {
      switch (rng.NextBounded(5)) {
        case 0:
          stream += valid_lines[rng.NextBounded(std::size(valid_lines))];
          break;
        case 1:
          stream += Mutate(
              valid_lines[rng.NextBounded(std::size(valid_lines))], rng);
          break;
        case 2:
          stream += RandomText(rng, 64);
          break;
        case 3:
          // Oversized, straddling the cap.
          stream += std::string(cap - 2 + rng.NextBounded(8), 'x');
          break;
        default:
          // Raw control bytes and NULs.
          stream += std::string(1 + rng.NextBounded(4),
                                static_cast<char>(rng.NextBounded(32)));
          break;
      }
      if (rng.NextBool(0.9)) stream += rng.NextBool(0.3) ? "\r\n" : "\n";
      // else: the next fragment glues on — or the stream ends truncated.
    }

    // Drive the framer exactly as the event loop does: feed a random-sized
    // chunk (reads split anywhere), drain lines, repeat; then EOF.
    server::net::LineFramer framer(cap);
    size_t at = 0;
    size_t delivered = 0;
    server::net::LineFramer::Line line;
    while (at < stream.size()) {
      size_t n = 1 + rng.NextBounded(stream.size() - at);
      framer.Feed(std::string_view(stream).substr(at, n));
      at += n;
      ASSERT_LE(framer.buffered(), cap);  // memory stays O(cap)
      while (framer.Next(&line)) {
        ++delivered;
        ASSERT_LE(line.text.size(), cap);
        if (line.oversized) continue;  // answered line_too_long, no parse
        // Whatever the framer delivers, the parser must field cleanly.
        Result<server::Request> parsed = server::ParseRequest(line.text);
        if (parsed.ok()) (void)parsed.value().IsCheap();
      }
    }
    framer.Finish();
    while (framer.Next(&line)) {
      ++delivered;
      ASSERT_LE(line.text.size(), cap);
    }
    // Every newline yields exactly one line; a truncated tail adds one.
    size_t newlines =
        static_cast<size_t>(std::count(stream.begin(), stream.end(), '\n'));
    bool truncated_tail = !stream.empty() && stream.back() != '\n';
    EXPECT_EQ(delivered, newlines + (truncated_tail ? 1 : 0))
        << "session " << session;
  }
}

// Corrupted database directories: MANIFEST, ledger.csv, audit.csv (and the
// CURRENT pointer) are byte-fuzzed in place; LoadDatabase must come back
// with a clean Status every time — an ok load of a luckily-still-valid
// mutation is also acceptable — and never crash.
TEST_P(FuzzTest, DatabaseLoadNeverCrashes) {
  namespace fs = std::filesystem;
  Rng rng(GetParam() + 1300);

  fs::path dir = fs::temp_directory_path() /
                 ("ppdb_fuzz_load_" + std::to_string(::getpid()) + "_" +
                  std::to_string(GetParam()));
  fs::remove_all(dir);

  storage::Database database;
  auto config = privacy::ParsePrivacyConfig(R"(
purpose care
policy weight for care: visibility=house, granularity=specific, retention=year
pref 1 weight for care: visibility=house, granularity=partial, retention=year
attr_sensitivity weight = 4
threshold 1 = 10
)");
  PPDB_CHECK_OK(config.status());
  database.config = std::move(config).value();
  rel::Schema schema =
      rel::Schema::Create({{"weight", rel::DataType::kDouble, ""}}).value();
  rel::Table* table =
      database.catalog.CreateTable("patients", schema).value();
  PPDB_CHECK_OK(table->Insert(1, {rel::Value::Double(81.5)}));
  database.ledger.RecordIngest("patients", 1, "weight", 5);
  audit::AuditEvent event;
  event.timestamp = 9;
  event.kind = audit::AuditEventKind::kCellSuppressed;
  event.requester = "fuzzer";
  event.table = "patients";
  database.log.Append(std::move(event));
  PPDB_CHECK_OK(storage::SaveDatabase(dir.string(), database));

  std::string gen;
  {
    std::ifstream in(dir / "CURRENT");
    std::getline(in, gen);
  }
  const fs::path targets[] = {dir / gen / "MANIFEST",
                              dir / gen / "ledger.csv",
                              dir / gen / "audit.csv", dir / "CURRENT"};
  std::string originals[std::size(targets)];
  for (size_t t = 0; t < std::size(targets); ++t) {
    std::ifstream in(targets[t], std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    originals[t] = std::move(buffer).str();
  }

  for (int i = 0; i < 150; ++i) {
    size_t t = rng.NextBounded(std::size(targets));
    std::string corrupted = rng.NextBool(0.5) ? RandomText(rng, 300)
                                              : Mutate(originals[t], rng);
    {
      std::ofstream out(targets[t], std::ios::binary | std::ios::trunc);
      out << corrupted;
    }
    // Must return (ok or clean error), not crash or hang.
    (void)storage::LoadDatabase(dir.string());
    std::ofstream out(targets[t], std::ios::binary | std::ios::trunc);
    out << originals[t];
  }
  fs::remove_all(dir);
}

// The journal reader fronts whatever bytes a crash left on disk: random
// garbage, truncated frames, bit-flipped records. Scanning must never
// crash, never return a payload whose CRC does not check out, and replay
// must never apply an event a valid frame did not carry.
TEST_P(FuzzTest, JournalReaderNeverCrashesNeverAppliesBadFrames) {
  Rng rng(GetParam() + 2900);

  // A valid segment to mutate: header + a handful of real event frames.
  std::string valid = "ppdb-journal v1 base=gen-0\n";
  const std::string payloads[] = {
      "add 9 5", "pref 9 weight care 1 1 1", "threshold 9 2", "remove 9",
  };
  for (const std::string& payload : payloads) {
    std::string frame;
    auto put32 = [&frame](uint32_t v) {
      frame.push_back(static_cast<char>(v & 0xFF));
      frame.push_back(static_cast<char>((v >> 8) & 0xFF));
      frame.push_back(static_cast<char>((v >> 16) & 0xFF));
      frame.push_back(static_cast<char>((v >> 24) & 0xFF));
    };
    put32(static_cast<uint32_t>(payload.size()));
    put32(Crc32c(payload));
    frame += payload;
    valid += frame;
  }

  auto base_config = privacy::ParsePrivacyConfig(R"(
purpose care
policy weight for care: visibility=house, granularity=specific, retention=year
pref 1 weight for care: visibility=house, granularity=partial, retention=year
threshold 1 = 10
)");
  PPDB_CHECK_OK(base_config.status());

  for (int i = 0; i < 300; ++i) {
    std::string input;
    switch (rng.NextBounded(3)) {
      case 0:
        input = RandomText(rng, 300);
        break;
      case 1:
        input = Mutate(valid, rng);
        break;
      default:
        // Truncation at an arbitrary byte — the torn-tail path.
        input = valid.substr(0, rng.NextBounded(valid.size() + 1));
        break;
    }
    Result<storage::JournalScan> scan = storage::ScanJournalSegment(input);
    if (scan.ok()) {
      // Every returned payload must be a CRC-checked frame actually present
      // in the input — never synthesized, never a torn prefix.
      for (const std::string& payload : scan->payloads) {
        EXPECT_NE(input.find(payload), std::string::npos);
      }
      ASSERT_LE(scan->valid_bytes, input.size());
    }
    // Replay must come back with a clean status either way, and whatever it
    // applied must leave the config serializable.
    privacy::PrivacyConfig config = base_config.value();
    Result<storage::JournalReplayResult> replayed =
        storage::ReplayJournal(input, "gen-0", config);
    if (replayed.ok()) {
      (void)privacy::SerializePrivacyConfig(config);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest, ::testing::Range<uint64_t>(0, 6));

}  // namespace
}  // namespace ppdb

#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace ppdb::obs {
namespace {

TEST(CounterTest, ConcurrentAddsNeverLoseIncrements) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("hits", "test counter");

  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([counter] {
      for (int i = 0; i < kAddsPerThread; ++i) counter->Add();
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(counter->Value(), int64_t{kThreads} * kAddsPerThread);
}

// The registry concurrency contract: N threads hammering one histogram,
// and the totals come out exact — the shards never drop an Observe and
// integer-valued sums see no rounding.
TEST(HistogramTest, ConcurrentObservesHaveExactTotals) {
  MetricsRegistry registry;
  Histogram* histogram =
      registry.GetHistogram("latency", "test histogram", {1.0, 3.0, 5.0});

  constexpr int kThreads = 8;
  constexpr int kObsPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([histogram] {
      for (int i = 0; i < kObsPerThread; ++i) {
        histogram->Observe(static_cast<double>(i % 7));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  // Per thread: 1428 full 0..6 cycles (sum 21 each) plus 0+1+2+3.
  constexpr int64_t kSumPerThread = 1428 * 21 + 6;
  EXPECT_EQ(histogram->Count(), int64_t{kThreads} * kObsPerThread);
  EXPECT_DOUBLE_EQ(histogram->Sum(),
                   static_cast<double>(kThreads * kSumPerThread));

  // Bucket placement is by upper bound (le semantics): 0 and 1 land in
  // le=1, 2 and 3 in le=3, 4 and 5 in le=5, 6 in +Inf.
  std::vector<int64_t> cumulative = histogram->CumulativeCounts();
  ASSERT_EQ(cumulative.size(), 4u);
  constexpr int64_t kPerValue = kThreads * (kObsPerThread / 7);
  EXPECT_EQ(cumulative[0], 2 * kPerValue + kThreads * 2);  // 0,1 (+remainder)
  EXPECT_EQ(cumulative[3], int64_t{kThreads} * kObsPerThread);
}

TEST(HistogramTest, PercentileInterpolatesWithinBuckets) {
  MetricsRegistry registry;
  Histogram* histogram =
      registry.GetHistogram("lat", "test", {1.0, 2.0, 4.0});

  EXPECT_DOUBLE_EQ(histogram->Percentile(0.5), 0.0);  // empty

  histogram->Observe(0.5);
  histogram->Observe(1.5);
  histogram->Observe(3.0);
  histogram->Observe(10.0);  // +Inf bucket

  // One observation per bucket; quantile ranks interpolate linearly.
  EXPECT_DOUBLE_EQ(histogram->Percentile(0.125), 0.5);
  EXPECT_DOUBLE_EQ(histogram->Percentile(0.25), 1.0);
  EXPECT_DOUBLE_EQ(histogram->Percentile(0.5), 2.0);
  // A quantile in the +Inf bucket reports the highest finite bound.
  EXPECT_DOUBLE_EQ(histogram->Percentile(0.99), 4.0);
  EXPECT_DOUBLE_EQ(histogram->Percentile(1.0), 4.0);
}

TEST(RegistryTest, SameNameAndLabelsReturnTheSameInstrument) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("reqs", "requests", {{"kind", "ping"}});
  Counter* b = registry.GetCounter("reqs", "requests", {{"kind", "ping"}});
  Counter* c = registry.GetCounter("reqs", "requests", {{"kind", "stats"}});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(registry.num_families(), 1u);  // one family, two samples
}

TEST(RegistryTest, ConcurrentRegistrationConvergesOnOnePointer) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  std::vector<Counter*> seen(kThreads, nullptr);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, &seen, t] {
      for (int i = 0; i < 1000; ++i) {
        seen[t] = registry.GetCounter("shared", "shared counter");
        seen[t]->Add();
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(seen[t], seen[0]);
  EXPECT_EQ(seen[0]->Value(), int64_t{kThreads} * 1000);
}

TEST(RegistryTest, TypeConflictDetachesInsteadOfCorrupting) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("thing", "a counter");
  counter->Add(3);

  // Re-registering the name as a gauge yields a working instrument that
  // is never exported; the original family is untouched.
  Gauge* gauge = registry.GetGauge("thing", "now a gauge?");
  ASSERT_NE(gauge, nullptr);
  gauge->Set(42.0);
  EXPECT_DOUBLE_EQ(gauge->Value(), 42.0);

  std::string text = registry.RenderPrometheus();
  EXPECT_NE(text.find("thing 3\n"), std::string::npos);
  EXPECT_EQ(text.find("42"), std::string::npos);
  EXPECT_EQ(registry.num_families(), 1u);
}

TEST(RegistryTest, RenderPrometheusExposition) {
  MetricsRegistry registry;
  registry.GetCounter("ppdb_test_total", "Things counted.")->Add(7);
  registry.GetGauge("ppdb_test_depth", "Depth.", {{"lane", "priority"}})
      ->Set(2.5);
  Histogram* h = registry.GetHistogram("ppdb_test_seconds", "Latency.",
                                       {0.00025, 0.5});
  h->Observe(0.0001);
  h->Observe(0.1);
  h->Observe(9.0);

  std::string text = registry.RenderPrometheus();
  EXPECT_NE(text.find("# HELP ppdb_test_total Things counted.\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE ppdb_test_total counter\n"), std::string::npos);
  EXPECT_NE(text.find("ppdb_test_total 7\n"), std::string::npos);
  EXPECT_NE(text.find("ppdb_test_depth{lane=\"priority\"} 2.5\n"),
            std::string::npos);
  // Bucket bounds render shortest-round-trip, cumulative, with +Inf.
  EXPECT_NE(text.find("ppdb_test_seconds_bucket{le=\"0.00025\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("ppdb_test_seconds_bucket{le=\"0.5\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("ppdb_test_seconds_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("ppdb_test_seconds_count 3\n"), std::string::npos);
}

TEST(RegistryTest, SanitizesNamesAndEscapesLabelValues) {
  MetricsRegistry registry;
  registry
      .GetCounter("bad-name.total", "odd chars",
                  {{"path", "a\"b\\c\nd"}})
      ->Add();
  std::string text = registry.RenderPrometheus();
  EXPECT_NE(text.find("bad_name_total"), std::string::npos);
  EXPECT_NE(text.find("{path=\"a\\\"b\\\\c\\nd\"} 1\n"), std::string::npos);
  // The raw newline must not survive inside a sample line.
  EXPECT_EQ(text.find("c\nd"), std::string::npos);
}

}  // namespace
}  // namespace ppdb::obs

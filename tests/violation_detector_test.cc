#include "violation/detector.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace ppdb::violation {
namespace {

using privacy::DimensionSensitivity;
using privacy::PrivacyTuple;
using privacy::PurposeId;

class DetectorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    marketing_ = config_.purposes.Register("marketing").value();
    research_ = config_.purposes.Register("research").value();
  }

  privacy::PrivacyConfig config_;
  PurposeId marketing_, research_;
};

TEST_F(DetectorTest, NoPolicyNoViolations) {
  config_.preferences.ForProvider(1).Set("weight",
                                         PrivacyTuple{marketing_, 0, 0, 0});
  ViolationDetector detector(&config_);
  ASSERT_OK_AND_ASSIGN(ViolationReport report, detector.Analyze());
  EXPECT_EQ(report.num_providers(), 1);
  EXPECT_EQ(report.num_violated, 0);
  EXPECT_DOUBLE_EQ(report.ProbabilityOfViolation(), 0.0);
}

TEST_F(DetectorTest, EmptyPopulationIsEmptyReport) {
  ASSERT_OK(config_.policy.Add("weight", PrivacyTuple{marketing_, 3, 3, 3}));
  ViolationDetector detector(&config_);
  ASSERT_OK_AND_ASSIGN(ViolationReport report, detector.Analyze());
  EXPECT_EQ(report.num_providers(), 0);
  EXPECT_DOUBLE_EQ(report.ProbabilityOfViolation(), 0.0);
}

TEST_F(DetectorTest, StrictExceedanceRequired) {
  // Policy equal to the preference on every dimension: no violation
  // (Def. 1 requires p[dim] < p'[dim], strictly).
  ASSERT_OK(config_.policy.Add("weight", PrivacyTuple{marketing_, 2, 2, 2}));
  config_.preferences.ForProvider(1).Set("weight",
                                         PrivacyTuple{marketing_, 2, 2, 2});
  ViolationDetector detector(&config_);
  ASSERT_OK_AND_ASSIGN(ProviderViolation pv, detector.AnalyzeProvider(1));
  EXPECT_FALSE(pv.violated);
  EXPECT_DOUBLE_EQ(pv.total_severity, 0.0);
}

TEST_F(DetectorTest, PurposeMismatchNeverViolates) {
  // Policy speaks about research; provider only states marketing... but
  // Def. 1's implicit rule kicks in for research. Disable it to isolate
  // the comp() semantics.
  ASSERT_OK(config_.policy.Add("weight", PrivacyTuple{research_, 3, 3, 3}));
  config_.preferences.ForProvider(1).Set("weight",
                                         PrivacyTuple{marketing_, 0, 0, 0});
  ViolationDetector::Options options;
  options.implicit_zero_preferences = false;
  ViolationDetector detector(&config_, options);
  ASSERT_OK_AND_ASSIGN(ProviderViolation pv, detector.AnalyzeProvider(1));
  EXPECT_FALSE(pv.violated);
}

TEST_F(DetectorTest, ImplicitZeroPreferenceTriggersViolation) {
  // Same setup, with Def. 1 semantics: the unstated research purpose is
  // treated as <i, a, research, 0, 0, 0> and the policy violates it.
  ASSERT_OK(config_.policy.Add("weight", PrivacyTuple{research_, 1, 0, 0}));
  config_.preferences.ForProvider(1).Set("weight",
                                         PrivacyTuple{marketing_, 3, 3, 3});
  ViolationDetector detector(&config_);
  ASSERT_OK_AND_ASSIGN(ProviderViolation pv, detector.AnalyzeProvider(1));
  EXPECT_TRUE(pv.violated);
  ASSERT_EQ(pv.incidents.size(), 1u);
  EXPECT_TRUE(pv.incidents[0].from_implicit_preference);
  EXPECT_EQ(pv.incidents[0].purpose, research_);
}

TEST_F(DetectorTest, StatedPreferencesNotMatchedByPolicyContributeNothing) {
  // Provider has a tight preference for research, but the policy only
  // mentions marketing (which the provider fully allows): no violation.
  ASSERT_OK(config_.policy.Add("weight", PrivacyTuple{marketing_, 1, 1, 1}));
  auto& prefs = config_.preferences.ForProvider(1);
  prefs.Set("weight", PrivacyTuple{marketing_, 3, 3, 4});
  prefs.Set("weight", PrivacyTuple{research_, 0, 0, 0});
  ViolationDetector detector(&config_);
  ASSERT_OK_AND_ASSIGN(ProviderViolation pv, detector.AnalyzeProvider(1));
  EXPECT_FALSE(pv.violated);
}

TEST_F(DetectorTest, MultipleAttributesAggregateBreadth) {
  ASSERT_OK(config_.policy.Add("weight", PrivacyTuple{marketing_, 2, 0, 0}));
  ASSERT_OK(config_.policy.Add("age", PrivacyTuple{marketing_, 2, 0, 0}));
  ASSERT_OK(config_.policy.Add("city", PrivacyTuple{marketing_, 0, 0, 0}));
  auto& prefs = config_.preferences.ForProvider(1);
  prefs.Set("weight", PrivacyTuple{marketing_, 0, 0, 0});
  prefs.Set("age", PrivacyTuple{marketing_, 0, 0, 0});
  prefs.Set("city", PrivacyTuple{marketing_, 0, 0, 0});
  ViolationDetector detector(&config_);
  ASSERT_OK_AND_ASSIGN(ProviderViolation pv, detector.AnalyzeProvider(1));
  EXPECT_TRUE(pv.violated);
  EXPECT_EQ(pv.num_attributes_violated, 2);
  EXPECT_DOUBLE_EQ(pv.total_severity, 4.0);
  EXPECT_DOUBLE_EQ(pv.max_incident_severity, 2.0);
}

TEST_F(DetectorTest, ProviderWithoutStoredPrefsGetsImplicitZeros) {
  ASSERT_OK(config_.policy.Add("weight", PrivacyTuple{marketing_, 1, 1, 1}));
  ViolationDetector detector(&config_);
  // Provider 99 was never added to the store.
  ASSERT_OK_AND_ASSIGN(ProviderViolation pv, detector.AnalyzeProvider(99));
  EXPECT_TRUE(pv.violated);
  EXPECT_EQ(pv.incidents.size(), 3u);
}

TEST_F(DetectorTest, AnalyzeProvidersDeduplicatesAndSorts) {
  ASSERT_OK(config_.policy.Add("weight", PrivacyTuple{marketing_, 1, 1, 1}));
  ViolationDetector detector(&config_);
  ASSERT_OK_AND_ASSIGN(ViolationReport report,
                       detector.AnalyzeProviders({5, 2, 5, 9, 2}));
  ASSERT_EQ(report.num_providers(), 3);
  EXPECT_EQ(report.providers[0].provider, 2);
  EXPECT_EQ(report.providers[1].provider, 5);
  EXPECT_EQ(report.providers[2].provider, 9);
}

TEST_F(DetectorTest, ReportFindUsesBinarySearch) {
  ASSERT_OK(config_.policy.Add("weight", PrivacyTuple{marketing_, 1, 1, 1}));
  ViolationDetector detector(&config_);
  ASSERT_OK_AND_ASSIGN(ViolationReport report,
                       detector.AnalyzeProviders({1, 2, 3}));
  EXPECT_NE(report.Find(2), nullptr);
  EXPECT_EQ(report.Find(4), nullptr);
}

TEST_F(DetectorTest, PurposeHierarchyResolvesAncestorConsent) {
  PurposeId email = config_.purposes.Register("email_marketing").value();
  ASSERT_OK(config_.purpose_hierarchy.AddEdge(email, marketing_,
                                              config_.purposes));
  // Policy uses the specialized purpose; provider consented to the broad
  // one at generous levels.
  ASSERT_OK(config_.policy.Add("weight", PrivacyTuple{email, 2, 2, 2}));
  config_.preferences.ForProvider(1).Set("weight",
                                         PrivacyTuple{marketing_, 3, 3, 3});

  // Without the hierarchy: implicit zero => violated.
  ViolationDetector plain(&config_);
  ASSERT_OK_AND_ASSIGN(ProviderViolation without, plain.AnalyzeProvider(1));
  EXPECT_TRUE(without.violated);

  // With the hierarchy: the marketing consent covers email_marketing.
  ViolationDetector::Options options;
  options.purpose_hierarchy = &config_.purpose_hierarchy;
  ViolationDetector with(&config_, options);
  ASSERT_OK_AND_ASSIGN(ProviderViolation resolved, with.AnalyzeProvider(1));
  EXPECT_FALSE(resolved.violated);
}

TEST_F(DetectorTest, HierarchyStillViolatesWhenAncestorConsentTight) {
  PurposeId email = config_.purposes.Register("email_marketing").value();
  ASSERT_OK(config_.purpose_hierarchy.AddEdge(email, marketing_,
                                              config_.purposes));
  ASSERT_OK(config_.policy.Add("weight", PrivacyTuple{email, 3, 0, 0}));
  config_.preferences.ForProvider(1).Set("weight",
                                         PrivacyTuple{marketing_, 1, 0, 0});
  ViolationDetector::Options options;
  options.purpose_hierarchy = &config_.purpose_hierarchy;
  ViolationDetector detector(&config_, options);
  ASSERT_OK_AND_ASSIGN(ProviderViolation pv, detector.AnalyzeProvider(1));
  EXPECT_TRUE(pv.violated);
  EXPECT_EQ(pv.incidents[0].diff, 2);
  // Inherited consent is not flagged as implicit-zero.
  EXPECT_FALSE(pv.incidents[0].from_implicit_preference);
}

TEST_F(DetectorTest, DataTableScopesAnalysisToSuppliedData) {
  ASSERT_OK(config_.policy.Add("weight", PrivacyTuple{marketing_, 3, 3, 3}));
  ASSERT_OK(config_.policy.Add("age", PrivacyTuple{marketing_, 3, 3, 3}));
  config_.preferences.ForProvider(1).Set("weight",
                                         PrivacyTuple{marketing_, 0, 0, 0});
  config_.preferences.ForProvider(2).Set("weight",
                                         PrivacyTuple{marketing_, 0, 0, 0});

  rel::Schema schema = rel::Schema::Create({{"weight", rel::DataType::kDouble,
                                             ""},
                                            {"age", rel::DataType::kInt64,
                                             ""}})
                           .value();
  ASSERT_OK_AND_ASSIGN(rel::Table table, rel::Table::Create("t", schema));
  // Provider 1 supplies weight only (age is null); provider 2 is absent.
  ASSERT_OK(table.Insert(1, {rel::Value::Double(80), rel::Value::Null()}));

  ViolationDetector::Options options;
  options.data_table = &table;
  ViolationDetector detector(&config_, options);
  ASSERT_OK_AND_ASSIGN(ViolationReport report, detector.Analyze());

  const ProviderViolation* one = report.Find(1);
  ASSERT_NE(one, nullptr);
  EXPECT_TRUE(one->violated);
  // Only the supplied weight datum is in play: 3 incidents, not 6.
  EXPECT_EQ(one->incidents.size(), 3u);
  for (const ViolationIncident& incident : one->incidents) {
    EXPECT_EQ(incident.attribute, "weight");
  }

  // Provider 2 contributes no data: no violations.
  const ProviderViolation* two = report.Find(2);
  ASSERT_NE(two, nullptr);
  EXPECT_FALSE(two->violated);
}

TEST_F(DetectorTest, AnalyzeIncludesTableProvidersWithoutPrefs) {
  ASSERT_OK(config_.policy.Add("weight", PrivacyTuple{marketing_, 1, 1, 1}));
  rel::Schema schema =
      rel::Schema::Create({{"weight", rel::DataType::kDouble, ""}}).value();
  ASSERT_OK_AND_ASSIGN(rel::Table table, rel::Table::Create("t", schema));
  ASSERT_OK(table.Insert(7, {rel::Value::Double(70)}));
  ViolationDetector::Options options;
  options.data_table = &table;
  ViolationDetector detector(&config_, options);
  ASSERT_OK_AND_ASSIGN(ViolationReport report, detector.Analyze());
  // Provider 7 is known only through the table, yet analyzed (and violated
  // via implicit zeros).
  ASSERT_NE(report.Find(7), nullptr);
  EXPECT_TRUE(report.Find(7)->violated);
}

TEST_F(DetectorTest, ReportToStringSummarizes) {
  ASSERT_OK(config_.policy.Add("weight", PrivacyTuple{marketing_, 1, 1, 1}));
  ViolationDetector detector(&config_);
  ASSERT_OK_AND_ASSIGN(ViolationReport report,
                       detector.AnalyzeProviders({1}));
  std::string s = report.ToString();
  EXPECT_NE(s.find("P(W)=1.0000"), std::string::npos);
  EXPECT_NE(s.find("provider 1"), std::string::npos);
}

TEST_F(DetectorTest, PolicyOverrideReadsAlternatePolicy) {
  ASSERT_OK(config_.policy.Add("weight", PrivacyTuple{marketing_, 0, 0, 0}));
  config_.preferences.ForProvider(1).Set("weight",
                                         PrivacyTuple{marketing_, 0, 0, 0});
  // Config's own policy violates nothing.
  ViolationDetector plain(&config_);
  ASSERT_OK_AND_ASSIGN(ProviderViolation clean, plain.AnalyzeProvider(1));
  EXPECT_FALSE(clean.violated);
  // An override policy is analyzed instead, without touching the config.
  privacy::HousePolicy wider;
  ASSERT_OK(wider.Add("weight", PrivacyTuple{marketing_, 2, 2, 2}));
  ViolationDetector::Options options;
  options.policy_override = &wider;
  ViolationDetector overridden(&config_, options);
  ASSERT_OK_AND_ASSIGN(ProviderViolation pv, overridden.AnalyzeProvider(1));
  EXPECT_TRUE(pv.violated);
  EXPECT_DOUBLE_EQ(pv.total_severity, 6.0);
  EXPECT_EQ(config_.policy.Find("weight", marketing_)->visibility, 0);
}

}  // namespace
}  // namespace ppdb::violation

#include "privacy/ordered_scale.h"

#include <gtest/gtest.h>

#include "privacy/dimension.h"
#include "tests/test_util.h"

namespace ppdb::privacy {
namespace {

TEST(DimensionTest, NamesRoundTrip) {
  for (Dimension d : {Dimension::kPurpose, Dimension::kVisibility,
                      Dimension::kGranularity, Dimension::kRetention}) {
    ASSERT_OK_AND_ASSIGN(Dimension parsed,
                         DimensionFromName(DimensionName(d)));
    EXPECT_EQ(parsed, d);
  }
}

TEST(DimensionTest, ShortFormsParse) {
  ASSERT_OK_AND_ASSIGN(Dimension v, DimensionFromName("v"));
  EXPECT_EQ(v, Dimension::kVisibility);
  ASSERT_OK_AND_ASSIGN(Dimension g, DimensionFromName("G"));
  EXPECT_EQ(g, Dimension::kGranularity);
  ASSERT_OK_AND_ASSIGN(Dimension r, DimensionFromName("r"));
  EXPECT_EQ(r, Dimension::kRetention);
  ASSERT_OK_AND_ASSIGN(Dimension p, DimensionFromName("pr"));
  EXPECT_EQ(p, Dimension::kPurpose);
}

TEST(DimensionTest, UnknownNameErrors) {
  EXPECT_TRUE(DimensionFromName("scope").status().IsParseError());
}

TEST(DimensionTest, OrderedDimensionsExcludePurpose) {
  for (Dimension d : kOrderedDimensions) {
    EXPECT_NE(d, Dimension::kPurpose);
  }
  EXPECT_EQ(kOrderedDimensions.size(), 3u);
}

TEST(OrderedScaleTest, CreateAndLookup) {
  ASSERT_OK_AND_ASSIGN(
      OrderedScale scale,
      OrderedScale::Create(Dimension::kVisibility, {"none", "house", "all"}));
  EXPECT_EQ(scale.num_levels(), 3);
  EXPECT_EQ(scale.max_level(), 2);
  ASSERT_OK_AND_ASSIGN(int level, scale.LevelOf("house"));
  EXPECT_EQ(level, 1);
  ASSERT_OK_AND_ASSIGN(std::string name, scale.NameOf(2));
  EXPECT_EQ(name, "all");
}

TEST(OrderedScaleTest, RejectsPurposeDimension) {
  EXPECT_TRUE(OrderedScale::Create(Dimension::kPurpose, {"a"})
                  .status()
                  .IsInvalidArgument());
}

TEST(OrderedScaleTest, RejectsEmptyAndDuplicateAndInvalid) {
  EXPECT_TRUE(OrderedScale::Create(Dimension::kVisibility, {})
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(OrderedScale::Create(Dimension::kVisibility, {"a", "a"})
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(OrderedScale::Create(Dimension::kVisibility, {"bad name"})
                  .status()
                  .IsInvalidArgument());
}

TEST(OrderedScaleTest, LookupErrors) {
  ASSERT_OK_AND_ASSIGN(
      OrderedScale scale,
      OrderedScale::Create(Dimension::kGranularity, {"a", "b"}));
  EXPECT_TRUE(scale.NameOf(-1).status().IsOutOfRange());
  EXPECT_TRUE(scale.NameOf(2).status().IsOutOfRange());
  EXPECT_TRUE(scale.LevelOf("c").status().IsNotFound());
  EXPECT_FALSE(scale.IsValidLevel(-1));
  EXPECT_TRUE(scale.IsValidLevel(0));
  EXPECT_FALSE(scale.IsValidLevel(2));
}

TEST(OrderedScaleTest, MagnitudesDefaultToIndex) {
  ASSERT_OK_AND_ASSIGN(
      OrderedScale scale,
      OrderedScale::Create(Dimension::kRetention, {"a", "b", "c"}));
  ASSERT_OK_AND_ASSIGN(double m, scale.MagnitudeOf(2));
  EXPECT_DOUBLE_EQ(m, 2.0);
  ASSERT_OK(scale.SetMagnitude(2, 365.0));
  ASSERT_OK_AND_ASSIGN(double m2, scale.MagnitudeOf(2));
  EXPECT_DOUBLE_EQ(m2, 365.0);
  EXPECT_TRUE(scale.SetMagnitude(5, 1.0).IsOutOfRange());
  EXPECT_TRUE(scale.MagnitudeOf(5).status().IsOutOfRange());
}

TEST(OrderedScaleTest, DefaultScalesMatchTaxonomy) {
  OrderedScale v = OrderedScale::DefaultVisibility();
  EXPECT_EQ(v.num_levels(), 4);
  EXPECT_EQ(v.LevelOf("none").value(), 0);
  EXPECT_EQ(v.LevelOf("house").value(), 1);
  EXPECT_EQ(v.LevelOf("third_party").value(), 2);
  EXPECT_EQ(v.LevelOf("world").value(), 3);

  OrderedScale g = OrderedScale::DefaultGranularity();
  EXPECT_EQ(g.num_levels(), 4);
  EXPECT_EQ(g.LevelOf("existential").value(), 1);
  EXPECT_EQ(g.LevelOf("specific").value(), 3);

  OrderedScale r = OrderedScale::DefaultRetention();
  EXPECT_EQ(r.num_levels(), 5);
  EXPECT_DOUBLE_EQ(r.MagnitudeOf(1).value(), 7.0);
  EXPECT_DOUBLE_EQ(r.MagnitudeOf(3).value(), 365.0);
}

TEST(OrderedScaleTest, ToStringShowsOrder) {
  OrderedScale g = OrderedScale::DefaultGranularity();
  EXPECT_EQ(g.ToString(),
            "granularity{none < existential < partial < specific}");
}

TEST(ScaleSetTest, ForDimensionRouting) {
  ScaleSet scales;
  ASSERT_OK_AND_ASSIGN(const OrderedScale* v,
                       scales.ForDimension(Dimension::kVisibility));
  EXPECT_EQ(v->dimension(), Dimension::kVisibility);
  ASSERT_OK_AND_ASSIGN(const OrderedScale* g,
                       scales.ForDimension(Dimension::kGranularity));
  EXPECT_EQ(g->dimension(), Dimension::kGranularity);
  ASSERT_OK_AND_ASSIGN(const OrderedScale* r,
                       scales.ForDimension(Dimension::kRetention));
  EXPECT_EQ(r->dimension(), Dimension::kRetention);
  EXPECT_TRUE(
      scales.ForDimension(Dimension::kPurpose).status().IsInvalidArgument());
}

TEST(ScaleSetTest, MutableForDimension) {
  ScaleSet scales;
  ASSERT_OK_AND_ASSIGN(OrderedScale * r,
                       scales.MutableForDimension(Dimension::kRetention));
  ASSERT_OK(r->SetMagnitude(0, 99.0));
  EXPECT_DOUBLE_EQ(scales.retention.MagnitudeOf(0).value(), 99.0);
}

}  // namespace
}  // namespace ppdb::privacy

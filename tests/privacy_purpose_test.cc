#include "privacy/purpose.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace ppdb::privacy {
namespace {

TEST(PurposeRegistryTest, RegisterAndLookup) {
  PurposeRegistry registry;
  ASSERT_OK_AND_ASSIGN(PurposeId a, registry.Register("marketing"));
  ASSERT_OK_AND_ASSIGN(PurposeId b, registry.Register("research"));
  EXPECT_EQ(a, 0);
  EXPECT_EQ(b, 1);
  EXPECT_EQ(registry.num_purposes(), 2);
  ASSERT_OK_AND_ASSIGN(PurposeId found, registry.Lookup("research"));
  EXPECT_EQ(found, b);
  ASSERT_OK_AND_ASSIGN(std::string name, registry.NameOf(a));
  EXPECT_EQ(name, "marketing");
  EXPECT_TRUE(registry.Contains("marketing"));
  EXPECT_FALSE(registry.Contains("billing"));
}

TEST(PurposeRegistryTest, RegisterIsIdempotent) {
  PurposeRegistry registry;
  ASSERT_OK_AND_ASSIGN(PurposeId a, registry.Register("x"));
  ASSERT_OK_AND_ASSIGN(PurposeId again, registry.Register("x"));
  EXPECT_EQ(a, again);
  EXPECT_EQ(registry.num_purposes(), 1);
}

TEST(PurposeRegistryTest, InvalidNamesRejected) {
  PurposeRegistry registry;
  EXPECT_TRUE(registry.Register("").status().IsInvalidArgument());
  EXPECT_TRUE(registry.Register("1bad").status().IsInvalidArgument());
}

TEST(PurposeRegistryTest, LookupMissesError) {
  PurposeRegistry registry;
  EXPECT_TRUE(registry.Lookup("nope").status().IsNotFound());
  EXPECT_TRUE(registry.NameOf(0).status().IsOutOfRange());
  EXPECT_TRUE(registry.NameOf(-1).status().IsOutOfRange());
}

class PurposeHierarchyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // marketing
    //   ├── email_marketing
    //   │     └── promo_email
    //   └── ad_targeting
    // research (separate root)
    marketing_ = registry_.Register("marketing").value();
    email_ = registry_.Register("email_marketing").value();
    promo_ = registry_.Register("promo_email").value();
    ads_ = registry_.Register("ad_targeting").value();
    research_ = registry_.Register("research").value();
    ASSERT_OK(hierarchy_.AddEdge(email_, marketing_, registry_));
    ASSERT_OK(hierarchy_.AddEdge(promo_, email_, registry_));
    ASSERT_OK(hierarchy_.AddEdge(ads_, marketing_, registry_));
  }

  PurposeRegistry registry_;
  PurposeHierarchy hierarchy_;
  PurposeId marketing_, email_, promo_, ads_, research_;
};

TEST_F(PurposeHierarchyTest, ImpliesIsReflexive) {
  EXPECT_TRUE(hierarchy_.Implies(marketing_, marketing_));
  EXPECT_TRUE(hierarchy_.Implies(promo_, promo_));
}

TEST_F(PurposeHierarchyTest, ImpliesIsTransitive) {
  EXPECT_TRUE(hierarchy_.Implies(email_, marketing_));
  EXPECT_TRUE(hierarchy_.Implies(promo_, marketing_));
}

TEST_F(PurposeHierarchyTest, ImpliesIsDirectional) {
  EXPECT_FALSE(hierarchy_.Implies(marketing_, email_));
  EXPECT_FALSE(hierarchy_.Implies(marketing_, promo_));
}

TEST_F(PurposeHierarchyTest, SiblingsDoNotImplyEachOther) {
  EXPECT_FALSE(hierarchy_.Implies(email_, ads_));
  EXPECT_FALSE(hierarchy_.Implies(ads_, email_));
}

TEST_F(PurposeHierarchyTest, SeparateRootsUnrelated) {
  EXPECT_FALSE(hierarchy_.Implies(research_, marketing_));
  EXPECT_FALSE(hierarchy_.Implies(email_, research_));
}

TEST_F(PurposeHierarchyTest, AncestorsBfsOrder) {
  std::vector<PurposeId> ancestors = hierarchy_.AncestorsOf(promo_);
  ASSERT_EQ(ancestors.size(), 2u);
  EXPECT_EQ(ancestors[0], email_);
  EXPECT_EQ(ancestors[1], marketing_);
  EXPECT_TRUE(hierarchy_.AncestorsOf(marketing_).empty());
}

TEST_F(PurposeHierarchyTest, ParentsOf) {
  EXPECT_EQ(hierarchy_.ParentsOf(promo_), (std::vector<PurposeId>{email_}));
  EXPECT_TRUE(hierarchy_.ParentsOf(research_).empty());
}

TEST_F(PurposeHierarchyTest, SelfEdgeRejected) {
  EXPECT_TRUE(
      hierarchy_.AddEdge(marketing_, marketing_, registry_)
          .IsInvalidArgument());
}

TEST_F(PurposeHierarchyTest, CycleRejected) {
  // marketing -> promo would close promo -> email -> marketing -> promo.
  EXPECT_TRUE(
      hierarchy_.AddEdge(marketing_, promo_, registry_).IsInvalidArgument());
}

TEST_F(PurposeHierarchyTest, UnregisteredPurposeRejected) {
  EXPECT_TRUE(hierarchy_.AddEdge(99, marketing_, registry_).IsNotFound());
  EXPECT_TRUE(hierarchy_.AddEdge(marketing_, 99, registry_).IsNotFound());
}

TEST_F(PurposeHierarchyTest, DiamondIsAllowed) {
  // A purpose with two parents (lattice, not tree).
  PurposeId joint = registry_.Register("joint_campaign").value();
  ASSERT_OK(hierarchy_.AddEdge(joint, email_, registry_));
  ASSERT_OK(hierarchy_.AddEdge(joint, ads_, registry_));
  EXPECT_TRUE(hierarchy_.Implies(joint, marketing_));
  EXPECT_TRUE(hierarchy_.Implies(joint, ads_));
  EXPECT_TRUE(hierarchy_.Implies(joint, email_));
}

TEST_F(PurposeHierarchyTest, NumEdges) {
  EXPECT_EQ(hierarchy_.num_edges(), 3);
}

}  // namespace
}  // namespace ppdb::privacy

#include "obs/trace.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

namespace ppdb::obs {
namespace {

using std::chrono::microseconds;
using std::chrono::steady_clock;

/// A deterministic clock: every call advances time by 100us. Two tracers
/// driven by fresh step clocks see identical time sequences, so identical
/// span structures must serialize to identical JSON.
Tracer::Options StepClockOptions(size_t ring_capacity = 64) {
  Tracer::Options options;
  options.ring_capacity = ring_capacity;
  auto ticks = std::make_shared<int64_t>(0);
  options.clock = [ticks] {
    *ticks += 100;
    return steady_clock::time_point(microseconds(*ticks));
  };
  return options;
}

std::string RunCanonicalTrace(Tracer& tracer) {
  {
    TraceScope trace(tracer, "ppdb-req-1", "request");
    {
      SpanScope alpha("alpha");
      alpha.Note("k", "v");
      alpha.Note("n", int64_t{42});
    }
    {
      SpanScope beta("beta");
      SpanScope gamma("gamma");  // nested: parent is beta
    }
  }
  return tracer.SnapshotJson();
}

TEST(TraceTest, SameClockSequenceYieldsIdenticalJson) {
  Tracer first(StepClockOptions());
  Tracer second(StepClockOptions());
  std::string a = RunCanonicalTrace(first);
  std::string b = RunCanonicalTrace(second);
  EXPECT_EQ(a, b);
  // Byte-exact golden: span times are relative to the trace start, spans
  // appear in start order, parents index into the flat span list.
  EXPECT_EQ(
      a,
      "[{\"trace_id\":\"ppdb-req-1\",\"name\":\"request\",\"start_us\":100,"
      "\"duration_us\":700,\"spans\":["
      "{\"name\":\"alpha\",\"parent\":-1,\"start_us\":100,\"duration_us\":100,"
      "\"notes\":{\"k\":\"v\",\"n\":\"42\"}},"
      "{\"name\":\"beta\",\"parent\":-1,\"start_us\":300,\"duration_us\":300},"
      "{\"name\":\"gamma\",\"parent\":1,\"start_us\":400,\"duration_us\":100}"
      "]}]");
}

TEST(TraceTest, RingEvictsOldestTraces) {
  Tracer tracer(StepClockOptions(/*ring_capacity=*/2));
  for (int i = 1; i <= 3; ++i) {
    TraceScope trace(tracer, "ppdb-req-" + std::to_string(i), "request");
  }
  std::vector<TraceRecord> ring = tracer.Snapshot();
  ASSERT_EQ(ring.size(), 2u);
  EXPECT_EQ(ring[0].trace_id, "ppdb-req-2");
  EXPECT_EQ(ring[1].trace_id, "ppdb-req-3");
  EXPECT_EQ(tracer.traces_completed(), 3);
}

TEST(TraceTest, NestedTraceScopeIsInert) {
  Tracer tracer(StepClockOptions());
  {
    TraceScope outer(tracer, "ppdb-req-7", "request");
    EXPECT_TRUE(outer.active());
    {
      // Layered instrumentation: an inner layer opening its own trace
      // must not steal or truncate the outer one.
      TraceScope inner(tracer, "ppdb-req-8", "inner");
      EXPECT_FALSE(inner.active());
      SpanScope span("work");
      EXPECT_TRUE(span.recording());
    }
    EXPECT_EQ(tracer.traces_completed(), 0);  // inner commit suppressed
  }
  std::vector<TraceRecord> ring = tracer.Snapshot();
  ASSERT_EQ(ring.size(), 1u);
  EXPECT_EQ(ring[0].trace_id, "ppdb-req-7");
  ASSERT_EQ(ring[0].spans.size(), 1u);
  EXPECT_EQ(ring[0].spans[0].name, "work");
}

TEST(TraceTest, SpanOutsideAnyTraceIsANoOp) {
  Tracer tracer(StepClockOptions());
  {
    SpanScope span("orphan");
    EXPECT_FALSE(span.recording());
    span.Note("k", "v");  // must not crash
  }
  EXPECT_EQ(tracer.traces_completed(), 0);
  EXPECT_EQ(tracer.SnapshotJson(), "[]");
}

TEST(TraceTest, JsonEscapesControlAndQuoteCharacters) {
  Tracer tracer(StepClockOptions());
  {
    TraceScope trace(tracer, "id-\"q\"", "na\\me");
    SpanScope span("s");
    span.Note("note", "line1\nline2\ttab");
  }
  std::string json = tracer.SnapshotJson();
  EXPECT_NE(json.find("id-\\\"q\\\""), std::string::npos);
  EXPECT_NE(json.find("na\\\\me"), std::string::npos);
  EXPECT_NE(json.find("line1\\nline2\\ttab"), std::string::npos);
  // Single line: raw newlines never survive serialization.
  EXPECT_EQ(json.find('\n'), std::string::npos);
}

// Regression: set_clock used to swap the std::function while tracing
// threads were calling it through Now(), a data race (and a potential
// call through a half-destroyed function object). The clock now lives
// behind its own mutex; swapping it mid-traffic must be safe and every
// trace must still commit.
TEST(TraceTest, SetClockIsSafeDuringConcurrentTracing) {
  constexpr int kThreads = 4;
  constexpr int kTracesPerThread = 200;
  Tracer tracer(StepClockOptions(/*ring_capacity=*/8));

  std::vector<std::thread> tracers;
  tracers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    tracers.emplace_back([&tracer, t] {
      for (int i = 0; i < kTracesPerThread; ++i) {
        TraceScope trace(tracer, "ppdb-req-" + std::to_string(t * 1000 + i),
                         "concurrent");
        SpanScope span("work");
        span.Note("i", int64_t{i});
      }
    });
  }
  for (int swap = 0; swap < 100; ++swap) {
    auto ticks = std::make_shared<int64_t>(swap * 1000);
    tracer.set_clock([ticks] {
      *ticks += 7;
      return steady_clock::time_point(microseconds(*ticks));
    });
  }
  for (std::thread& t : tracers) t.join();

  EXPECT_EQ(tracer.traces_completed(), kThreads * kTracesPerThread);
  // The ring keeps only the newest 8; every retained record is complete.
  std::vector<TraceRecord> kept = tracer.Snapshot();
  EXPECT_EQ(kept.size(), 8u);
  for (const TraceRecord& record : kept) {
    EXPECT_EQ(record.name, "concurrent");
    ASSERT_EQ(record.spans.size(), 1u);
    EXPECT_EQ(record.spans[0].name, "work");
  }
}

}  // namespace
}  // namespace ppdb::obs

#include "server/net/framer.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"

namespace ppdb::server::net {
namespace {

/// Feeds `bytes` in one go, finishes, and returns every line.
std::vector<LineFramer::Line> FrameAll(std::string_view bytes,
                                       size_t max_line = kMaxRequestLine) {
  LineFramer framer(max_line);
  framer.Feed(bytes);
  framer.Finish();
  std::vector<LineFramer::Line> lines;
  LineFramer::Line line;
  while (framer.Next(&line)) lines.push_back(line);
  return lines;
}

TEST(LineFramerTest, SplitsOnNewlinesAndStripsCr) {
  std::vector<LineFramer::Line> lines =
      FrameAll("ping\r\nquery pw\nanalyze\n");
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0].text, "ping");
  EXPECT_EQ(lines[1].text, "query pw");
  EXPECT_EQ(lines[2].text, "analyze");
  for (const auto& line : lines) EXPECT_FALSE(line.oversized);
}

TEST(LineFramerTest, DeliversUnterminatedFinalLineOnFinish) {
  std::vector<LineFramer::Line> lines = FrameAll("ping\nno newline");
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[1].text, "no newline");

  // But not before Finish: TCP can split anywhere, so an unterminated
  // tail must wait for more bytes.
  LineFramer framer;
  framer.Feed("partial");
  LineFramer::Line line;
  EXPECT_FALSE(framer.Next(&line));
}

TEST(LineFramerTest, EmptyLinesAndEmbeddedNulsPassThrough) {
  std::vector<LineFramer::Line> lines =
      FrameAll(std::string("\n\na\0b\n", 6));
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0].text, "");
  EXPECT_EQ(lines[1].text, "");
  // NUL is the parser's problem, not the framer's.
  EXPECT_EQ(lines[2].text, std::string("a\0b", 3));
}

TEST(LineFramerTest, OversizedLineIsCappedFlaggedAndResyncs) {
  const size_t cap = 16;
  std::string input = std::string(100, 'x') + "\nping\n";
  std::vector<LineFramer::Line> lines = FrameAll(input, cap);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_TRUE(lines[0].oversized);
  EXPECT_EQ(lines[0].text, std::string(cap, 'x'));  // retained prefix
  EXPECT_FALSE(lines[1].oversized);
  EXPECT_EQ(lines[1].text, "ping");  // resynchronized at the newline
}

TEST(LineFramerTest, ExactlyCapSizedLineIsNotOversized) {
  const size_t cap = 8;
  std::vector<LineFramer::Line> lines =
      FrameAll(std::string(cap, 'y') + "\n", cap);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_FALSE(lines[0].oversized);
  EXPECT_EQ(lines[0].text.size(), cap);
}

TEST(LineFramerTest, TruncatedOversizedLineAtEofIsStillDelivered) {
  LineFramer framer(/*max_line=*/4);
  framer.Feed("aaaaaaaa");  // over cap, never terminated
  framer.Finish();
  LineFramer::Line line;
  ASSERT_TRUE(framer.Next(&line));
  EXPECT_TRUE(line.oversized);
  EXPECT_EQ(line.text, "aaaa");
  EXPECT_FALSE(framer.Next(&line));
  EXPECT_EQ(framer.oversized_lines(), 1);
}

TEST(LineFramerTest, PartialLineAccumulatorStaysBounded) {
  const size_t cap = 64;
  LineFramer framer(cap);
  // Stream 1 MiB of a single line: memory must stay O(cap), not O(input).
  for (int i = 0; i < 1024; ++i) framer.Feed(std::string(1024, 'z'));
  EXPECT_LE(framer.buffered(), cap);
  framer.Feed("\nping\n");
  LineFramer::Line line;
  ASSERT_TRUE(framer.Next(&line));
  EXPECT_TRUE(line.oversized);
  ASSERT_TRUE(framer.Next(&line));
  EXPECT_EQ(line.text, "ping");
}

// The core TCP property: the line sequence is invariant under how the
// byte stream is split across Feed calls (reads can split anywhere).
TEST(LineFramerTest, LineSequenceInvariantUnderArbitrarySplits) {
  const std::string stream = "ping\r\n" + std::string(40, 'x') +
                             "\n\n# comment\nquery pw\n" +
                             std::string("nul\0here\n", 9) + "tail";
  const size_t cap = 16;
  std::vector<LineFramer::Line> expected = FrameAll(stream, cap);

  Rng rng(0xfeed);
  for (int trial = 0; trial < 200; ++trial) {
    LineFramer framer(cap);
    size_t at = 0;
    while (at < stream.size()) {
      size_t n = 1 + rng.NextUint64() % (stream.size() - at);
      framer.Feed(std::string_view(stream).substr(at, n));
      at += n;
    }
    framer.Finish();
    std::vector<LineFramer::Line> got;
    LineFramer::Line line;
    while (framer.Next(&line)) got.push_back(line);

    ASSERT_EQ(got.size(), expected.size()) << "trial " << trial;
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].text, expected[i].text) << "trial " << trial;
      EXPECT_EQ(got[i].oversized, expected[i].oversized) << "trial " << trial;
    }
  }
}

// Interleaving Feed and Next (how the event loop actually drives it) is
// equivalent to feeding everything first.
TEST(LineFramerTest, InterleavedFeedAndNextMatchesBatch) {
  const std::string stream = "a\nbb\n" + std::string(50, 'c') + "\nd\n";
  const size_t cap = 10;
  std::vector<LineFramer::Line> expected = FrameAll(stream, cap);

  LineFramer framer(cap);
  std::vector<LineFramer::Line> got;
  LineFramer::Line line;
  for (char ch : stream) {
    framer.Feed(std::string_view(&ch, 1));
    while (framer.Next(&line)) got.push_back(line);
  }
  framer.Finish();
  while (framer.Next(&line)) got.push_back(line);

  ASSERT_EQ(got.size(), expected.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].text, expected[i].text) << i;
    EXPECT_EQ(got[i].oversized, expected[i].oversized) << i;
  }
}

}  // namespace
}  // namespace ppdb::server::net

#include "storage/database_io.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

#include "common/macros.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "privacy/policy_dsl.h"
#include "storage/fs.h"
#include "tests/test_util.h"
#include "violation/detector.h"

namespace ppdb::storage {
namespace {

namespace fs = std::filesystem;

class DatabaseIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("ppdb_io_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
  }

  void TearDown() override { fs::remove_all(dir_); }

  Database MakeDatabase() {
    Database database;
    auto config = privacy::ParsePrivacyConfig(R"(
purpose care
policy weight for care: visibility=house, granularity=specific, retention=year
pref 1 weight for care: visibility=house, granularity=partial, retention=year
attr_sensitivity weight = 4
sensitivity 1 weight: granularity=2
threshold 1 = 10
)");
    PPDB_CHECK_OK(config.status());
    database.config = std::move(config).value();

    rel::Schema schema =
        rel::Schema::Create({{"weight", rel::DataType::kDouble, ""},
                             {"note", rel::DataType::kString, ""}})
            .value();
    rel::Table* table =
        database.catalog.CreateTable("patients", schema).value();
    PPDB_CHECK_OK(table->Insert(
        1, {rel::Value::Double(81.5), rel::Value::String("a,b \"quoted\"")}));
    PPDB_CHECK_OK(
        table->Insert(2, {rel::Value::Null(), rel::Value::String("plain")}));

    rel::Schema visits_schema =
        rel::Schema::Create({{"day", rel::DataType::kInt64, ""}}).value();
    rel::Table multi =
        rel::Table::CreateMultiRecord("visits", visits_schema).value();
    PPDB_CHECK_OK(multi.Insert(1, {rel::Value::Int64(3)}));
    PPDB_CHECK_OK(multi.Insert(1, {rel::Value::Int64(9)}));
    PPDB_CHECK_OK(database.catalog.AddTable(std::move(multi)).status());

    database.ledger.RecordIngest("patients", 1, "weight", 5);
    database.ledger.RecordIngest("patients", 2, "note", 7);

    audit::AuditEvent event;
    event.timestamp = 9;
    event.kind = audit::AuditEventKind::kCellSuppressed;
    event.requester = "tester";
    event.table = "patients";
    event.provider = 1;
    event.attribute = "weight";
    event.detail = "demo, with comma";
    database.log.Append(std::move(event));
    return database;
  }

  /// Directory of the committed generation, resolved via CURRENT.
  fs::path GenDir() {
    std::ifstream in(dir_ / "CURRENT");
    std::string gen;
    std::getline(in, gen);
    return dir_ / gen;
  }

  fs::path dir_;
};

TEST_F(DatabaseIoTest, SaveThenLoadRoundTrips) {
  Database original = MakeDatabase();
  ASSERT_OK(SaveDatabase(dir_.string(), original));

  ASSERT_OK_AND_ASSIGN(Database loaded, LoadDatabase(dir_.string()));

  // Tables.
  EXPECT_EQ(loaded.catalog.TableNames(),
            (std::vector<std::string>{"patients", "visits"}));
  ASSERT_OK_AND_ASSIGN(const rel::Table* patients,
                       loaded.catalog.GetTable("patients"));
  EXPECT_FALSE(patients->multi_record());
  EXPECT_EQ(patients->num_rows(), 2);
  ASSERT_OK_AND_ASSIGN(rel::Value weight, patients->GetCell(1, "weight"));
  EXPECT_EQ(weight, rel::Value::Double(81.5));
  ASSERT_OK_AND_ASSIGN(rel::Value note, patients->GetCell(1, "note"));
  EXPECT_EQ(note, rel::Value::String("a,b \"quoted\""));
  ASSERT_OK_AND_ASSIGN(rel::Value null_cell, patients->GetCell(2, "weight"));
  EXPECT_TRUE(null_cell.is_null());

  // Multi-record table preserved its mode and rows.
  ASSERT_OK_AND_ASSIGN(const rel::Table* visits,
                       loaded.catalog.GetTable("visits"));
  EXPECT_TRUE(visits->multi_record());
  EXPECT_EQ(visits->RowsForProvider(1).size(), 2u);

  // Privacy config: same analysis results.
  violation::ViolationDetector a(&original.config), b(&loaded.config);
  ASSERT_OK_AND_ASSIGN(auto ra, a.Analyze());
  ASSERT_OK_AND_ASSIGN(auto rb, b.Analyze());
  EXPECT_DOUBLE_EQ(ra.total_severity, rb.total_severity);
  EXPECT_DOUBLE_EQ(loaded.config.ThresholdFor(1), 10.0);

  // Ledger.
  ASSERT_OK_AND_ASSIGN(int64_t day,
                       loaded.ledger.IngestDay("patients", 1, "weight"));
  EXPECT_EQ(day, 5);
  EXPECT_EQ(loaded.ledger.size(), 2);

  // Audit log.
  ASSERT_EQ(loaded.log.size(), 1);
  const audit::AuditEvent& event = loaded.log.events()[0];
  EXPECT_EQ(event.kind, audit::AuditEventKind::kCellSuppressed);
  EXPECT_EQ(event.provider, 1);
  EXPECT_EQ(event.attribute, "weight");
  EXPECT_EQ(event.detail, "demo, with comma");
  EXPECT_EQ(event.timestamp, 9);
}

TEST_F(DatabaseIoTest, SaveOverwritesExisting) {
  Database original = MakeDatabase();
  ASSERT_OK(SaveDatabase(dir_.string(), original));
  // Mutate and save again.
  ASSERT_OK(original.catalog.DropTable("visits"));
  ASSERT_OK(SaveDatabase(dir_.string(), original));
  ASSERT_OK_AND_ASSIGN(Database loaded, LoadDatabase(dir_.string()));
  // The manifest governs: the stale visits.csv on disk is ignored.
  EXPECT_EQ(loaded.catalog.TableNames(),
            (std::vector<std::string>{"patients"}));
}

TEST_F(DatabaseIoTest, LoadMissingDirectoryErrors) {
  // Regression: a nonexistent directory is kNotFound and the message names
  // the path, not a generic open/parse failure.
  const std::string path = (dir_ / "nope").string();
  Status status = LoadDatabase(path).status();
  EXPECT_TRUE(status.IsNotFound()) << status;
  EXPECT_NE(status.message().find(path), std::string::npos) << status;
}

TEST_F(DatabaseIoTest, SaveWritesGenerationLayout) {
  ASSERT_OK(SaveDatabase(dir_.string(), MakeDatabase()));
  EXPECT_TRUE(fs::exists(dir_ / "CURRENT"));
  EXPECT_TRUE(fs::exists(GenDir() / "MANIFEST"));
  EXPECT_TRUE(fs::exists(GenDir() / "tables" / "patients.csv"));
  EXPECT_FALSE(fs::exists(dir_ / "CURRENT.tmp"));
  // No staging leftovers after a clean save.
  for (const auto& entry : fs::directory_iterator(dir_)) {
    EXPECT_NE(entry.path().filename().string().substr(0, 9), ".staging-");
  }
}

TEST_F(DatabaseIoTest, SaveKeepsPreviousGenerationForRollback) {
  Database original = MakeDatabase();
  ASSERT_OK(SaveDatabase(dir_.string(), original));
  fs::path first_gen = GenDir();
  ASSERT_OK(original.catalog.DropTable("visits"));
  ASSERT_OK(SaveDatabase(dir_.string(), original));
  EXPECT_NE(GenDir(), first_gen);
  EXPECT_TRUE(fs::exists(first_gen)) << "rollback generation was pruned";
  // A third save prunes the oldest.
  ASSERT_OK(SaveDatabase(dir_.string(), original));
  EXPECT_FALSE(fs::exists(first_gen));
}

TEST_F(DatabaseIoTest, LegacyFlatLayoutStillLoads) {
  ASSERT_OK(SaveDatabase(dir_.string(), MakeDatabase()));
  // Rebuild the pre-generation layout: the generation's files at top level.
  fs::path flat = dir_.string() + "_flat";
  fs::copy(GenDir(), flat, fs::copy_options::recursive);
  RecoveryReport report;
  ASSERT_OK_AND_ASSIGN(
      Database loaded,
      LoadDatabase(flat.string(), GetRealFileSystem(), &report));
  EXPECT_EQ(report.loaded_generation, "flat");
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(loaded.catalog.TableNames(),
            (std::vector<std::string>{"patients", "visits"}));
  fs::remove_all(flat);
}

TEST_F(DatabaseIoTest, RecoveryFallsBackWhenCommittedGenerationIsTorn) {
  Database original = MakeDatabase();
  ASSERT_OK(SaveDatabase(dir_.string(), original));
  Database changed = MakeDatabase();
  ASSERT_OK(changed.catalog.DropTable("visits"));
  ASSERT_OK(SaveDatabase(dir_.string(), changed));
  // Disk rot: the committed generation loses its manifest.
  fs::remove(GenDir() / "MANIFEST");
  RecoveryReport report;
  ASSERT_OK_AND_ASSIGN(
      Database loaded,
      LoadDatabase(dir_.string(), GetRealFileSystem(), &report));
  EXPECT_TRUE(report.used_fallback);
  ASSERT_EQ(report.discarded.size(), 1u);
  EXPECT_NE(report.discarded[0].find("torn"), std::string::npos);
  // The rollback generation still has both tables.
  EXPECT_EQ(loaded.catalog.TableNames(),
            (std::vector<std::string>{"patients", "visits"}));
}

TEST_F(DatabaseIoTest, StagingAndUncommittedGenerationsAreDiscarded) {
  ASSERT_OK(SaveDatabase(dir_.string(), MakeDatabase()));
  // A crashed later save: complete-looking generation, staging dir, and a
  // torn CURRENT.tmp, none of them committed.
  fs::create_directories(dir_ / ".staging-7" / "tables");
  fs::copy(GenDir(), dir_ / "gen-99", fs::copy_options::recursive);
  { std::ofstream out(dir_ / "CURRENT.tmp"); out << "gen-9"; }
  RecoveryReport report;
  ASSERT_OK_AND_ASSIGN(
      Database loaded,
      LoadDatabase(dir_.string(), GetRealFileSystem(), &report));
  EXPECT_FALSE(report.used_fallback);
  EXPECT_EQ(report.loaded_generation, GenDir().filename().string());
  std::string joined = report.ToString();
  EXPECT_NE(joined.find(".staging-7"), std::string::npos) << joined;
  EXPECT_NE(joined.find("gen-99"), std::string::npos) << joined;
  EXPECT_NE(joined.find("CURRENT.tmp"), std::string::npos) << joined;
  EXPECT_EQ(loaded.catalog.TableNames(),
            (std::vector<std::string>{"patients", "visits"}));
}

TEST_F(DatabaseIoTest, CorruptCurrentFallsBackToNewestLoadable) {
  ASSERT_OK(SaveDatabase(dir_.string(), MakeDatabase()));
  { std::ofstream out(dir_ / "CURRENT", std::ios::trunc); out << "gibberish"; }
  RecoveryReport report;
  ASSERT_OK_AND_ASSIGN(
      Database loaded,
      LoadDatabase(dir_.string(), GetRealFileSystem(), &report));
  EXPECT_FALSE(report.clean());
  ASSERT_FALSE(report.discarded.empty());
  EXPECT_NE(report.discarded[0].find("CURRENT"), std::string::npos);
  EXPECT_EQ(loaded.catalog.TableNames(),
            (std::vector<std::string>{"patients", "visits"}));
}

TEST_F(DatabaseIoTest, SaveRetriesTransientFaults) {
  FaultInjectingFileSystem faulty(&GetRealFileSystem(), Rng(11));
  // Two consecutive transient failures on an early staging write; the
  // default bounded retry outlasts them.
  faulty.SetPlan({.fail_at_op = 3, .kind = FaultKind::kFailOp,
                  .transient_failures = 2});
  ASSERT_OK(SaveDatabase(dir_.string(), MakeDatabase(), faulty));
  EXPECT_EQ(faulty.faults_injected(), 2);
  ASSERT_OK_AND_ASSIGN(Database loaded, LoadDatabase(dir_.string()));
  EXPECT_EQ(loaded.catalog.TableNames(),
            (std::vector<std::string>{"patients", "visits"}));
}

TEST_F(DatabaseIoTest, SaveGivesUpWhenTransientFaultPersists) {
  FaultInjectingFileSystem faulty(&GetRealFileSystem(), Rng(11));
  faulty.SetPlan({.fail_at_op = 3, .kind = FaultKind::kFailOp,
                  .transient_failures = 100});
  Status status = SaveDatabase(dir_.string(), MakeDatabase(), faulty);
  EXPECT_TRUE(status.IsUnavailable()) << status;
  EXPECT_NE(status.message().find("attempt"), std::string::npos);
}

TEST_F(DatabaseIoTest, SaveDoesNotRetryEnospc) {
  FaultInjectingFileSystem faulty(&GetRealFileSystem(), Rng(11));
  faulty.SetPlan({.fail_at_op = 4, .kind = FaultKind::kNoSpace});
  Status status = SaveDatabase(dir_.string(), MakeDatabase(), faulty);
  EXPECT_TRUE(status.IsOutOfRange()) << status;
  EXPECT_EQ(faulty.faults_injected(), 1);  // no retry burned on a full disk
  EXPECT_NE(status.message().find("no space left on device"),
            std::string::npos);
}

TEST_F(DatabaseIoTest, LoadRejectsCorruptManifest) {
  Database original = MakeDatabase();
  ASSERT_OK(SaveDatabase(dir_.string(), original));
  {
    std::ofstream out(GenDir() / "MANIFEST", std::ios::trunc);
    out << "not a manifest\n";
  }
  // The only generation is torn and there is nothing to fall back to.
  EXPECT_TRUE(LoadDatabase(dir_.string()).status().IsParseError());
}

TEST_F(DatabaseIoTest, LoadDetectsMissingTableFile) {
  Database original = MakeDatabase();
  ASSERT_OK(SaveDatabase(dir_.string(), original));
  fs::remove(GenDir() / "tables" / "patients.csv");
  EXPECT_TRUE(LoadDatabase(dir_.string()).status().IsNotFound());
}

TEST_F(DatabaseIoTest, LoadRejectsCorruptTableCell) {
  Database original = MakeDatabase();
  ASSERT_OK(SaveDatabase(dir_.string(), original));
  {
    std::ofstream out(GenDir() / "tables" / "patients.csv", std::ios::trunc);
    out << "provider_id,weight,note\n1,not_a_double,x\n";
  }
  EXPECT_TRUE(LoadDatabase(dir_.string()).status().IsParseError());
}

TEST(AuditCsvTest, EmptyLogRoundTrips) {
  audit::AuditLog log;
  ASSERT_OK_AND_ASSIGN(audit::AuditLog loaded,
                       AuditLogFromCsv(AuditLogToCsv(log)));
  EXPECT_EQ(loaded.size(), 0);
}

TEST(AuditCsvTest, RejectsUnknownKind) {
  EXPECT_TRUE(AuditLogFromCsv(
                  "sequence,timestamp,kind,requester,purpose,table,provider,"
                  "attribute,detail\n0,0,bogus_kind,x,0,t,,,\n")
                  .status()
                  .IsParseError());
}

TEST(LedgerCsvTest, EmptyAndRoundTrip) {
  audit::IngestLedger ledger;
  ASSERT_OK_AND_ASSIGN(audit::IngestLedger empty,
                       LedgerFromCsv(LedgerToCsv(ledger)));
  EXPECT_EQ(empty.size(), 0);
  ledger.RecordIngest("t", 3, "a", 11);
  ASSERT_OK_AND_ASSIGN(audit::IngestLedger loaded,
                       LedgerFromCsv(LedgerToCsv(ledger)));
  ASSERT_OK_AND_ASSIGN(int64_t day, loaded.IngestDay("t", 3, "a"));
  EXPECT_EQ(day, 11);
}

}  // namespace
}  // namespace ppdb::storage

// Runtime deadlock detector: the dynamic counterpart of ppdb_analyze's
// static lock-order pass. These tests construct a *real* lock-order
// inversion — the same shape the static pass forbids — and verify the
// detector predicts the deadlock before any thread can block on it, with
// a cycle report naming both mutexes.

#include "common/deadlock.h"

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "gtest/gtest.h"

#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define PPDB_DEADLOCK_TEST_UNDER_TSAN 1
#endif
#elif defined(__SANITIZE_THREAD__)
#define PPDB_DEADLOCK_TEST_UNDER_TSAN 1
#endif

#ifdef PPDB_DEADLOCK_TEST_UNDER_TSAN
// The inversions below are constructed on purpose; TSan's own
// lock-order detector would (correctly) flag them and fail the run.
// Data-race detection stays fully enabled.
extern "C" const char* __tsan_default_options() {
  return "detect_deadlocks=0";
}
#endif

namespace ppdb {
namespace {

/// Captures reports for assertions. The handler must be a plain function
/// pointer, so the capture target is a global guarded by the
/// ScopedDetectionForTest serialization.
std::vector<std::string>* g_reports = nullptr;

void CaptureReport(const std::string& report) { g_reports->push_back(report); }

class DeadlockDetectorTest : public ::testing::Test {
 protected:
  DeadlockDetectorTest() { g_reports = &reports_; }
  ~DeadlockDetectorTest() override { g_reports = nullptr; }

  std::vector<std::string> reports_;
};

TEST_F(DeadlockDetectorTest, ConsistentOrderReportsNothing) {
  deadlock::ScopedDetectionForTest scope(deadlock::Mode::kReport,
                                         &CaptureReport);
  Mutex a("order_a");
  Mutex b("order_b");
  for (int i = 0; i < 3; ++i) {
    MutexLock la(a);
    MutexLock lb(b);
  }
  EXPECT_TRUE(reports_.empty());
}

TEST_F(DeadlockDetectorTest, InversionIsCaughtAndNamesBothMutexes) {
  deadlock::ScopedDetectionForTest scope(deadlock::Mode::kReport,
                                         &CaptureReport);
  Mutex a("inversion_a");
  Mutex b("inversion_b");
  {
    MutexLock la(a);
    MutexLock lb(b);  // learns a -> b
  }
  {
    MutexLock lb(b);
    MutexLock la(a);  // inversion: would add b -> a, closing the cycle
  }
  ASSERT_EQ(reports_.size(), 1u);
  EXPECT_NE(reports_[0].find("lock-order inversion"), std::string::npos)
      << reports_[0];
  EXPECT_NE(reports_[0].find("inversion_a"), std::string::npos) << reports_[0];
  EXPECT_NE(reports_[0].find("inversion_b"), std::string::npos) << reports_[0];
}

TEST_F(DeadlockDetectorTest, InversionAcrossThreadsIsCaught) {
  deadlock::ScopedDetectionForTest scope(deadlock::Mode::kReport,
                                         &CaptureReport);
  Mutex a("xthread_a");
  Mutex b("xthread_b");
  // Thread 1 establishes a -> b and fully releases before thread 2 starts,
  // so the test cannot actually deadlock — but the order graph persists
  // across threads, which is the whole point: the detector flags the
  // *potential* interleaving, not a lucky occurrence of it.
  std::thread t1([&] {
    MutexLock la(a);
    MutexLock lb(b);
  });
  t1.join();
  std::thread t2([&] {
    MutexLock lb(b);
    MutexLock la(a);
  });
  t2.join();
  ASSERT_EQ(reports_.size(), 1u);
  EXPECT_NE(reports_[0].find("xthread_a"), std::string::npos);
  EXPECT_NE(reports_[0].find("xthread_b"), std::string::npos);
}

TEST_F(DeadlockDetectorTest, TransitiveCycleIsCaughtWithFullPath) {
  deadlock::ScopedDetectionForTest scope(deadlock::Mode::kReport,
                                         &CaptureReport);
  Mutex a("chain_a");
  Mutex b("chain_b");
  Mutex c("chain_c");
  {
    MutexLock la(a);
    MutexLock lb(b);  // a -> b
  }
  {
    MutexLock lb(b);
    MutexLock lc(c);  // b -> c
  }
  {
    MutexLock lc(c);
    MutexLock la(a);  // c -> a closes a three-node cycle
  }
  ASSERT_EQ(reports_.size(), 1u);
  EXPECT_NE(reports_[0].find("chain_a"), std::string::npos) << reports_[0];
  EXPECT_NE(reports_[0].find("chain_b"), std::string::npos) << reports_[0];
  EXPECT_NE(reports_[0].find("chain_c"), std::string::npos) << reports_[0];
}

TEST_F(DeadlockDetectorTest, RecursiveAcquisitionIsCaught) {
  deadlock::ScopedDetectionForTest scope(deadlock::Mode::kReport,
                                         &CaptureReport);
  Mutex a("recursive_a");
  a.Lock();
  // A second Lock() of a std::mutex on the same thread is undefined
  // behavior that in practice blocks forever; the detector reports it
  // before the call reaches the underlying primitive — which is why this
  // test can keep running. kReport mode deliberately does not abort, so
  // the re-acquisition must not be allowed to actually happen: assert on
  // the report, then release the single real hold.
  deadlock::OnAcquire(&a, "recursive_a", true);
  deadlock::OnRelease(&a);
  a.Unlock();
  ASSERT_EQ(reports_.size(), 1u);
  EXPECT_NE(reports_[0].find("recursive acquisition"), std::string::npos);
  EXPECT_NE(reports_[0].find("recursive_a"), std::string::npos);
}

TEST_F(DeadlockDetectorTest, SharedMutexParticipatesInOrdering) {
  deadlock::ScopedDetectionForTest scope(deadlock::Mode::kReport,
                                         &CaptureReport);
  SharedMutex rw("shared_rw");
  Mutex m("shared_m");
  {
    ReaderMutexLock lr(rw);
    MutexLock lm(m);  // rw -> m (shared acquisition still orders)
  }
  {
    MutexLock lm(m);
    WriterMutexLock lw(rw);  // m -> rw: inversion against the reader edge
  }
  ASSERT_EQ(reports_.size(), 1u);
  EXPECT_NE(reports_[0].find("shared_rw"), std::string::npos);
  EXPECT_NE(reports_[0].find("shared_m"), std::string::npos);
}

TEST_F(DeadlockDetectorTest, TryLockAddsNoEdgesButLaterLocksSeeIt) {
  deadlock::ScopedDetectionForTest scope(deadlock::Mode::kReport,
                                         &CaptureReport);
  Mutex a("try_a");
  Mutex b("try_b");
  {
    MutexLock la(a);
    MutexLock lb(b);  // a -> b
  }
  {
    // TryLock of b then blocking-lock of a: the try-acquisition itself is
    // exempt from ordering (it cannot block), but while b is held via
    // TryLock, acquiring a IS a blocking acquisition closing the cycle.
    ASSERT_TRUE(b.TryLock());
    a.Lock();
    a.Unlock();
    b.Unlock();
  }
  ASSERT_EQ(reports_.size(), 1u);
  EXPECT_NE(reports_[0].find("try_a"), std::string::npos);
  EXPECT_NE(reports_[0].find("try_b"), std::string::npos);
}

TEST_F(DeadlockDetectorTest, DestroyedMutexForgetsItsEdges) {
  deadlock::ScopedDetectionForTest scope(deadlock::Mode::kReport,
                                         &CaptureReport);
  Mutex a("destroy_a");
  {
    Mutex b("destroy_b");
    MutexLock la(a);
    MutexLock lb(b);  // a -> b, forgotten when b dies
  }
  {
    Mutex c("destroy_c");  // may or may not reuse b's address
    MutexLock lc(c);
    MutexLock la(a);  // c -> a: no cycle, the a -> b edge died with b
  }
  EXPECT_TRUE(reports_.empty()) << reports_.front();
}

TEST_F(DeadlockDetectorTest, DisabledModeObservesNothing) {
  deadlock::ScopedDetectionForTest scope(deadlock::Mode::kOff,
                                         &CaptureReport);
  Mutex a("off_a");
  Mutex b("off_b");
  {
    MutexLock la(a);
    MutexLock lb(b);
  }
  {
    MutexLock lb(b);
    MutexLock la(a);  // would report if detection were on
  }
  EXPECT_TRUE(reports_.empty());
}

TEST_F(DeadlockDetectorTest, ViolationCountIsMonotonic) {
  const int64_t before = deadlock::ViolationCount();
  deadlock::ScopedDetectionForTest scope(deadlock::Mode::kReport,
                                         &CaptureReport);
  Mutex a("count_a");
  Mutex b("count_b");
  {
    MutexLock la(a);
    MutexLock lb(b);
  }
  {
    MutexLock lb(b);
    MutexLock la(a);
  }
  EXPECT_EQ(deadlock::ViolationCount(), before + 1);
}

TEST_F(DeadlockDetectorTest, ConcurrentConsistentLockingIsQuiet) {
  deadlock::ScopedDetectionForTest scope(deadlock::Mode::kReport,
                                         &CaptureReport);
  Mutex a("stress_a");
  Mutex b("stress_b");
  std::atomic<int> total{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 200; ++i) {
        MutexLock la(a);
        MutexLock lb(b);
        total.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(total.load(), 800);
  EXPECT_TRUE(reports_.empty());
}

// The production default for a violation is kAbort: the process dies with
// the cycle report on stderr rather than carrying a latent deadlock. Death
// tests fork, so the child's abort does not disturb this process.
using DeadlockDetectorDeathTest = DeadlockDetectorTest;

TEST_F(DeadlockDetectorDeathTest, AbortModeDiesWithCycleReport) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  EXPECT_DEATH(
      {
        deadlock::ScopedDetectionForTest scope(deadlock::Mode::kAbort);
        Mutex a("abort_a");
        Mutex b("abort_b");
        {
          MutexLock la(a);
          MutexLock lb(b);
        }
        {
          MutexLock lb(b);
          MutexLock la(a);
        }
      },
      "lock-order inversion.*abort_a.*abort_b|lock-order "
      "inversion.*abort_b.*abort_a");
}

}  // namespace
}  // namespace ppdb

#include "audit/generalizer.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace ppdb::audit {
namespace {

using rel::Value;

TEST(NumericRangeGeneralizerTest, LevelLadder) {
  NumericRangeGeneralizer g({0.0, 0.0, 10.0});
  ASSERT_OK_AND_ASSIGN(Value suppressed, g.Generalize(Value::Int64(67), 0));
  EXPECT_TRUE(suppressed.is_null());
  ASSERT_OK_AND_ASSIGN(Value existential, g.Generalize(Value::Int64(67), 1));
  EXPECT_EQ(existential, Value::String("*"));
  ASSERT_OK_AND_ASSIGN(Value partial, g.Generalize(Value::Int64(67), 2));
  EXPECT_EQ(partial, Value::String("[60, 70)"));
  ASSERT_OK_AND_ASSIGN(Value exact, g.Generalize(Value::Int64(67), 3));
  EXPECT_EQ(exact, Value::String("67"));
}

TEST(NumericRangeGeneralizerTest, NegativeValuesAndDoubles) {
  NumericRangeGeneralizer g({0.0, 5.0});
  ASSERT_OK_AND_ASSIGN(Value bin, g.Generalize(Value::Double(-3.2), 1));
  EXPECT_EQ(bin, Value::String("[-5, 0)"));
  ASSERT_OK_AND_ASSIGN(Value bin2, g.Generalize(Value::Double(12.5), 1));
  EXPECT_EQ(bin2, Value::String("[10, 15)"));
}

TEST(NumericRangeGeneralizerTest, NullStaysNull) {
  NumericRangeGeneralizer g({0.0, 10.0});
  for (int level = 0; level <= 3; ++level) {
    ASSERT_OK_AND_ASSIGN(Value v, g.Generalize(Value::Null(), level));
    EXPECT_TRUE(v.is_null());
  }
}

TEST(NumericRangeGeneralizerTest, NonNumericInputErrors) {
  NumericRangeGeneralizer g({0.0, 10.0});
  EXPECT_TRUE(
      g.Generalize(Value::String("abc"), 1).status().IsFailedPrecondition());
  // But exact levels (beyond the widths) just render:
  ASSERT_OK_AND_ASSIGN(Value v, g.Generalize(Value::String("abc"), 5));
  EXPECT_EQ(v, Value::String("abc"));
}

TEST(NumericRangeGeneralizerTest, NegativeLevelSuppresses) {
  NumericRangeGeneralizer g({0.0, 10.0});
  ASSERT_OK_AND_ASSIGN(Value v, g.Generalize(Value::Int64(5), -2));
  EXPECT_TRUE(v.is_null());
}

TEST(CategoryGeneralizerTest, MapsPerLevel) {
  CategoryGeneralizer g(
      {{}, {{"calgary", "canada"}, {"boston", "usa"}},
       {{"calgary", "alberta"}, {"boston", "massachusetts"}}},
      /*passthrough_unmapped=*/false);
  ASSERT_OK_AND_ASSIGN(Value country,
                       g.Generalize(Value::String("calgary"), 1));
  EXPECT_EQ(country, Value::String("canada"));
  ASSERT_OK_AND_ASSIGN(Value region,
                       g.Generalize(Value::String("calgary"), 2));
  EXPECT_EQ(region, Value::String("alberta"));
  // Beyond configured maps: exact.
  ASSERT_OK_AND_ASSIGN(Value exact,
                       g.Generalize(Value::String("calgary"), 3));
  EXPECT_EQ(exact, Value::String("calgary"));
  // Level 0 suppresses.
  ASSERT_OK_AND_ASSIGN(Value null, g.Generalize(Value::String("calgary"), 0));
  EXPECT_TRUE(null.is_null());
}

TEST(CategoryGeneralizerTest, UnmappedValueErrorsOrPassesThrough) {
  CategoryGeneralizer strict({{}, {{"a", "x"}}}, false);
  EXPECT_TRUE(
      strict.Generalize(Value::String("b"), 1).status().IsNotFound());
  CategoryGeneralizer lax({{}, {{"a", "x"}}}, true);
  ASSERT_OK_AND_ASSIGN(Value v, lax.Generalize(Value::String("b"), 1));
  EXPECT_EQ(v, Value::String("*"));
}

TEST(GeneralizerRegistryTest, FallbackBehaviour) {
  GeneralizerRegistry registry;
  const ValueGeneralizer& fallback = registry.ForAttribute("anything");
  ASSERT_OK_AND_ASSIGN(Value l0, fallback.Generalize(Value::Int64(7), 0));
  EXPECT_TRUE(l0.is_null());
  ASSERT_OK_AND_ASSIGN(Value l1, fallback.Generalize(Value::Int64(7), 1));
  EXPECT_EQ(l1, Value::String("*"));
  ASSERT_OK_AND_ASSIGN(Value l2, fallback.Generalize(Value::Int64(7), 2));
  EXPECT_EQ(l2, Value::String("7"));
}

TEST(GeneralizerRegistryTest, RegisteredGeneralizerWins) {
  GeneralizerRegistry registry;
  registry.Register("weight",
                    std::make_unique<NumericRangeGeneralizer>(
                        std::vector<double>{0.0, 0.0, 10.0}));
  ASSERT_OK_AND_ASSIGN(
      Value v, registry.ForAttribute("weight").Generalize(
                   Value::Double(81.0), 2));
  EXPECT_EQ(v, Value::String("[80, 90)"));
  // Other attributes still use the fallback.
  ASSERT_OK_AND_ASSIGN(Value other, registry.ForAttribute("age").Generalize(
                                        Value::Int64(30), 2));
  EXPECT_EQ(other, Value::String("30"));
}

}  // namespace
}  // namespace ppdb::audit

#include "server/broker.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include "common/deadline.h"
#include "common/status.h"
#include "obs/metrics.h"
#include "tests/test_util.h"

namespace ppdb::server {
namespace {

using std::chrono::milliseconds;

/// A reusable latch: jobs submitted through `Job()` block until `Open()`.
class Gate {
 public:
  void Open() {
    std::lock_guard<std::mutex> lock(mu_);
    open_ = true;
    cv_.notify_all();
  }

  void Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return open_; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool open_ = false;
};

/// Blocks every broker worker on `gate`, so subsequent submissions queue.
/// Returns after the workers have actually picked the blockers up.
void OccupyWorkers(RequestBroker& broker, int num_workers, Gate& gate,
                   std::atomic<int>& completions) {
  std::atomic<int> running{0};
  for (int i = 0; i < num_workers; ++i) {
    ASSERT_OK(broker.Submit(
        Lane::kNormal,
        [&](const Deadline&) {
          ++running;
          gate.Wait();
          return Response{Status::OK(), "blocker"};
        },
        [&](const Response&) { ++completions; }));
  }
  while (running.load() < num_workers) std::this_thread::yield();
}

TEST(RequestBrokerTest, ExecutesWorkAndReportsStats) {
  RequestBroker::Options options;
  options.num_workers = 2;
  RequestBroker broker(options);

  std::mutex mu;
  std::condition_variable cv;
  int done = 0;
  for (int i = 0; i < 10; ++i) {
    ASSERT_OK(broker.Submit(
        i % 2 == 0 ? Lane::kNormal : Lane::kPriority,
        [](const Deadline&) { return Response{Status::OK(), "hi"}; },
        [&](const Response& response) {
          EXPECT_OK(response.status);
          EXPECT_EQ(response.payload, "hi");
          std::lock_guard<std::mutex> lock(mu);
          ++done;
          cv.notify_one();
        }));
  }
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return done == 10; });

  RequestBroker::StatsSnapshot stats = broker.Stats();
  EXPECT_EQ(stats.submitted, 10);
  EXPECT_EQ(stats.admitted, 10);
  EXPECT_EQ(stats.shed, 0);
  EXPECT_EQ(stats.completed, 10);
  EXPECT_NE(stats.ToPayload().find("admitted=10"), std::string::npos);
}

// The acceptance-criteria overload drill: queue capacity K, 4K concurrent
// submissions against saturated workers -> exactly the excess is shed with
// kUnavailable, and every admitted request completes exactly once.
TEST(RequestBrokerTest, OverloadShedsExactlyTheExcess) {
  constexpr int kWorkers = 2;
  constexpr size_t kCapacity = 8;
  RequestBroker::Options options;
  options.num_workers = kWorkers;
  options.queue_capacity = kCapacity;
  RequestBroker broker(options);

  Gate gate;
  std::atomic<int> completions{0};
  OccupyWorkers(broker, kWorkers, gate, completions);

  // 4K concurrent submitters race for K queue slots.
  constexpr int kSubmitters = static_cast<int>(4 * kCapacity);
  std::atomic<int> admitted{0};
  std::atomic<int> shed{0};
  std::vector<std::thread> submitters;
  submitters.reserve(kSubmitters);
  for (int i = 0; i < kSubmitters; ++i) {
    submitters.emplace_back([&] {
      Status status = broker.Submit(
          Lane::kNormal,
          [](const Deadline&) { return Response{Status::OK(), {}}; },
          [&](const Response& response) {
            EXPECT_OK(response.status);
            ++completions;
          });
      if (status.ok()) {
        ++admitted;
      } else {
        EXPECT_TRUE(status.IsUnavailable()) << status;
        EXPECT_NE(status.message().find("retry_after_ms="), std::string::npos);
        ++shed;
      }
    });
  }
  for (std::thread& t : submitters) t.join();

  // Exactly K fit in the queue; exactly 3K are shed.
  EXPECT_EQ(admitted.load(), static_cast<int>(kCapacity));
  EXPECT_EQ(shed.load(), kSubmitters - static_cast<int>(kCapacity));

  gate.Open();
  broker.Drain();
  // Every admitted request (including the 2 blockers) completed; nothing
  // was silently dropped.
  EXPECT_EQ(completions.load(), kWorkers + static_cast<int>(kCapacity));
  RequestBroker::StatsSnapshot stats = broker.Stats();
  EXPECT_EQ(stats.shed, shed.load());
  EXPECT_EQ(stats.completed, completions.load());
  EXPECT_EQ(stats.in_flight, 0);
}

TEST(RequestBrokerTest, DeadlineExpiredInQueueSkipsTheWork) {
  RequestBroker::Options options;
  options.num_workers = 1;
  RequestBroker broker(options);

  Gate gate;
  std::atomic<int> completions{0};
  OccupyWorkers(broker, 1, gate, completions);

  std::atomic<bool> ran{false};
  std::mutex mu;
  std::condition_variable cv;
  Status seen;
  bool done = false;
  ASSERT_OK(broker.Submit(
      Lane::kNormal, milliseconds(5),
      [&](const Deadline&) {
        ran = true;
        return Response{Status::OK(), {}};
      },
      [&](const Response& response) {
        std::lock_guard<std::mutex> lock(mu);
        seen = response.status;
        done = true;
        cv.notify_one();
      }));

  // Let the 5ms budget lapse while the job sits in the queue.
  std::this_thread::sleep_for(milliseconds(30));
  gate.Open();
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return done; });
  }
  EXPECT_TRUE(seen.IsDeadlineExceeded()) << seen;
  EXPECT_FALSE(ran.load());  // the work never ran; the broker answered
  broker.Drain();
  EXPECT_EQ(broker.Stats().deadline_exceeded, 1);
}

TEST(RequestBrokerTest, PriorityLaneBypassesTheNormalBacklog) {
  RequestBroker::Options options;
  options.num_workers = 1;
  options.queue_capacity = 16;
  RequestBroker broker(options);

  Gate gate;
  std::atomic<int> completions{0};
  OccupyWorkers(broker, 1, gate, completions);

  std::mutex mu;
  std::vector<std::string> order;
  auto record = [&](std::string tag) {
    return [&, tag = std::move(tag)](const Response&) {
      std::lock_guard<std::mutex> lock(mu);
      order.push_back(tag);
    };
  };
  for (int i = 0; i < 5; ++i) {
    ASSERT_OK(broker.Submit(
        Lane::kNormal,
        [](const Deadline&) { return Response{Status::OK(), {}}; },
        record("normal")));
  }
  ASSERT_OK(broker.Submit(
      Lane::kPriority,
      [](const Deadline&) { return Response{Status::OK(), {}}; },
      record("priority")));

  gate.Open();
  broker.Drain();
  // The single worker popped the priority job before any queued normal
  // job, despite it being submitted last.
  ASSERT_EQ(order.size(), 6u);
  EXPECT_EQ(order.front(), "priority");
}

TEST(RequestBrokerTest, LanesHaveIndependentCapacity) {
  RequestBroker::Options options;
  options.num_workers = 1;
  options.queue_capacity = 1;
  options.priority_capacity = 4;
  RequestBroker broker(options);

  Gate gate;
  std::atomic<int> completions{0};
  OccupyWorkers(broker, 1, gate, completions);

  auto noop = [](const Deadline&) { return Response{Status::OK(), {}}; };
  auto ignore = [](const Response&) {};
  ASSERT_OK(broker.Submit(Lane::kNormal, noop, ignore));
  EXPECT_TRUE(broker.Submit(Lane::kNormal, noop, ignore).IsUnavailable());
  // The normal lane being full does not shed cheap priority work.
  for (int i = 0; i < 4; ++i) {
    ASSERT_OK(broker.Submit(Lane::kPriority, noop, ignore));
  }
  EXPECT_TRUE(broker.Submit(Lane::kPriority, noop, ignore).IsUnavailable());

  gate.Open();
  broker.Drain();
}

TEST(RequestBrokerTest, DrainCompletesInFlightAndRejectsNewWork) {
  RequestBroker::Options options;
  options.num_workers = 2;
  options.drain_deadline = milliseconds(5000);
  RequestBroker broker(options);

  std::atomic<int> completions{0};
  for (int i = 0; i < 8; ++i) {
    ASSERT_OK(broker.Submit(
        Lane::kNormal,
        [](const Deadline&) {
          std::this_thread::sleep_for(milliseconds(5));
          return Response{Status::OK(), {}};
        },
        [&](const Response& response) {
          EXPECT_OK(response.status);
          ++completions;
        }));
  }
  broker.Drain();
  EXPECT_EQ(completions.load(), 8);

  Status rejected = broker.Submit(
      Lane::kNormal,
      [](const Deadline&) { return Response{Status::OK(), {}}; },
      [](const Response&) {});
  EXPECT_TRUE(rejected.IsUnavailable());
  EXPECT_NE(rejected.message().find("draining"), std::string::npos);
  EXPECT_TRUE(broker.Stats().draining);
}

// Drain under a short drain deadline cancels the outstanding tokens, so
// cooperative jobs finish promptly with kDeadlineExceeded instead of
// holding shutdown hostage.
TEST(RequestBrokerTest, DrainDeadlineCancelsStragglers) {
  RequestBroker::Options options;
  options.num_workers = 1;
  options.drain_deadline = milliseconds(50);
  RequestBroker broker(options);

  std::atomic<bool> cancelled{false};
  ASSERT_OK(broker.Submit(
      Lane::kNormal,
      [&](const Deadline& deadline) {
        // A cooperative engine loop: polls the token, would otherwise run
        // for a very long time.
        for (int i = 0; i < 1000000; ++i) {
          if (deadline.Expired()) {
            cancelled = true;
            return Response{deadline.Check("loop"), {}};
          }
          std::this_thread::sleep_for(milliseconds(1));
        }
        return Response{Status::OK(), {}};
      },
      [](const Response&) {}));

  const auto start = std::chrono::steady_clock::now();
  broker.Drain();
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_TRUE(cancelled.load());
  EXPECT_EQ(broker.Stats().deadline_exceeded, 1);
  EXPECT_LT(elapsed, std::chrono::seconds(30));
}

// Stats() promises a mutually consistent snapshot: the counters are
// mutated and read under one lock, so the accounting identities hold in
// every snapshot, even one taken mid-traffic — not just at quiescence.
TEST(RequestBrokerTest, StatsSnapshotIsInternallyConsistent) {
  constexpr int kWorkers = 2;
  RequestBroker::Options options;
  options.num_workers = kWorkers;
  options.queue_capacity = 4;
  RequestBroker broker(options);

  auto check = [&broker] {
    RequestBroker::StatsSnapshot s = broker.Stats();
    EXPECT_EQ(s.submitted, s.admitted + s.shed) << s.ToPayload();
    EXPECT_EQ(s.admitted, s.completed + s.queue_depth + s.priority_depth +
                              s.in_flight)
        << s.ToPayload();
  };

  Gate gate;
  std::atomic<int> completions{0};
  OccupyWorkers(broker, kWorkers, gate, completions);
  // Saturate the normal lane and overflow it so shed > 0.
  for (int i = 0; i < 8; ++i) {
    (void)broker.Submit(
        Lane::kNormal,
        [](const Deadline&) { return Response{Status::OK(), {}}; },
        [&](const Response&) { ++completions; });
    check();
  }
  check();
  gate.Open();
  while (completions.load() < kWorkers + 4) std::this_thread::yield();
  check();

  RequestBroker::StatsSnapshot final_stats = broker.Stats();
  EXPECT_EQ(final_stats.shed, 4);
  EXPECT_EQ(final_stats.completed, kWorkers + 4);
}

TEST(RequestBrokerTest, DestructorDrainsOutstandingWork) {
  std::atomic<int> completions{0};
  {
    RequestBroker::Options options;
    options.num_workers = 2;
    RequestBroker broker(options);
    for (int i = 0; i < 6; ++i) {
      ASSERT_OK(broker.Submit(
          Lane::kNormal,
          [](const Deadline&) { return Response{Status::OK(), {}}; },
          [&](const Response&) { ++completions; }));
    }
  }
  EXPECT_EQ(completions.load(), 6);
}

// Regression: the constructor used to reset the process-wide gauge
// mirrors (ppdb_broker_workers, ppdb_broker_draining) without taking
// mu_, violating the documented "mirrors mutate under the Stats() mutex"
// invariant and racing with a live broker's Stats()/Drain() mirror
// writes. Construct and destroy brokers while a long-lived broker serves
// traffic and snapshots stats; tsan would flag the unsynchronized
// interleaving, and the final gauge value must reflect the last
// constructor once the churn stops.
TEST(RequestBrokerTest, ConstructorGaugeMirrorWritesAreSynchronized) {
  RequestBroker::Options options;
  options.num_workers = 2;
  RequestBroker broker(options);

  std::atomic<bool> stop{false};
  std::thread churn([&] {
    while (!stop.load()) {
      RequestBroker::Options inner;
      inner.num_workers = 3;
      RequestBroker transient(inner);  // ctor + dtor both touch the gauges
    }
  });

  std::atomic<int> completions{0};
  for (int i = 0; i < 50; ++i) {
    ASSERT_OK(broker.Submit(
        Lane::kNormal,
        [](const Deadline&) { return Response{Status::OK(), {}}; },
        [&](const Response&) { ++completions; }));
    RequestBroker::StatsSnapshot stats = broker.Stats();
    EXPECT_GE(stats.submitted, i + 1);
  }
  stop.store(true);
  churn.join();
  while (completions.load() < 50) std::this_thread::yield();

  RequestBroker::StatsSnapshot stats = broker.Stats();
  EXPECT_EQ(stats.num_workers, 2);
  EXPECT_EQ(stats.completed, 50);

  // Once construction is single-threaded again, last constructor wins
  // deterministically on the shared mirror.
  RequestBroker::Options last;
  last.num_workers = 4;
  RequestBroker final_broker(last);
  EXPECT_EQ(obs::MetricsRegistry::Default()
                .GetGauge("ppdb_broker_workers", "")
                ->Value(),
            4.0);
}

}  // namespace
}  // namespace ppdb::server

#include "violation/report_io.h"

#include <gtest/gtest.h>

#include "relational/csv.h"
#include "tests/test_util.h"
#include "violation/detector.h"

namespace ppdb::violation {
namespace {

using privacy::PrivacyTuple;
using privacy::PurposeId;

class ReportIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    marketing_ = config_.purposes.Register("marketing").value();
    ASSERT_OK(config_.policy.Add("weight",
                                 PrivacyTuple{marketing_, 2, 3, 3}));
    ASSERT_OK(config_.sensitivities.SetAttributeSensitivity("weight", 4.0));
    // Provider 1: clean. Provider 2: granularity violated. Provider 3:
    // stated nothing (implicit zero).
    config_.preferences.ForProvider(1).Set(
        "weight", PrivacyTuple{marketing_, 3, 3, 4});
    config_.preferences.ForProvider(2).Set(
        "weight", PrivacyTuple{marketing_, 2, 1, 3});
    config_.preferences.ForProvider(3);
    config_.thresholds[2] = 5.0;

    ViolationDetector detector(&config_);
    auto report = detector.Analyze();
    ASSERT_OK(report.status());
    report_ = std::move(report).value();
    defaults_ = ComputeDefaults(report_, config_);
  }

  privacy::PrivacyConfig config_;
  PurposeId marketing_;
  ViolationReport report_;
  DefaultReport defaults_;
};

TEST_F(ReportIoTest, ViolationCsvParsesBackAndMatches) {
  std::string csv = ViolationReportToCsv(report_);
  ASSERT_OK_AND_ASSIGN(auto rows, rel::ParseCsv(csv));
  ASSERT_EQ(rows.size(), 4u);  // header + 3 providers.
  EXPECT_EQ(rows[0][0], "provider_id");
  // Provider 1 clean.
  EXPECT_EQ(rows[1][1], "0");
  // Provider 2: severity 2 * 4 = 8.
  EXPECT_EQ(rows[2][1], "1");
  EXPECT_EQ(rows[2][2], "8");
  // Provider 3: implicit zero against (2,3,3) with Sigma=4: 8+12+12 = 32.
  EXPECT_EQ(rows[3][2], "32");
}

TEST_F(ReportIoTest, IncidentsCsvResolvesPurposeNames) {
  std::string csv = IncidentsToCsv(report_, config_.purposes);
  ASSERT_OK_AND_ASSIGN(auto rows, rel::ParseCsv(csv));
  // 1 incident for provider 2 + 3 for provider 3.
  ASSERT_EQ(rows.size(), 5u);
  EXPECT_EQ(rows[1][2], "marketing");
  EXPECT_EQ(rows[1][3], "granularity");
  EXPECT_EQ(rows[1][8], "0");
  // Provider 3's rows are implicit.
  EXPECT_EQ(rows[2][8], "1");
}

TEST_F(ReportIoTest, DefaultCsv) {
  std::string csv = DefaultReportToCsv(defaults_);
  ASSERT_OK_AND_ASSIGN(auto rows, rel::ParseCsv(csv));
  ASSERT_EQ(rows.size(), 4u);
  // Provider 2: violation 8 > threshold 5 -> defaulted.
  EXPECT_EQ(rows[2][1], "8");
  EXPECT_EQ(rows[2][2], "5");
  EXPECT_EQ(rows[2][3], "1");
  // Provider 3: threshold falls back to 0 -> defaulted too.
  EXPECT_EQ(rows[3][3], "1");
  // Provider 1 stays.
  EXPECT_EQ(rows[1][3], "0");
}

TEST_F(ReportIoTest, TransparencyStatementCleanProvider) {
  ASSERT_OK_AND_ASSIGN(std::string statement,
                       TransparencyStatement(report_, 1, config_));
  EXPECT_NE(statement.find("No violations"), std::string::npos);
}

TEST_F(ReportIoTest, TransparencyStatementNamesLevelsAndPurposes) {
  ASSERT_OK_AND_ASSIGN(std::string statement,
                       TransparencyStatement(report_, 2, config_));
  // Resolves level indices to scale names: policy granularity 3 =
  // "specific", preference 1 = "existential".
  EXPECT_NE(statement.find("marketing"), std::string::npos);
  EXPECT_NE(statement.find("specific"), std::string::npos);
  EXPECT_NE(statement.find("existential"), std::string::npos);
  EXPECT_NE(statement.find("severity 8.00"), std::string::npos);
}

TEST_F(ReportIoTest, TransparencyStatementFlagsImplicitPreferences) {
  ASSERT_OK_AND_ASSIGN(std::string statement,
                       TransparencyStatement(report_, 3, config_));
  EXPECT_NE(statement.find("stated no preference"), std::string::npos);
}

TEST_F(ReportIoTest, TransparencyStatementUnknownProvider) {
  EXPECT_TRUE(
      TransparencyStatement(report_, 99, config_).status().IsNotFound());
}

}  // namespace
}  // namespace ppdb::violation

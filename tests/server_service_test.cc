#include "server/service.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>

#include "common/rng.h"
#include "privacy/policy_dsl.h"
#include "server/request.h"
#include "storage/database_io.h"
#include "storage/fs.h"
#include "tests/test_util.h"

namespace ppdb::server {
namespace {

using std::chrono::milliseconds;

constexpr char kConfigDsl[] = R"(
scale visibility: l0, l1, l2, l3
scale granularity: l0, l1, l2, l3
scale retention: l0, l1, l2, l3
purpose pr
policy weight for pr: visibility=2, granularity=2, retention=2
pref 1 weight for pr: visibility=0, granularity=0, retention=0
pref 2 weight for pr: visibility=3, granularity=3, retention=3
attr_sensitivity weight = 2
threshold 1 = 3
threshold 2 = 3
)";

class DatabaseServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("ppdb_service_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(dir_);
    storage::Database database;
    ASSERT_OK_AND_ASSIGN(database.config,
                         privacy::ParsePrivacyConfig(kConfigDsl));
    ASSERT_OK(storage::SaveDatabase(dir_.string(), database));
    faulty_ = std::make_unique<storage::FaultInjectingFileSystem>(
        &storage::GetRealFileSystem(), Rng(7));
  }

  void TearDown() override { std::filesystem::remove_all(dir_); }

  /// A service whose saves hit the fault-injecting filesystem, with a
  /// hand-cranked breaker clock and no in-save retry (so each save is one
  /// breaker-visible outcome). The journal is off by default: the breaker
  /// drills below are about *checkpoint* faults, and with a journal a
  /// latched disk would fail the events themselves (by design — see the
  /// Journal* tests) instead of leaving durability debt.
  std::unique_ptr<DatabaseService> MakeService(int failure_threshold = 2,
                                               bool journal_enabled = false) {
    DatabaseService::Options options;
    options.checkpoint_every_events = 1;
    options.num_threads = 1;
    options.save_retry.max_attempts = 1;
    options.breaker.failure_threshold = failure_threshold;
    options.breaker.open_duration = milliseconds(1000);
    options.breaker.clock = [this] { return now_; };
    options.journal_enabled = journal_enabled;
    auto service =
        DatabaseService::Create(dir_.string(), faulty_.get(), options);
    EXPECT_OK(service.status());
    return std::move(service).value();
  }

  Response Run(DatabaseService& service, const std::string& line,
               const Deadline& deadline = Deadline()) {
    Result<Request> request = ParseRequest(line);
    EXPECT_OK(request.status()) << line;
    return service.Execute(request.value(), deadline);
  }

  /// Latches the filesystem: every mutating operation fails with
  /// kUnavailable until `Heal()`.
  void BreakDisk() {
    faulty_->SetPlan({.fail_at_op = 0,
                      .kind = storage::FaultKind::kFailOp,
                      .transient_failures = 1 << 30});
  }
  void Heal() { faulty_->SetPlan({.fail_at_op = -1}); }

  std::filesystem::path dir_;
  std::unique_ptr<storage::FaultInjectingFileSystem> faulty_;
  std::chrono::steady_clock::time_point now_{};
};

TEST_F(DatabaseServiceTest, ServesReadsAndEvents) {
  std::unique_ptr<DatabaseService> service = MakeService();

  Response ping = Run(*service, "ping");
  ASSERT_OK(ping.status);
  EXPECT_EQ(ping.payload, "pong");

  // Provider 1 (all-zero preference vs policy level 2) is violated.
  Response analyze = Run(*service, "analyze");
  ASSERT_OK(analyze.status);
  EXPECT_NE(analyze.payload.find("providers=2"), std::string::npos);
  EXPECT_NE(analyze.payload.find("violated=1"), std::string::npos);

  Response query = Run(*service, "query pw");
  ASSERT_OK(query.status);
  EXPECT_EQ(query.payload, "pw=0.5");

  // A new provider with implicit-zero preferences raises P(W) to 2/3.
  ASSERT_OK(Run(*service, "event add 9 100").status);
  EXPECT_EQ(Run(*service, "query pw").payload, "pw=0.666667");

  Response provider = Run(*service, "query provider 1");
  ASSERT_OK(provider.status);
  EXPECT_NE(provider.payload.find("violated=1"), std::string::npos);
  EXPECT_NE(provider.payload.find("defaulted=1"), std::string::npos);

  // Raising provider 9's tolerance above the policy clears the violation:
  // back to 1 violated of (now) 3 providers.
  Response pref = Run(*service, "event pref 9 weight pr 3 3 3");
  ASSERT_OK(pref.status);
  EXPECT_EQ(Run(*service, "query pw").payload, "pw=0.333333");

  // Unknown purposes and providers surface as clean errors.
  EXPECT_TRUE(
      Run(*service, "event pref 9 weight nosuch 1 1 1").status.IsNotFound());
  EXPECT_TRUE(Run(*service, "query provider 777").status.IsNotFound());
}

TEST_F(DatabaseServiceTest, AnalyticsRequestsWork) {
  std::unique_ptr<DatabaseService> service = MakeService();

  Response certify = Run(*service, "certify 0.6");
  ASSERT_OK(certify.status);
  EXPECT_NE(certify.payload.find("certified=1"), std::string::npos);

  Response estimate = Run(*service, "estimate pw 400 42");
  ASSERT_OK(estimate.status);
  EXPECT_NE(estimate.payload.find("census=0.5"), std::string::npos);

  Response whatif = Run(*service, "whatif v 2");
  ASSERT_OK(whatif.status);
  EXPECT_NE(whatif.payload.find("points=3"), std::string::npos);

  Response search = Run(*service, "search 4 1.0");
  ASSERT_OK(search.status);
  EXPECT_NE(search.payload.find("best_utility="), std::string::npos);

  EXPECT_TRUE(Run(*service, "whatif purpose 2").status.IsInvalidArgument());
}

TEST_F(DatabaseServiceTest, ExpiredDeadlineShortCircuits) {
  std::unique_ptr<DatabaseService> service = MakeService();
  Deadline expired = Deadline::After(milliseconds(0));
  EXPECT_TRUE(Run(*service, "analyze", expired).status.IsDeadlineExceeded());
  EXPECT_TRUE(Run(*service, "estimate pw 1000 1", expired)
                  .status.IsDeadlineExceeded());
}

// The acceptance-criteria fault drill: latched save failures trip the
// breaker within the configured threshold, the service keeps serving reads
// (degraded to read-only), and a half-open probe restores writes.
TEST_F(DatabaseServiceTest, BreakerTripsDegradesToReadOnlyAndRecovers) {
  std::unique_ptr<DatabaseService> service = MakeService(
      /*failure_threshold=*/2);
  BreakDisk();

  // Events succeed even though their checkpoints fail — durability debt is
  // recorded, not inflicted on the event.
  ASSERT_OK(Run(*service, "event add 100 1").status);
  EXPECT_EQ(service->breaker().state(), CircuitBreaker::State::kClosed);
  ASSERT_OK(Run(*service, "event add 101 1").status);
  EXPECT_EQ(service->breaker().state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(service->breaker().trips(), 1);

  // Open breaker: writes rejected up front with a retry hint...
  Response rejected = Run(*service, "event add 102 1");
  EXPECT_TRUE(rejected.status.IsUnavailable());
  EXPECT_NE(rejected.status.message().find("read-only"), std::string::npos);
  EXPECT_NE(rejected.status.message().find("retry_after_ms="),
            std::string::npos);
  EXPECT_TRUE(Run(*service, "save").status.IsUnavailable());

  // ...while reads keep serving from memory.
  EXPECT_EQ(Run(*service, "query pw").payload, "pw=0.75");
  ASSERT_OK(Run(*service, "analyze").status);
  Response stats = Run(*service, "stats");
  ASSERT_OK(stats.status);
  EXPECT_NE(stats.payload.find("breaker=open"), std::string::npos);

  // Disk heals; once the open window lapses the next write is the probe.
  Heal();
  now_ += milliseconds(1500);
  ASSERT_OK(Run(*service, "event add 102 1").status);
  EXPECT_EQ(service->breaker().state(), CircuitBreaker::State::kClosed);

  // Writes are fully restored and the checkpoint actually persisted.
  ASSERT_OK(Run(*service, "save").status);
  ASSERT_OK_AND_ASSIGN(storage::Database reloaded,
                       storage::LoadDatabase(dir_.string()));
  EXPECT_DOUBLE_EQ(reloaded.config.ThresholdFor(102), 1.0);
}

TEST_F(DatabaseServiceTest, FinalCheckpointBypassesTheOpenBreaker) {
  std::unique_ptr<DatabaseService> service = MakeService(
      /*failure_threshold=*/1);
  BreakDisk();
  ASSERT_OK(Run(*service, "event add 200 5").status);
  ASSERT_EQ(service->breaker().state(), CircuitBreaker::State::kOpen);

  // The breaker would reject this save; shutdown tries anyway — and the
  // disk has healed, so the last state lands.
  Heal();
  ASSERT_OK(service->FinalCheckpoint());
  ASSERT_OK_AND_ASSIGN(storage::Database reloaded,
                       storage::LoadDatabase(dir_.string()));
  EXPECT_DOUBLE_EQ(reloaded.config.ThresholdFor(200), 5.0);
}

TEST_F(DatabaseServiceTest, CheckpointFailureNeverFailsTheEvent) {
  std::unique_ptr<DatabaseService> service = MakeService(
      /*failure_threshold=*/100);
  BreakDisk();
  for (int i = 0; i < 10; ++i) {
    Response response =
        Run(*service, "event add " + std::to_string(300 + i) + " 1");
    ASSERT_OK(response.status) << i;
  }
  // All ten events landed in memory despite ten failed checkpoints.
  Response monitor = Run(*service, "query monitor");
  ASSERT_OK(monitor.status);
  EXPECT_NE(monitor.payload.find("providers=12"), std::string::npos);
  EXPECT_NE(monitor.payload.find("last_checkpoint=unavailable"),
            std::string::npos);
  EXPECT_EQ(service->breaker().consecutive_failures(), 10);
}

// --- Write-ahead journal drills -------------------------------------------
// These run with the journal ON and periodic checkpoints OFF, so the
// journal is the only thing standing between an acknowledged event and a
// crash.

class JournaledServiceTest : public DatabaseServiceTest {
 protected:
  std::unique_ptr<DatabaseService> MakeJournaled(int failure_threshold = 2) {
    DatabaseService::Options options;
    options.checkpoint_every_events = 0;  // the journal carries durability
    options.num_threads = 1;
    options.save_retry.max_attempts = 1;
    options.breaker.failure_threshold = failure_threshold;
    options.breaker.open_duration = milliseconds(1000);
    options.breaker.clock = [this] { return now_; };
    auto service =
        DatabaseService::Create(dir_.string(), faulty_.get(), options);
    EXPECT_OK(service.status());
    return std::move(service).value();
  }

  /// Faults the `op`-th journal I/O (open/append/sync/truncate on a
  /// "journal-" path); save-protocol I/O passes through unfaulted.
  void FaultJournalOp(int64_t op, storage::FaultKind kind) {
    faulty_->SetPlan(
        {.fail_at_op = op, .kind = kind, .path_filter = "journal-"});
  }
};

TEST_F(JournaledServiceTest, AcknowledgedEventsSurviveCrashWithoutCheckpoint) {
  {
    std::unique_ptr<DatabaseService> service = MakeJournaled();
    ASSERT_OK(Run(*service, "event add 9 100").status);
    ASSERT_OK(Run(*service, "event pref 9 weight pr 3 3 3").status);
    ASSERT_OK(Run(*service, "event threshold 9 50").status);
    // Service dropped without FinalCheckpoint — a kill -9.
  }
  storage::RecoveryReport report;
  ASSERT_OK_AND_ASSIGN(
      storage::Database reloaded,
      storage::LoadDatabase(dir_.string(), storage::GetRealFileSystem(),
                            &report));
  EXPECT_EQ(report.journal_replayed, 3) << report.ToString();
  EXPECT_FALSE(report.clean());
  EXPECT_DOUBLE_EQ(reloaded.config.ThresholdFor(9), 50.0);
  EXPECT_TRUE(reloaded.config.preferences.Contains(9));
}

TEST_F(JournaledServiceTest, SaveCheckpointRotatesAndPrunesTheJournal) {
  std::unique_ptr<DatabaseService> service = MakeJournaled();
  ASSERT_OK(Run(*service, "event add 9 100").status);
  Response stats = Run(*service, "stats");
  EXPECT_NE(stats.payload.find(" journal_records=1"), std::string::npos)
      << stats.payload;

  ASSERT_OK(Run(*service, "save").status);
  stats = Run(*service, "stats");
  // The checkpoint sealed the event into a generation; the journal
  // rotated to it and starts empty.
  EXPECT_NE(stats.payload.find(" journal_records=0"), std::string::npos)
      << stats.payload;
  EXPECT_NE(stats.payload.find(" events_since_checkpoint=0"),
            std::string::npos)
      << stats.payload;

  storage::RecoveryReport report;
  ASSERT_OK_AND_ASSIGN(
      storage::Database reloaded,
      storage::LoadDatabase(dir_.string(), storage::GetRealFileSystem(),
                            &report));
  EXPECT_TRUE(report.clean()) << report.ToString();
  EXPECT_DOUBLE_EQ(reloaded.config.ThresholdFor(9), 100.0);
}

TEST_F(JournaledServiceTest, AppendFaultFailsTheEventAndRescueRestores) {
  std::unique_ptr<DatabaseService> service = MakeJournaled();
  ASSERT_OK(Run(*service, "event add 9 100").status);

  // Fault the next journal write (SetPlan resets the op counter and the
  // filter skips save I/O, so op 0 is the event's frame append). The event
  // must NOT be acknowledged and must NOT be applied in memory.
  FaultJournalOp(0, storage::FaultKind::kTornWrite);
  Response failed = Run(*service, "event add 10 100");
  EXPECT_TRUE(failed.status.IsUnavailable()) << failed.status.ToString();
  EXPECT_NE(failed.status.message().find("not durable"), std::string::npos);
  EXPECT_EQ(service->breaker().consecutive_failures(), 1);

  Response stats = Run(*service, "stats");
  EXPECT_NE(stats.payload.find("journal_wedged=1"), std::string::npos)
      << stats.payload;
  // The unacknowledged event is not in memory.
  EXPECT_TRUE(Run(*service, "query provider 10").status.IsNotFound());

  // The disk is healthy again; the next event rescues with a checkpoint,
  // rotates the journal, and goes through.
  Heal();
  ASSERT_OK(Run(*service, "event add 11 100").status);
  stats = Run(*service, "stats");
  EXPECT_EQ(stats.payload.find("journal_wedged=1"), std::string::npos)
      << stats.payload;

  storage::RecoveryReport report;
  ASSERT_OK_AND_ASSIGN(
      storage::Database reloaded,
      storage::LoadDatabase(dir_.string(), storage::GetRealFileSystem(),
                            &report));
  EXPECT_DOUBLE_EQ(reloaded.config.ThresholdFor(9), 100.0);
  EXPECT_DOUBLE_EQ(reloaded.config.ThresholdFor(11), 100.0);
  EXPECT_FALSE(reloaded.config.preferences.Contains(10));
}

TEST_F(JournaledServiceTest, EnospcOpensTheBreakerAndTurnsReadOnly) {
  std::unique_ptr<DatabaseService> service = MakeJournaled(
      /*failure_threshold=*/1);
  ASSERT_OK(Run(*service, "event add 9 100").status);

  // ENOSPC is permanent (kOutOfRange), but the breaker must still open:
  // the journal failure is recorded as one transient-coded outcome.
  FaultJournalOp(0, storage::FaultKind::kNoSpace);
  EXPECT_TRUE(Run(*service, "event add 10 100").status.IsUnavailable());
  EXPECT_EQ(service->breaker().state(), CircuitBreaker::State::kOpen);

  // Read-only: mutating requests are rejected up front, reads keep going.
  Response rejected = Run(*service, "event add 11 100");
  EXPECT_TRUE(rejected.status.IsUnavailable());
  EXPECT_NE(rejected.status.message().find("read-only"), std::string::npos);
  ASSERT_OK(Run(*service, "analyze").status);

  // Past the open window, the probe event rescues (checkpoint + rotate)
  // and writes come back.
  Heal();
  now_ += milliseconds(1500);
  ASSERT_OK(Run(*service, "event add 11 100").status);
  EXPECT_EQ(service->breaker().state(), CircuitBreaker::State::kClosed);
}

TEST_F(JournaledServiceTest, StatsExposeDurabilityPosture) {
  std::unique_ptr<DatabaseService> service = MakeJournaled();
  Response stats = Run(*service, "stats");
  ASSERT_OK(stats.status);
  EXPECT_NE(stats.payload.find(" journal=journal-"), std::string::npos)
      << stats.payload;
  EXPECT_NE(stats.payload.find(" journal_bytes="), std::string::npos);
  EXPECT_NE(stats.payload.find(" events_since_checkpoint=0"),
            std::string::npos);
  EXPECT_NE(stats.payload.find(" last_checkpoint_generation=gen-"),
            std::string::npos)
      << stats.payload;

  ASSERT_OK(Run(*service, "event add 9 100").status);
  stats = Run(*service, "stats");
  EXPECT_NE(stats.payload.find(" events_since_checkpoint=1"),
            std::string::npos)
      << stats.payload;
}

TEST_F(DatabaseServiceTest, JournalDisabledStatsSayNone) {
  std::unique_ptr<DatabaseService> service = MakeService();
  Response stats = Run(*service, "stats");
  ASSERT_OK(stats.status);
  EXPECT_NE(stats.payload.find(" journal=none"), std::string::npos)
      << stats.payload;
}

// --- incremental-view serve surface ---------------------------------------

TEST_F(DatabaseServiceTest, ExpansionCheckAnsweredFromMaintainedState) {
  std::unique_ptr<DatabaseService> service = MakeService();
  // 2 providers, provider 1 defaulted (severity 6 > threshold 3):
  // N_future = 1, so doubling per-provider utility is justified.
  Response check = Run(*service, "expansion-check 10 12");
  ASSERT_OK(check.status);
  EXPECT_NE(check.payload.find("justified=1"), std::string::npos)
      << check.payload;
  EXPECT_NE(check.payload.find("n_current=2"), std::string::npos);
  EXPECT_NE(check.payload.find("n_defaulted=1"), std::string::npos);
  EXPECT_NE(check.payload.find("n_future=1"), std::string::npos);
  EXPECT_NE(check.payload.find("break_even_extra_utility=10"),
            std::string::npos)
      << check.payload;

  // T below break-even: not justified.
  check = Run(*service, "expansion-check 10 5");
  ASSERT_OK(check.status);
  EXPECT_NE(check.payload.find("justified=0"), std::string::npos)
      << check.payload;
}

TEST_F(DatabaseServiceTest, DriftCheckRequestRunsTheOracle) {
  std::unique_ptr<DatabaseService> service = MakeService();
  ASSERT_OK(Run(*service, "event add 9 100").status);
  Response drift = Run(*service, "driftcheck");
  ASSERT_OK(drift.status);
  EXPECT_NE(drift.payload.find("clean=1"), std::string::npos)
      << drift.payload;
  EXPECT_NE(drift.payload.find("providers_checked=3"), std::string::npos)
      << drift.payload;
  EXPECT_NE(drift.payload.find("drift_checks_clean=1"), std::string::npos)
      << drift.payload;
  EXPECT_NE(drift.payload.find("drift_checks_failed=0"), std::string::npos)
      << drift.payload;
}

TEST_F(DatabaseServiceTest, StatsExposeViewPosture) {
  std::unique_ptr<DatabaseService> service = MakeService();
  Response stats = Run(*service, "stats");
  ASSERT_OK(stats.status);
  // 2 providers × 1 policy tuple.
  EXPECT_NE(stats.payload.find(" view_cells=2"), std::string::npos)
      << stats.payload;
  EXPECT_NE(stats.payload.find(" view_delta_events=0"), std::string::npos);
  EXPECT_NE(stats.payload.find(" view_rebuild_events=0"), std::string::npos);
  EXPECT_NE(stats.payload.find(" drift_checks_failed=0"), std::string::npos);

  // A preference event rides the delta path and reports its cell count.
  ASSERT_OK(Run(*service, "event pref 1 weight pr 3 3 3").status);
  stats = Run(*service, "stats");
  EXPECT_NE(stats.payload.find(" view_delta_events=1"), std::string::npos)
      << stats.payload;
  EXPECT_NE(stats.payload.find(" view_last_delta_cells=1"),
            std::string::npos)
      << stats.payload;
}

TEST_F(DatabaseServiceTest, PeriodicDriftCheckRunsAtConfiguredCadence) {
  DatabaseService::Options options;
  options.checkpoint_every_events = 0;
  options.num_threads = 1;
  options.journal_enabled = false;
  options.drift_check_every_events = 2;
  ASSERT_OK_AND_ASSIGN(
      std::unique_ptr<DatabaseService> service,
      DatabaseService::Create(dir_.string(), faulty_.get(), options));

  ASSERT_OK(Run(*service, "event add 9 1").status);  // event 1: not yet
  Response stats = Run(*service, "stats");
  EXPECT_NE(stats.payload.find(" drift_checks_clean=0"), std::string::npos)
      << stats.payload;

  ASSERT_OK(Run(*service, "event add 10 1").status);  // event 2: fires
  stats = Run(*service, "stats");
  EXPECT_NE(stats.payload.find(" drift_checks_clean=1"), std::string::npos)
      << stats.payload;
  EXPECT_NE(stats.payload.find(" drift_checks_failed=0"), std::string::npos)
      << stats.payload;
}

TEST_F(JournaledServiceTest, ReplayedJournalConvergesViewDriftClean) {
  {
    std::unique_ptr<DatabaseService> service = MakeJournaled();
    ASSERT_OK(Run(*service, "event add 9 100").status);
    ASSERT_OK(Run(*service, "event pref 9 weight pr 3 3 3").status);
    ASSERT_OK(Run(*service, "event threshold 9 50").status);
    ASSERT_OK(Run(*service, "event add 11 0.5").status);
    // Dropped without FinalCheckpoint — a kill -9; the journal is the only
    // record of these events.
  }
  // The reloaded service rebuilds its view from the replayed config; the
  // drift oracle must find maintained state and full analysis identical.
  std::unique_ptr<DatabaseService> service = MakeJournaled();
  Response drift = Run(*service, "driftcheck");
  ASSERT_OK(drift.status);
  EXPECT_NE(drift.payload.find("clean=1"), std::string::npos)
      << drift.payload;
  EXPECT_NE(drift.payload.find("providers_checked=4"), std::string::npos)
      << drift.payload;
  Response provider = Run(*service, "query provider 9");
  ASSERT_OK(provider.status);
  EXPECT_NE(provider.payload.find("violated=0"), std::string::npos)
      << provider.payload;
}

}  // namespace
}  // namespace ppdb::server

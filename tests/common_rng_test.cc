#include "common/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace ppdb {
namespace {

TEST(RngTest, DeterministicFromSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, NextDoubleMeanNearHalf) {
  Rng rng(11);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, NextBoundedWithinBound) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(13), 13u);
  }
}

TEST(RngTest, NextBoundedCoversAllValues) {
  Rng rng(9);
  std::vector<int> counts(5, 0);
  for (int i = 0; i < 5000; ++i) {
    ++counts[rng.NextBounded(5)];
  }
  for (int c : counts) EXPECT_GT(c, 800);  // ~1000 each.
}

TEST(RngTest, NextIntInclusiveRange) {
  Rng rng(17);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    int64_t v = rng.NextInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    if (v == -2) saw_lo = true;
    if (v == 2) saw_hi = true;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextBoolRespectsProbability) {
  Rng rng(23);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.NextBool(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, NextBoolExtremes) {
  Rng rng(29);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.NextBool(0.0));
    EXPECT_TRUE(rng.NextBool(1.0));
  }
}

TEST(RngTest, GaussianMomentsMatch) {
  Rng rng(31);
  double sum = 0, sum2 = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    double v = rng.NextGaussian();
    sum += v;
    sum2 += v * v;
  }
  double mean = sum / n;
  double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(RngTest, GaussianWithParams) {
  Rng rng(37);
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.NextGaussian(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(RngTest, LogNormalIsPositiveWithCorrectMedian) {
  Rng rng(41);
  std::vector<double> samples;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    double v = rng.NextLogNormal(1.0, 0.5);
    EXPECT_GT(v, 0.0);
    samples.push_back(v);
  }
  std::sort(samples.begin(), samples.end());
  // Median of lognormal(mu, sigma) is exp(mu).
  EXPECT_NEAR(samples[n / 2], std::exp(1.0), 0.08);
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(43);
  std::vector<double> weights = {1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(4, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.NextCategorical(weights)];
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.01);
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[3] / static_cast<double>(n), 0.6, 0.01);
}

TEST(RngTest, CategoricalDegenerateInputs) {
  Rng rng(47);
  EXPECT_EQ(rng.NextCategorical({}), 0u);
  EXPECT_EQ(rng.NextCategorical({0.0, 0.0}), 0u);
  EXPECT_EQ(rng.NextCategorical({0.0, 5.0}), 1u);
}

TEST(RngTest, ZipfSkewsTowardLowRanks) {
  Rng rng(53);
  std::vector<int> counts(10, 0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) ++counts[rng.NextZipf(10, 1.2)];
  EXPECT_GT(counts[0], counts[1]);
  EXPECT_GT(counts[1], counts[4]);
  EXPECT_GT(counts[4], 0);
}

TEST(RngTest, ZipfZeroExponentIsUniform) {
  Rng rng(59);
  std::vector<int> counts(4, 0);
  const int n = 40000;
  for (int i = 0; i < n; ++i) ++counts[rng.NextZipf(4, 0.0)];
  for (int c : counts) {
    EXPECT_NEAR(c / static_cast<double>(n), 0.25, 0.02);
  }
}

TEST(RngTest, ZipfEdgeCases) {
  Rng rng(61);
  EXPECT_EQ(rng.NextZipf(0, 1.0), 0u);
  EXPECT_EQ(rng.NextZipf(1, 1.0), 0u);
}

}  // namespace
}  // namespace ppdb

#include "audit/monitor.h"

#include <gtest/gtest.h>

#include "audit/retention_sweeper.h"
#include "tests/test_util.h"

namespace ppdb::audit {
namespace {

using privacy::PrivacyTuple;
using privacy::PurposeId;
using rel::DataType;
using rel::Value;

// A two-provider clinic: provider 1 is permissive, provider 2 is tight.
class MonitorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    service_ = config_.purposes.Register("care").value();
    research_ = config_.purposes.Register("research").value();

    // Policy: weight usable for care at house visibility, specific
    // granularity, year retention. Research is NOT declared.
    ASSERT_OK(config_.policy.Add(
        "weight", PrivacyTuple{service_, /*v=*/1, /*g=*/3, /*r=*/3}));

    // Provider 1 allows everything the policy does.
    config_.preferences.ForProvider(1).Set(
        "weight", PrivacyTuple{service_, 3, 3, 4});
    // Provider 2 allows house visibility but only partial granularity and
    // week retention.
    config_.preferences.ForProvider(2).Set(
        "weight", PrivacyTuple{service_, 1, 2, 1});

    rel::Schema schema =
        rel::Schema::Create({{"weight", DataType::kDouble, ""}}).value();
    rel::Table* table = catalog_.CreateTable("patients", schema).value();
    ASSERT_OK(table->Insert(1, {Value::Double(81.0)}));
    ASSERT_OK(table->Insert(2, {Value::Double(67.0)}));

    generalizers_.Register("weight",
                           std::make_unique<NumericRangeGeneralizer>(
                               std::vector<double>{0.0, 0.0, 10.0}));

    ledger_.RecordIngest("patients", 1, "weight", /*day=*/0);
    ledger_.RecordIngest("patients", 2, "weight", /*day=*/0);
  }

  AccessRequest CareRequest(int64_t day = 1) {
    AccessRequest request;
    request.requester = "dr_house";
    request.visibility_level = 1;
    request.purpose = service_;
    request.table = "patients";
    request.attributes = {"weight"};
    request.day = day;
    return request;
  }

  rel::Catalog catalog_;
  privacy::PrivacyConfig config_;
  GeneralizerRegistry generalizers_;
  AuditLog log_;
  IngestLedger ledger_;
  PurposeId service_, research_;
};

TEST_F(MonitorTest, PolicyGateDeniesUndeclaredPurpose) {
  AccessMonitor monitor(&catalog_, &config_, &generalizers_, &log_,
                        EnforcementMode::kEnforce, &ledger_);
  AccessRequest request = CareRequest();
  request.purpose = research_;
  Status s = monitor.CheckPolicyGate(request);
  EXPECT_TRUE(s.IsPermissionDenied());
  // Execute also denies and logs it.
  EXPECT_TRUE(monitor.Execute(request).status().IsPermissionDenied());
  EXPECT_EQ(log_.CountByKind(AuditEventKind::kRequestDenied), 1);
}

TEST_F(MonitorTest, PolicyGateDeniesExcessVisibility) {
  AccessMonitor monitor(&catalog_, &config_, &generalizers_, &log_,
                        EnforcementMode::kEnforce, &ledger_);
  AccessRequest request = CareRequest();
  request.visibility_level = 2;  // Policy declares house (1) only.
  EXPECT_TRUE(monitor.CheckPolicyGate(request).IsPermissionDenied());
}

TEST_F(MonitorTest, PolicyGateValidatesRequestShape) {
  AccessMonitor monitor(&catalog_, &config_, &generalizers_, &log_,
                        EnforcementMode::kEnforce, &ledger_);
  AccessRequest no_attrs = CareRequest();
  no_attrs.attributes.clear();
  EXPECT_TRUE(monitor.CheckPolicyGate(no_attrs).IsInvalidArgument());

  AccessRequest bad_table = CareRequest();
  bad_table.table = "nope";
  EXPECT_TRUE(monitor.CheckPolicyGate(bad_table).IsNotFound());

  AccessRequest bad_attr = CareRequest();
  bad_attr.attributes = {"height"};
  EXPECT_TRUE(monitor.CheckPolicyGate(bad_attr).IsNotFound());

  AccessRequest bad_visibility = CareRequest();
  bad_visibility.visibility_level = 17;
  EXPECT_TRUE(monitor.CheckPolicyGate(bad_visibility).IsInvalidArgument());

  AccessRequest bad_purpose = CareRequest();
  bad_purpose.purpose = 99;
  EXPECT_TRUE(monitor.CheckPolicyGate(bad_purpose).IsInvalidArgument());
}

TEST_F(MonitorTest, EnforceModeClampsGranularityToPreference) {
  AccessMonitor monitor(&catalog_, &config_, &generalizers_, &log_,
                        EnforcementMode::kEnforce, &ledger_);
  ASSERT_OK_AND_ASSIGN(rel::ResultSet rs, monitor.Execute(CareRequest()));
  ASSERT_EQ(rs.num_rows(), 2);
  // Provider 1 allowed specific: exact rendering.
  EXPECT_EQ(rs.rows[0].values[0], Value::String("81"));
  // Provider 2 allowed partial (level 2): a decade range.
  EXPECT_EQ(rs.rows[1].values[0], Value::String("[60, 70)"));
  // The generalization is logged against provider 2.
  EXPECT_GE(log_.CountByKind(AuditEventKind::kCellGeneralized), 1);
  // No violations in enforce mode.
  EXPECT_EQ(log_.CountByKind(AuditEventKind::kViolationObserved), 0);
}

TEST_F(MonitorTest, ObserveModeReleasesAtPolicyAndLogsViolation) {
  AccessMonitor monitor(&catalog_, &config_, &generalizers_, &log_,
                        EnforcementMode::kObserve, &ledger_);
  ASSERT_OK_AND_ASSIGN(rel::ResultSet rs, monitor.Execute(CareRequest()));
  // Both released at policy granularity (specific).
  EXPECT_EQ(rs.rows[0].values[0], Value::String("81"));
  EXPECT_EQ(rs.rows[1].values[0], Value::String("67"));
  // Provider 2's exceeded granularity preference shows up as a violation.
  EXPECT_EQ(log_.ViolationsObservedFor(2), 1);
  EXPECT_EQ(log_.ViolationsObservedFor(1), 0);
}

TEST_F(MonitorTest, EnforceModeSuppressesVisibilityExceedance) {
  // Declare the policy wider so the gate passes at third_party visibility.
  ASSERT_OK(config_.policy.Remove("weight", service_));
  ASSERT_OK(config_.policy.Add("weight", PrivacyTuple{service_, 2, 3, 3}));
  AccessMonitor monitor(&catalog_, &config_, &generalizers_, &log_,
                        EnforcementMode::kEnforce, &ledger_);
  AccessRequest request = CareRequest();
  request.visibility_level = 2;  // Provider 2 allows only house (1).
  ASSERT_OK_AND_ASSIGN(rel::ResultSet rs, monitor.Execute(request));
  EXPECT_FALSE(rs.rows[0].values[0].is_null());  // Provider 1 allows 3.
  EXPECT_TRUE(rs.rows[1].values[0].is_null());   // Provider 2 suppressed.
  EXPECT_GE(log_.CountByKind(AuditEventKind::kCellSuppressed), 1);
}

TEST_F(MonitorTest, RetentionSuppressedAfterPreferenceWindow) {
  AccessMonitor monitor(&catalog_, &config_, &generalizers_, &log_,
                        EnforcementMode::kEnforce, &ledger_);
  // Day 10: provider 2's week (7 days) has passed; provider 1's year has
  // not.
  ASSERT_OK_AND_ASSIGN(rel::ResultSet rs, monitor.Execute(CareRequest(10)));
  EXPECT_FALSE(rs.rows[0].values[0].is_null());
  EXPECT_TRUE(rs.rows[1].values[0].is_null());
}

TEST_F(MonitorTest, RetentionBeyondPolicyNeverReleasedEvenInObserveMode) {
  AccessMonitor monitor(&catalog_, &config_, &generalizers_, &log_,
                        EnforcementMode::kObserve, &ledger_);
  // Day 400: past the policy's year for everyone.
  ASSERT_OK_AND_ASSIGN(rel::ResultSet rs, monitor.Execute(CareRequest(400)));
  EXPECT_TRUE(rs.rows[0].values[0].is_null());
  EXPECT_TRUE(rs.rows[1].values[0].is_null());
}

TEST_F(MonitorTest, ProviderWithoutPreferencesFullySuppressedInEnforce) {
  rel::Table* table = catalog_.GetTable("patients").value();
  ASSERT_OK(table->Insert(3, {Value::Double(70.0)}));
  ledger_.RecordIngest("patients", 3, "weight", 0);
  AccessMonitor monitor(&catalog_, &config_, &generalizers_, &log_,
                        EnforcementMode::kEnforce, &ledger_);
  ASSERT_OK_AND_ASSIGN(rel::ResultSet rs, monitor.Execute(CareRequest()));
  ASSERT_EQ(rs.num_rows(), 3);
  // Provider 3 never consented to anything: implicit zero => suppressed
  // (visibility 1 > 0).
  EXPECT_TRUE(rs.rows[2].values[0].is_null());
}

TEST_F(MonitorTest, GrantedRequestsAreLogged) {
  AccessMonitor monitor(&catalog_, &config_, &generalizers_, &log_,
                        EnforcementMode::kEnforce, &ledger_);
  ASSERT_OK(monitor.Execute(CareRequest()).status());
  EXPECT_EQ(log_.CountByKind(AuditEventKind::kRequestGranted), 1);
  // Provider-facing view sees their cell events.
  EXPECT_FALSE(log_.EventsForProvider(2).empty());
}

// --- RetentionSweeper ---------------------------------------------------------

TEST_F(MonitorTest, SweeperPurgesExpiredCells) {
  rel::Table* table = catalog_.GetTable("patients").value();
  RetentionSweeper sweeper(&config_, &ledger_, &log_);
  // Day 10: provider 2 (week) expired, provider 1 (year, capped by policy
  // year) not.
  ASSERT_OK_AND_ASSIGN(SweepStats stats, sweeper.Sweep(table, 10));
  EXPECT_EQ(stats.cells_examined, 2);
  EXPECT_EQ(stats.cells_purged, 1);
  // Provider 2's row had only one live cell: the row goes away entirely.
  EXPECT_EQ(stats.rows_erased, 1);
  EXPECT_FALSE(table->ContainsProvider(2));
  ASSERT_OK_AND_ASSIGN(Value kept, table->GetCell(1, "weight"));
  EXPECT_FALSE(kept.is_null());
  EXPECT_EQ(log_.CountByKind(AuditEventKind::kRetentionPurge), 1);
}

TEST_F(MonitorTest, SweeperHonoursPolicyCapEvenForPermissiveProviders) {
  rel::Table* table = catalog_.GetTable("patients").value();
  RetentionSweeper sweeper(&config_, &ledger_, &log_);
  // Day 400: policy retention (year) passed for everyone; provider 1's
  // personal indefinite preference cannot extend the policy.
  ASSERT_OK_AND_ASSIGN(SweepStats stats, sweeper.Sweep(table, 400));
  EXPECT_EQ(stats.cells_purged, 2);
  EXPECT_EQ(table->num_rows(), 0);
}

TEST_F(MonitorTest, SweeperSkipsUnrecordedDatums) {
  rel::Table* table = catalog_.GetTable("patients").value();
  ledger_.Erase("patients", 1, "weight");
  RetentionSweeper sweeper(&config_, &ledger_, &log_);
  ASSERT_OK_AND_ASSIGN(SweepStats stats, sweeper.Sweep(table, 10000));
  // Provider 1's age is unknown: kept. Provider 2: purged.
  EXPECT_EQ(stats.cells_purged, 1);
  EXPECT_TRUE(table->ContainsProvider(1));
}

TEST_F(MonitorTest, SweeperIdempotent) {
  rel::Table* table = catalog_.GetTable("patients").value();
  RetentionSweeper sweeper(&config_, &ledger_, &log_);
  ASSERT_OK(sweeper.Sweep(table, 10).status());
  ASSERT_OK_AND_ASSIGN(SweepStats again, sweeper.Sweep(table, 10));
  EXPECT_EQ(again.cells_purged, 0);
  EXPECT_EQ(again.rows_erased, 0);
}

// --- IngestLedger --------------------------------------------------------------

TEST(IngestLedgerTest, RecordAndAge) {
  IngestLedger ledger;
  ledger.RecordIngest("t", 1, "weight", 100);
  ASSERT_OK_AND_ASSIGN(int64_t day, ledger.IngestDay("t", 1, "weight"));
  EXPECT_EQ(day, 100);
  ASSERT_OK_AND_ASSIGN(int64_t age, ledger.AgeInDays("t", 1, "weight", 130));
  EXPECT_EQ(age, 30);
  EXPECT_TRUE(
      ledger.AgeInDays("t", 1, "weight", 50).status().IsInvalidArgument());
  EXPECT_TRUE(ledger.IngestDay("t", 2, "weight").status().IsNotFound());
}

TEST(IngestLedgerTest, RowIngestAndErase) {
  IngestLedger ledger;
  ledger.RecordRowIngest("t", 1, {"a", "b"}, 5);
  EXPECT_EQ(ledger.size(), 2);
  ASSERT_OK_AND_ASSIGN(int64_t day, ledger.IngestDay("t", 1, "b"));
  EXPECT_EQ(day, 5);
  ledger.Erase("t", 1, "a");
  EXPECT_EQ(ledger.size(), 1);
  EXPECT_TRUE(ledger.IngestDay("t", 1, "a").status().IsNotFound());
}

TEST(IngestLedgerTest, ReRecordingRestartsClock) {
  IngestLedger ledger;
  ledger.RecordIngest("t", 1, "a", 0);
  ledger.RecordIngest("t", 1, "a", 50);
  ASSERT_OK_AND_ASSIGN(int64_t age, ledger.AgeInDays("t", 1, "a", 60));
  EXPECT_EQ(age, 10);
}

// --- AuditLog ------------------------------------------------------------------

TEST(AuditLogTest, AppendAssignsSequence) {
  AuditLog log;
  int64_t s0 = log.Append(AuditEvent{});
  int64_t s1 = log.Append(AuditEvent{});
  EXPECT_EQ(s0, 0);
  EXPECT_EQ(s1, 1);
  EXPECT_EQ(log.size(), 2);
}

TEST(AuditLogTest, KindNamesComplete) {
  EXPECT_EQ(AuditEventKindName(AuditEventKind::kRequestGranted),
            "request_granted");
  EXPECT_EQ(AuditEventKindName(AuditEventKind::kRetentionPurge),
            "retention_purge");
}

TEST(AuditLogTest, ToStringShowsTail) {
  AuditLog log;
  for (int i = 0; i < 5; ++i) {
    AuditEvent e;
    e.requester = "req" + std::to_string(i);
    e.table = "t";
    log.Append(std::move(e));
  }
  std::string s = log.ToString(2);
  EXPECT_EQ(s.find("req0"), std::string::npos);
  EXPECT_NE(s.find("req4"), std::string::npos);
}

}  // namespace
}  // namespace ppdb::audit

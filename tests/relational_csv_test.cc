#include "relational/csv.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace ppdb::rel {
namespace {

Schema PeopleSchema() {
  return Schema::Create({{"age", DataType::kInt64, ""},
                         {"weight", DataType::kDouble, ""}})
      .value();
}

TEST(ParseCsvTest, SimpleRows) {
  ASSERT_OK_AND_ASSIGN(auto rows, ParseCsv("a,b\n1,2\n"));
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(rows[1], (std::vector<std::string>{"1", "2"}));
}

TEST(ParseCsvTest, MissingTrailingNewline) {
  ASSERT_OK_AND_ASSIGN(auto rows, ParseCsv("a,b\n1,2"));
  ASSERT_EQ(rows.size(), 2u);
}

TEST(ParseCsvTest, QuotedFields) {
  ASSERT_OK_AND_ASSIGN(auto rows, ParseCsv("\"a,b\",\"say \"\"hi\"\"\"\n"));
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], "a,b");
  EXPECT_EQ(rows[0][1], "say \"hi\"");
}

TEST(ParseCsvTest, QuotedNewline) {
  ASSERT_OK_AND_ASSIGN(auto rows, ParseCsv("\"line1\nline2\",x\n"));
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], "line1\nline2");
}

TEST(ParseCsvTest, CrLfLineEndings) {
  ASSERT_OK_AND_ASSIGN(auto rows, ParseCsv("a,b\r\n1,2\r\n"));
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1][1], "2");
}

TEST(ParseCsvTest, EmptyFields) {
  ASSERT_OK_AND_ASSIGN(auto rows, ParseCsv("a,,c\n"));
  ASSERT_EQ(rows[0].size(), 3u);
  EXPECT_EQ(rows[0][1], "");
}

TEST(ParseCsvTest, UnterminatedQuoteErrors) {
  EXPECT_TRUE(ParseCsv("\"open\n").status().IsParseError());
}

TEST(ParseCsvTest, QuoteInsideUnquotedFieldErrors) {
  EXPECT_TRUE(ParseCsv("ab\"c\n").status().IsParseError());
}

TEST(TableFromCsvTest, RoundTrip) {
  const char* csv =
      "provider_id,age,weight\n"
      "1,34,81.5\n"
      "2,28,\n";
  ASSERT_OK_AND_ASSIGN(Table t, TableFromCsv("people", PeopleSchema(), csv));
  EXPECT_EQ(t.num_rows(), 2);
  ASSERT_OK_AND_ASSIGN(Value w1, t.GetCell(1, "weight"));
  EXPECT_EQ(w1, Value::Double(81.5));
  ASSERT_OK_AND_ASSIGN(Value w2, t.GetCell(2, "weight"));
  EXPECT_TRUE(w2.is_null());

  // Serialize and re-parse.
  std::string out = TableToCsv(t);
  ASSERT_OK_AND_ASSIGN(Table t2,
                       TableFromCsv("people2", PeopleSchema(), out));
  EXPECT_EQ(t2.num_rows(), 2);
  ASSERT_OK_AND_ASSIGN(Value again, t2.GetCell(1, "weight"));
  EXPECT_EQ(again, Value::Double(81.5));
}

TEST(TableFromCsvTest, AutoNumberedProviders) {
  const char* csv = "age,weight\n30,70\n40,80\n";
  ASSERT_OK_AND_ASSIGN(
      Table t, TableFromCsv("people", PeopleSchema(), csv,
                            /*header_has_provider_id=*/false));
  EXPECT_EQ(t.ProviderIds(), (std::vector<ProviderId>{1, 2}));
}

TEST(TableFromCsvTest, HeaderMismatchErrors) {
  EXPECT_TRUE(TableFromCsv("p", PeopleSchema(),
                           "provider_id,age,height\n1,2,3\n")
                  .status()
                  .IsParseError());
  EXPECT_TRUE(TableFromCsv("p", PeopleSchema(), "provider_id,age\n")
                  .status()
                  .IsParseError());
}

TEST(TableFromCsvTest, BadProviderIdErrors) {
  Status s = TableFromCsv("p", PeopleSchema(),
                          "provider_id,age,weight\nseven,1,2\n")
                 .status();
  EXPECT_TRUE(s.IsParseError());
  EXPECT_NE(s.message().find("provider id"), std::string::npos);
}

TEST(TableFromCsvTest, BadCellCarriesContext) {
  Status s = TableFromCsv("p", PeopleSchema(),
                          "provider_id,age,weight\n1,not_a_number,2\n")
                 .status();
  EXPECT_TRUE(s.IsParseError());
  EXPECT_NE(s.message().find("age"), std::string::npos);
}

TEST(TableFromCsvTest, RaggedRowErrors) {
  EXPECT_TRUE(TableFromCsv("p", PeopleSchema(),
                           "provider_id,age,weight\n1,2\n")
                  .status()
                  .IsParseError());
}

TEST(TableFromCsvTest, DuplicateProviderErrors) {
  Status s = TableFromCsv("p", PeopleSchema(),
                          "provider_id,age,weight\n1,30,70\n1,31,71\n")
                 .status();
  EXPECT_TRUE(s.IsAlreadyExists());
}

TEST(TableFromCsvTest, EmptyInputErrors) {
  EXPECT_TRUE(
      TableFromCsv("p", PeopleSchema(), "").status().IsParseError());
}

TEST(TableToCsvTest, EscapesSpecialValues) {
  Schema schema =
      Schema::Create({{"note", DataType::kString, ""}}).value();
  ASSERT_OK_AND_ASSIGN(Table t, Table::Create("notes", schema));
  ASSERT_OK(t.Insert(1, {Value::String("a,b")}));
  std::string csv = TableToCsv(t);
  EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
}

}  // namespace
}  // namespace ppdb::rel

#include "stats/rank_correlation.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace ppdb::stats {
namespace {

TEST(AverageRanksTest, SimpleOrder) {
  EXPECT_EQ(AverageRanks({30, 10, 20}), (std::vector<double>{3, 1, 2}));
}

TEST(AverageRanksTest, TiesAveraged) {
  // 10 and 10 occupy ranks 1 and 2 -> both get 1.5.
  EXPECT_EQ(AverageRanks({10, 10, 20}), (std::vector<double>{1.5, 1.5, 3}));
  // All equal -> everyone gets the middle rank.
  EXPECT_EQ(AverageRanks({5, 5, 5}), (std::vector<double>{2, 2, 2}));
}

TEST(SpearmanTest, PerfectMonotone) {
  ASSERT_OK_AND_ASSIGN(double rho,
                       SpearmanCorrelation({1, 2, 3, 4}, {10, 20, 30, 40}));
  EXPECT_DOUBLE_EQ(rho, 1.0);
  // Any monotone transform keeps rho = 1.
  ASSERT_OK_AND_ASSIGN(double rho2,
                       SpearmanCorrelation({1, 2, 3, 4}, {1, 4, 9, 16}));
  EXPECT_DOUBLE_EQ(rho2, 1.0);
}

TEST(SpearmanTest, PerfectReversal) {
  ASSERT_OK_AND_ASSIGN(double rho,
                       SpearmanCorrelation({1, 2, 3, 4}, {8, 6, 4, 2}));
  EXPECT_DOUBLE_EQ(rho, -1.0);
}

TEST(SpearmanTest, KnownMidValue) {
  // Classic example: one swapped pair.
  ASSERT_OK_AND_ASSIGN(double rho,
                       SpearmanCorrelation({1, 2, 3}, {1, 3, 2}));
  EXPECT_DOUBLE_EQ(rho, 0.5);
}

TEST(SpearmanTest, HandlesTies) {
  ASSERT_OK_AND_ASSIGN(double rho,
                       SpearmanCorrelation({1, 1, 2, 3}, {1, 1, 2, 3}));
  EXPECT_DOUBLE_EQ(rho, 1.0);
}

TEST(SpearmanTest, Validation) {
  EXPECT_TRUE(SpearmanCorrelation({1, 2}, {1}).status().IsInvalidArgument());
  EXPECT_TRUE(SpearmanCorrelation({1}, {1}).status().IsInvalidArgument());
  EXPECT_TRUE(
      SpearmanCorrelation({1, 1, 1}, {1, 2, 3}).status().IsFailedPrecondition());
}

TEST(SpearmanTest, NearZeroForShuffled) {
  // A deliberately scrambled pairing with low rank agreement.
  ASSERT_OK_AND_ASSIGN(
      double rho,
      SpearmanCorrelation({1, 2, 3, 4, 5, 6, 7, 8},
                          {3, 8, 1, 6, 2, 7, 4, 5}));
  EXPECT_LT(std::abs(rho), 0.5);
}

}  // namespace
}  // namespace ppdb::stats

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "stats/confidence.h"
#include "stats/empirical_cdf.h"
#include "stats/histogram.h"
#include "stats/running_stats.h"
#include "stats/table_printer.h"
#include "tests/test_util.h"

namespace ppdb::stats {
namespace {

// --- RunningStats -----------------------------------------------------------

TEST(RunningStatsTest, EmptyState) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.sum(), 0.0);
}

TEST(RunningStatsTest, SingleValue) {
  RunningStats s;
  s.Add(5.0);
  EXPECT_EQ(s.count(), 1);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(RunningStatsTest, KnownMoments) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(v);
  EXPECT_EQ(s.count(), 8);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.population_variance(), 4.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatsTest, MergeEqualsCombinedStream) {
  RunningStats merged, a, b;
  for (int i = 0; i < 50; ++i) {
    double v = std::sin(i * 0.7) * 10;
    merged.Add(v);
    (i % 2 == 0 ? a : b).Add(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), merged.count());
  EXPECT_NEAR(a.mean(), merged.mean(), 1e-10);
  EXPECT_NEAR(a.variance(), merged.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(a.min(), merged.min());
  EXPECT_DOUBLE_EQ(a.max(), merged.max());
}

TEST(RunningStatsTest, MergeWithEmpty) {
  RunningStats a, empty;
  a.Add(1.0);
  a.Add(3.0);
  a.Merge(empty);
  EXPECT_EQ(a.count(), 2);
  empty.Merge(a);
  EXPECT_EQ(empty.count(), 2);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(RunningStatsTest, ResetClears) {
  RunningStats s;
  s.Add(9.0);
  s.Reset();
  EXPECT_EQ(s.count(), 0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

// --- Histogram ---------------------------------------------------------------

TEST(HistogramTest, CreateValidation) {
  EXPECT_TRUE(Histogram::Create(0, 1, 0).status().IsInvalidArgument());
  EXPECT_TRUE(Histogram::Create(1, 1, 4).status().IsInvalidArgument());
  EXPECT_TRUE(Histogram::Create(2, 1, 4).status().IsInvalidArgument());
  EXPECT_OK(Histogram::Create(0, 1, 4));
}

TEST(HistogramTest, BinsAndEdges) {
  ASSERT_OK_AND_ASSIGN(Histogram h, Histogram::Create(0.0, 10.0, 5));
  EXPECT_EQ(h.num_bins(), 5);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(4), 8.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(4), 10.0);
}

TEST(HistogramTest, CountsFallIntoCorrectBins) {
  ASSERT_OK_AND_ASSIGN(Histogram h, Histogram::Create(0.0, 10.0, 5));
  h.Add(0.0);   // bin 0
  h.Add(1.99);  // bin 0
  h.Add(2.0);   // bin 1
  h.Add(9.99);  // bin 4
  EXPECT_EQ(h.bin_count(0), 2);
  EXPECT_EQ(h.bin_count(1), 1);
  EXPECT_EQ(h.bin_count(4), 1);
  EXPECT_EQ(h.total_count(), 4);
}

TEST(HistogramTest, UnderOverflow) {
  ASSERT_OK_AND_ASSIGN(Histogram h, Histogram::Create(0.0, 10.0, 5));
  h.Add(-1.0);
  h.Add(10.0);   // hi edge is exclusive -> overflow
  h.Add(100.0);
  EXPECT_EQ(h.underflow_count(), 1);
  EXPECT_EQ(h.overflow_count(), 2);
  EXPECT_EQ(h.total_count(), 3);
}

TEST(HistogramTest, FractionsSumToOne) {
  ASSERT_OK_AND_ASSIGN(Histogram h, Histogram::Create(0.0, 4.0, 4));
  for (double v : {0.5, 1.5, 2.5, 3.5}) h.Add(v);
  double total = 0;
  for (int i = 0; i < h.num_bins(); ++i) total += h.bin_fraction(i);
  EXPECT_DOUBLE_EQ(total, 1.0);
}

TEST(HistogramTest, AsciiArtRendersRows) {
  ASSERT_OK_AND_ASSIGN(Histogram h, Histogram::Create(0.0, 2.0, 2));
  h.Add(0.5);
  std::string art = h.ToAsciiArt(10);
  EXPECT_NE(art.find('#'), std::string::npos);
  EXPECT_EQ(std::count(art.begin(), art.end(), '\n'), 2);
}

// --- EmpiricalCdf ------------------------------------------------------------

TEST(EmpiricalCdfTest, EmptyEvaluatesToZero) {
  EmpiricalCdf cdf;
  EXPECT_DOUBLE_EQ(cdf.Evaluate(1.0), 0.0);
  EXPECT_TRUE(cdf.Quantile(0.5).status().IsFailedPrecondition());
}

TEST(EmpiricalCdfTest, StepFunction) {
  EmpiricalCdf cdf;
  cdf.AddAll({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(cdf.Evaluate(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.Evaluate(1.0), 0.25);
  EXPECT_DOUBLE_EQ(cdf.Evaluate(2.5), 0.5);
  EXPECT_DOUBLE_EQ(cdf.Evaluate(4.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.Evaluate(99.0), 1.0);
}

TEST(EmpiricalCdfTest, QuantilesInverseCdf) {
  EmpiricalCdf cdf;
  cdf.AddAll({10, 20, 30, 40, 50});
  ASSERT_OK_AND_ASSIGN(double median, cdf.Median());
  EXPECT_DOUBLE_EQ(median, 30);
  ASSERT_OK_AND_ASSIGN(double q0, cdf.Quantile(0.0));
  EXPECT_DOUBLE_EQ(q0, 10);
  ASSERT_OK_AND_ASSIGN(double q1, cdf.Quantile(1.0));
  EXPECT_DOUBLE_EQ(q1, 50);
  EXPECT_TRUE(cdf.Quantile(1.5).status().IsInvalidArgument());
}

TEST(EmpiricalCdfTest, MonotoneNondecreasing) {
  EmpiricalCdf cdf;
  cdf.AddAll({3, 1, 4, 1, 5, 9, 2, 6});
  double prev = -1;
  for (double x = 0; x <= 10; x += 0.25) {
    double f = cdf.Evaluate(x);
    EXPECT_GE(f, prev);
    prev = f;
  }
}

TEST(EmpiricalCdfTest, KsDistanceIdenticalIsZero) {
  EmpiricalCdf a, b;
  a.AddAll({1, 2, 3});
  b.AddAll({1, 2, 3});
  EXPECT_DOUBLE_EQ(a.KsDistance(b), 0.0);
}

TEST(EmpiricalCdfTest, KsDistanceDisjointIsOne) {
  EmpiricalCdf a, b;
  a.AddAll({1, 2});
  b.AddAll({10, 20});
  EXPECT_DOUBLE_EQ(a.KsDistance(b), 1.0);
}

TEST(EmpiricalCdfTest, SortedSamples) {
  EmpiricalCdf cdf;
  cdf.AddAll({3, 1, 2});
  std::vector<double> sorted = cdf.SortedSamples();
  EXPECT_EQ(sorted, (std::vector<double>{1, 2, 3}));
}

// --- Confidence intervals -----------------------------------------------------

TEST(NormalQuantileTest, KnownValues) {
  ASSERT_OK_AND_ASSIGN(double z50, NormalQuantile(0.5));
  EXPECT_NEAR(z50, 0.0, 1e-8);
  ASSERT_OK_AND_ASSIGN(double z975, NormalQuantile(0.975));
  EXPECT_NEAR(z975, 1.959964, 1e-5);
  ASSERT_OK_AND_ASSIGN(double z025, NormalQuantile(0.025));
  EXPECT_NEAR(z025, -1.959964, 1e-5);
  ASSERT_OK_AND_ASSIGN(double z999, NormalQuantile(0.999));
  EXPECT_NEAR(z999, 3.090232, 1e-4);
}

TEST(NormalQuantileTest, RejectsOutOfDomain) {
  EXPECT_FALSE(NormalQuantile(0.0).ok());
  EXPECT_FALSE(NormalQuantile(1.0).ok());
  EXPECT_FALSE(NormalQuantile(-0.5).ok());
}

TEST(WilsonIntervalTest, ContainsPointEstimate) {
  ASSERT_OK_AND_ASSIGN(ConfidenceInterval ci, WilsonInterval(30, 100, 0.95));
  EXPECT_TRUE(ci.Contains(0.3));
  EXPECT_GT(ci.lo, 0.0);
  EXPECT_LT(ci.hi, 1.0);
}

TEST(WilsonIntervalTest, ZeroSuccessesStaysInUnitInterval) {
  ASSERT_OK_AND_ASSIGN(ConfidenceInterval ci, WilsonInterval(0, 50, 0.95));
  EXPECT_DOUBLE_EQ(ci.lo, 0.0);
  EXPECT_GT(ci.hi, 0.0);
  EXPECT_LT(ci.hi, 0.15);
}

TEST(WilsonIntervalTest, AllSuccesses) {
  ASSERT_OK_AND_ASSIGN(ConfidenceInterval ci, WilsonInterval(50, 50, 0.95));
  EXPECT_LT(ci.lo, 1.0);
  EXPECT_DOUBLE_EQ(ci.hi, 1.0);
}

TEST(WilsonIntervalTest, NarrowsWithMoreTrials) {
  ASSERT_OK_AND_ASSIGN(ConfidenceInterval small, WilsonInterval(5, 10, 0.95));
  ASSERT_OK_AND_ASSIGN(ConfidenceInterval large,
                       WilsonInterval(500, 1000, 0.95));
  EXPECT_LT(large.Width(), small.Width());
}

TEST(WilsonIntervalTest, RejectsBadArgs) {
  EXPECT_FALSE(WilsonInterval(1, 0, 0.95).ok());
  EXPECT_FALSE(WilsonInterval(-1, 10, 0.95).ok());
  EXPECT_FALSE(WilsonInterval(11, 10, 0.95).ok());
  EXPECT_FALSE(WilsonInterval(5, 10, 0.0).ok());
  EXPECT_FALSE(WilsonInterval(5, 10, 1.0).ok());
}

TEST(WaldIntervalTest, MatchesWilsonForLargeN) {
  ASSERT_OK_AND_ASSIGN(ConfidenceInterval wald,
                       WaldInterval(5000, 10000, 0.95));
  ASSERT_OK_AND_ASSIGN(ConfidenceInterval wilson,
                       WilsonInterval(5000, 10000, 0.95));
  EXPECT_NEAR(wald.lo, wilson.lo, 1e-3);
  EXPECT_NEAR(wald.hi, wilson.hi, 1e-3);
}

TEST(WaldIntervalTest, DegenerateAtZeroUnlikeWilson) {
  ASSERT_OK_AND_ASSIGN(ConfidenceInterval wald, WaldInterval(0, 50, 0.95));
  EXPECT_DOUBLE_EQ(wald.Width(), 0.0);  // The Wald pathology.
  ASSERT_OK_AND_ASSIGN(ConfidenceInterval wilson, WilsonInterval(0, 50, 0.95));
  EXPECT_GT(wilson.Width(), 0.0);  // Wilson stays informative.
}

// --- TablePrinter -------------------------------------------------------------

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter t({"name", "value"});
  t.AddRow({"a", "1"});
  t.AddRow({"longer", "22"});
  std::string s = t.ToString();
  EXPECT_NE(s.find("| name"), std::string::npos);
  EXPECT_NE(s.find("| longer"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2);
}

TEST(TablePrinterTest, PadsShortRows) {
  TablePrinter t({"a", "b", "c"});
  t.AddRow({"only"});
  std::string s = t.ToString();
  EXPECT_NE(s.find("only"), std::string::npos);
}

TEST(TablePrinterTest, Formatters) {
  EXPECT_EQ(TablePrinter::FormatDouble(1.23456, 2), "1.23");
  EXPECT_EQ(TablePrinter::FormatDouble(0.5), "0.500");
  EXPECT_EQ(TablePrinter::FormatInt(-42), "-42");
}

}  // namespace
}  // namespace ppdb::stats

#ifndef PPDB_TESTS_TEST_UTIL_H_
#define PPDB_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include "common/result.h"
#include "common/status.h"

/// Asserts that a Status (or Result) expression is OK.
#define ASSERT_OK(expr) ASSERT_TRUE(::ppdb::testing::IsOk(expr)) \
    << ::ppdb::testing::StatusOf(expr).ToString()
#define EXPECT_OK(expr) EXPECT_TRUE(::ppdb::testing::IsOk(expr)) \
    << ::ppdb::testing::StatusOf(expr).ToString()

/// Asserts OK and binds the value: ASSERT_OK_AND_ASSIGN(auto v, Foo());
#define ASSERT_OK_AND_ASSIGN(lhs, rexpr)                                    \
  ASSERT_OK_AND_ASSIGN_IMPL(                                                \
      PPDB_TEST_CONCAT(_assert_or_result_, __LINE__), lhs, rexpr)

#define ASSERT_OK_AND_ASSIGN_IMPL(result, lhs, rexpr) \
  auto result = (rexpr);                              \
  ASSERT_TRUE(result.ok()) << result.status().ToString(); \
  lhs = std::move(result).value()

#define PPDB_TEST_CONCAT_IMPL(x, y) x##y
#define PPDB_TEST_CONCAT(x, y) PPDB_TEST_CONCAT_IMPL(x, y)

namespace ppdb::testing {

inline bool IsOk(const Status& status) { return status.ok(); }
inline Status StatusOf(const Status& status) { return status; }

template <typename T>
bool IsOk(const Result<T>& result) {
  return result.ok();
}
template <typename T>
Status StatusOf(const Result<T>& result) {
  return result.status();
}

}  // namespace ppdb::testing

#endif  // PPDB_TESTS_TEST_UTIL_H_

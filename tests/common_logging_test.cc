#include "common/logging.h"

#include <gtest/gtest.h>

namespace ppdb {
namespace {

// Restores the global minimum level after each test.
class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_ = GetMinimumLogLevel(); }
  void TearDown() override { SetMinimumLogLevel(saved_); }
  LogLevel saved_ = LogLevel::kInfo;
};

TEST_F(LoggingTest, LevelNames) {
  EXPECT_STREQ(LogLevelName(LogLevel::kDebug), "DEBUG");
  EXPECT_STREQ(LogLevelName(LogLevel::kInfo), "INFO");
  EXPECT_STREQ(LogLevelName(LogLevel::kWarning), "WARNING");
  EXPECT_STREQ(LogLevelName(LogLevel::kError), "ERROR");
}

TEST_F(LoggingTest, MinimumLevelRoundTrips) {
  SetMinimumLogLevel(LogLevel::kError);
  EXPECT_EQ(GetMinimumLogLevel(), LogLevel::kError);
  SetMinimumLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetMinimumLogLevel(), LogLevel::kDebug);
}

TEST_F(LoggingTest, SuppressedMessagesDoNotEvaluate) {
  SetMinimumLogLevel(LogLevel::kError);
  int evaluations = 0;
  auto expensive = [&]() {
    ++evaluations;
    return "payload";
  };
  PPDB_LOG(kDebug) << expensive();
  PPDB_LOG(kInfo) << expensive();
  EXPECT_EQ(evaluations, 0);  // The stream expression short-circuits.
  ::testing::internal::CaptureStderr();
  PPDB_LOG(kError) << expensive();
  std::string captured = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(evaluations, 1);
  EXPECT_NE(captured.find("payload"), std::string::npos);
}

TEST_F(LoggingTest, MessageCarriesLevelFileAndLine) {
  SetMinimumLogLevel(LogLevel::kDebug);
  ::testing::internal::CaptureStderr();
  PPDB_LOG(kWarning) << "provider " << 42 << " defaulted";
  std::string captured = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(captured.find("[WARNING common_logging_test.cc:"),
            std::string::npos);
  EXPECT_NE(captured.find("provider 42 defaulted"), std::string::npos);
  EXPECT_EQ(captured.back(), '\n');
}

}  // namespace
}  // namespace ppdb

#include "relational/table.h"

#include <gtest/gtest.h>

#include "relational/catalog.h"
#include "relational/schema.h"
#include "tests/test_util.h"

namespace ppdb::rel {
namespace {

Schema TwoColumnSchema() {
  return Schema::Create({{"age", DataType::kInt64, "years"},
                         {"weight", DataType::kDouble, "kg"}})
      .value();
}

// --- Schema -----------------------------------------------------------------

TEST(SchemaTest, CreateAndLookup) {
  Schema schema = TwoColumnSchema();
  EXPECT_EQ(schema.num_attributes(), 2);
  ASSERT_OK_AND_ASSIGN(int j, schema.IndexOf("weight"));
  EXPECT_EQ(j, 1);
  EXPECT_TRUE(schema.Contains("age"));
  EXPECT_FALSE(schema.Contains("height"));
  EXPECT_TRUE(schema.IndexOf("height").status().IsNotFound());
}

TEST(SchemaTest, RejectsDuplicateNames) {
  auto r = Schema::Create({{"a", DataType::kInt64, ""},
                           {"a", DataType::kDouble, ""}});
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

TEST(SchemaTest, RejectsInvalidNames) {
  EXPECT_TRUE(Schema::Create({{"9bad", DataType::kInt64, ""}})
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(Schema::Create({{"", DataType::kInt64, ""}})
                  .status()
                  .IsInvalidArgument());
}

TEST(SchemaTest, RejectsNullTypedAttributes) {
  EXPECT_TRUE(Schema::Create({{"a", DataType::kNull, ""}})
                  .status()
                  .IsInvalidArgument());
}

TEST(SchemaTest, ValidateRowChecksArityAndTypes) {
  Schema schema = TwoColumnSchema();
  EXPECT_OK(schema.ValidateRow({Value::Int64(30), Value::Double(72.5)}));
  // Nulls are allowed anywhere.
  EXPECT_OK(schema.ValidateRow({Value::Null(), Value::Null()}));
  EXPECT_TRUE(schema.ValidateRow({Value::Int64(30)})
                  .IsInvalidArgument());
  EXPECT_TRUE(
      schema.ValidateRow({Value::Double(30.0), Value::Double(72.5)})
          .IsInvalidArgument());
}

TEST(SchemaTest, ToStringListsAttributes) {
  EXPECT_EQ(TwoColumnSchema().ToString(), "(age: int64, weight: double)");
}

// --- Table ------------------------------------------------------------------

TEST(TableTest, InsertAndGet) {
  ASSERT_OK_AND_ASSIGN(Table t, Table::Create("people", TwoColumnSchema()));
  ASSERT_OK(t.Insert(1, {Value::Int64(34), Value::Double(81.0)}));
  ASSERT_OK(t.Insert(2, {Value::Int64(28), Value::Double(64.2)}));
  EXPECT_EQ(t.num_rows(), 2);
  ASSERT_OK_AND_ASSIGN(Row row, t.GetRow(2));
  EXPECT_EQ(row.provider, 2);
  EXPECT_EQ(row.values[0], Value::Int64(28));
}

TEST(TableTest, RejectsInvalidName) {
  EXPECT_TRUE(
      Table::Create("bad name", TwoColumnSchema()).status().IsInvalidArgument());
}

TEST(TableTest, OneRowPerProvider) {
  ASSERT_OK_AND_ASSIGN(Table t, Table::Create("people", TwoColumnSchema()));
  ASSERT_OK(t.Insert(1, {Value::Int64(34), Value::Double(81.0)}));
  // Assumption 5: a second tuple for the same provider is rejected.
  EXPECT_TRUE(t.Insert(1, {Value::Int64(35), Value::Double(80.0)})
                  .IsAlreadyExists());
}

TEST(TableTest, InsertValidatesSchema) {
  ASSERT_OK_AND_ASSIGN(Table t, Table::Create("people", TwoColumnSchema()));
  EXPECT_TRUE(t.Insert(1, {Value::Int64(34)}).IsInvalidArgument());
  EXPECT_TRUE(
      t.Insert(1, {Value::String("x"), Value::Double(1.0)})
          .IsInvalidArgument());
  EXPECT_EQ(t.num_rows(), 0);
}

TEST(TableTest, GetCellByName) {
  ASSERT_OK_AND_ASSIGN(Table t, Table::Create("people", TwoColumnSchema()));
  ASSERT_OK(t.Insert(5, {Value::Int64(40), Value::Double(90.0)}));
  ASSERT_OK_AND_ASSIGN(Value v, t.GetCell(5, "weight"));
  EXPECT_EQ(v, Value::Double(90.0));
  EXPECT_TRUE(t.GetCell(5, "height").status().IsNotFound());
  EXPECT_TRUE(t.GetCell(6, "weight").status().IsNotFound());
}

TEST(TableTest, UpdateCell) {
  ASSERT_OK_AND_ASSIGN(Table t, Table::Create("people", TwoColumnSchema()));
  ASSERT_OK(t.Insert(1, {Value::Int64(34), Value::Double(81.0)}));
  ASSERT_OK(t.UpdateCell(1, 1, Value::Double(79.5)));
  ASSERT_OK_AND_ASSIGN(Value v, t.GetCell(1, "weight"));
  EXPECT_EQ(v, Value::Double(79.5));
  // Nulling a cell (suppression) is allowed.
  ASSERT_OK(t.UpdateCell(1, 1, Value::Null()));
  ASSERT_OK_AND_ASSIGN(Value n, t.GetCell(1, "weight"));
  EXPECT_TRUE(n.is_null());
}

TEST(TableTest, UpdateCellValidates) {
  ASSERT_OK_AND_ASSIGN(Table t, Table::Create("people", TwoColumnSchema()));
  ASSERT_OK(t.Insert(1, {Value::Int64(34), Value::Double(81.0)}));
  EXPECT_TRUE(t.UpdateCell(1, 1, Value::String("x")).IsInvalidArgument());
  EXPECT_TRUE(t.UpdateCell(1, 9, Value::Null()).IsInvalidArgument());
  EXPECT_TRUE(t.UpdateCell(2, 0, Value::Null()).IsNotFound());
}

TEST(TableTest, EraseProviderCompactsAndReindexes) {
  ASSERT_OK_AND_ASSIGN(Table t, Table::Create("people", TwoColumnSchema()));
  for (int64_t i = 1; i <= 4; ++i) {
    ASSERT_OK(t.Insert(i, {Value::Int64(i * 10), Value::Double(1.0)}));
  }
  ASSERT_OK(t.EraseProvider(2));
  EXPECT_EQ(t.num_rows(), 3);
  EXPECT_FALSE(t.ContainsProvider(2));
  // Remaining providers still addressable after reindex.
  ASSERT_OK_AND_ASSIGN(Value v, t.GetCell(4, "age"));
  EXPECT_EQ(v, Value::Int64(40));
  EXPECT_TRUE(t.EraseProvider(2).IsNotFound());
}

TEST(TableTest, EraseProvidersBatch) {
  ASSERT_OK_AND_ASSIGN(Table t, Table::Create("people", TwoColumnSchema()));
  for (int64_t i = 1; i <= 6; ++i) {
    ASSERT_OK(t.Insert(i, {Value::Int64(i), Value::Double(1.0)}));
  }
  // Mix of present and absent ids; absent ones are ignored.
  EXPECT_EQ(t.EraseProviders({2, 4, 99}), 2);
  EXPECT_EQ(t.num_rows(), 4);
  EXPECT_FALSE(t.ContainsProvider(2));
  EXPECT_TRUE(t.ContainsProvider(3));
  // Index still consistent after the batch compaction.
  ASSERT_OK_AND_ASSIGN(Value v, t.GetCell(6, "age"));
  EXPECT_EQ(v, Value::Int64(6));
  EXPECT_EQ(t.EraseProviders({}), 0);
}

TEST(TableTest, ProviderIdsInInsertionOrder) {
  ASSERT_OK_AND_ASSIGN(Table t, Table::Create("people", TwoColumnSchema()));
  ASSERT_OK(t.Insert(3, {Value::Null(), Value::Null()}));
  ASSERT_OK(t.Insert(1, {Value::Null(), Value::Null()}));
  EXPECT_EQ(t.ProviderIds(), (std::vector<ProviderId>{3, 1}));
}

TEST(TableTest, ToStringTruncates) {
  ASSERT_OK_AND_ASSIGN(Table t, Table::Create("people", TwoColumnSchema()));
  for (int64_t i = 1; i <= 5; ++i) {
    ASSERT_OK(t.Insert(i, {Value::Int64(i), Value::Double(1.0)}));
  }
  std::string s = t.ToString(2);
  EXPECT_NE(s.find("3 more"), std::string::npos);
}

// --- Catalog ------------------------------------------------------------------

TEST(CatalogTest, CreateGetDrop) {
  Catalog catalog;
  ASSERT_OK_AND_ASSIGN(Table* t,
                       catalog.CreateTable("people", TwoColumnSchema()));
  ASSERT_NE(t, nullptr);
  ASSERT_OK(t->Insert(1, {Value::Int64(30), Value::Double(70.0)}));
  ASSERT_OK_AND_ASSIGN(Table* again, catalog.GetTable("people"));
  EXPECT_EQ(again->num_rows(), 1);
  EXPECT_TRUE(catalog.Contains("people"));
  ASSERT_OK(catalog.DropTable("people"));
  EXPECT_FALSE(catalog.Contains("people"));
  EXPECT_TRUE(catalog.GetTable("people").status().IsNotFound());
  EXPECT_TRUE(catalog.DropTable("people").IsNotFound());
}

TEST(CatalogTest, RejectsDuplicateNames) {
  Catalog catalog;
  ASSERT_OK(catalog.CreateTable("t", TwoColumnSchema()).status());
  EXPECT_TRUE(
      catalog.CreateTable("t", TwoColumnSchema()).status().IsAlreadyExists());
}

TEST(CatalogTest, TableNamesSorted) {
  Catalog catalog;
  ASSERT_OK(catalog.CreateTable("zeta", TwoColumnSchema()).status());
  ASSERT_OK(catalog.CreateTable("alpha", TwoColumnSchema()).status());
  EXPECT_EQ(catalog.TableNames(),
            (std::vector<std::string>{"alpha", "zeta"}));
  EXPECT_EQ(catalog.num_tables(), 2);
}

TEST(CatalogTest, HandlesStayValidAfterOtherInsertions) {
  Catalog catalog;
  ASSERT_OK_AND_ASSIGN(Table* first,
                       catalog.CreateTable("first", TwoColumnSchema()));
  for (int i = 0; i < 50; ++i) {
    ASSERT_OK(
        catalog.CreateTable("t" + std::to_string(i), TwoColumnSchema())
            .status());
  }
  ASSERT_OK(first->Insert(1, {Value::Int64(1), Value::Double(1.0)}));
  ASSERT_OK_AND_ASSIGN(Table* found, catalog.GetTable("first"));
  EXPECT_EQ(found, first);
}

}  // namespace
}  // namespace ppdb::rel

#include "common/retry.h"

#include <gtest/gtest.h>

#include <chrono>
#include <limits>
#include <vector>

#include "tests/test_util.h"

namespace ppdb {
namespace {

using std::chrono::milliseconds;

RetryOptions Recorded(std::vector<milliseconds>* waits) {
  RetryOptions options;
  options.sleep = [waits](milliseconds wait) { waits->push_back(wait); };
  return options;
}

TEST(RetryTest, IsTransientOnlyForUnavailable) {
  EXPECT_TRUE(IsTransient(Status::Unavailable("busy")));
  EXPECT_FALSE(IsTransient(Status::OK()));
  EXPECT_FALSE(IsTransient(Status::Internal("bug")));
  EXPECT_FALSE(IsTransient(Status::NotFound("gone")));
  EXPECT_FALSE(IsTransient(Status::OutOfRange("no space")));
}

TEST(RetryTest, FirstAttemptSuccessDoesNotSleep) {
  std::vector<milliseconds> waits;
  int calls = 0;
  ASSERT_OK(RetryWithBackoff(Recorded(&waits), "op", [&] {
    ++calls;
    return Status::OK();
  }));
  EXPECT_EQ(calls, 1);
  EXPECT_TRUE(waits.empty());
}

TEST(RetryTest, RecoversAfterTransientFailures) {
  std::vector<milliseconds> waits;
  int calls = 0;
  ASSERT_OK(RetryWithBackoff(Recorded(&waits), "op", [&] {
    ++calls;
    return calls < 3 ? Status::Unavailable("flaky") : Status::OK();
  }));
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(waits.size(), 2u);
}

TEST(RetryTest, BackoffDoublesUpToCap) {
  std::vector<milliseconds> waits;
  RetryOptions options = Recorded(&waits);
  options.max_attempts = 6;
  options.initial_backoff = milliseconds(10);
  options.backoff_multiplier = 2.0;
  options.max_backoff = milliseconds(35);
  Status status = RetryWithBackoff(options, "op",
                                   [] { return Status::Unavailable("down"); });
  EXPECT_TRUE(status.IsUnavailable());
  ASSERT_EQ(waits.size(), 5u);
  EXPECT_EQ(waits[0], milliseconds(10));
  EXPECT_EQ(waits[1], milliseconds(20));
  EXPECT_EQ(waits[2], milliseconds(35));  // capped
  EXPECT_EQ(waits[3], milliseconds(35));
  EXPECT_EQ(waits[4], milliseconds(35));
}

TEST(RetryTest, GivesUpAfterMaxAttemptsAndAnnotates) {
  std::vector<milliseconds> waits;
  RetryOptions options = Recorded(&waits);
  options.max_attempts = 3;
  int calls = 0;
  Status status = RetryWithBackoff(options, "save ledger", [&] {
    ++calls;
    return Status::Unavailable("disk busy");
  });
  EXPECT_EQ(calls, 3);
  EXPECT_TRUE(status.IsUnavailable());
  EXPECT_NE(status.message().find("save ledger"), std::string::npos);
  EXPECT_NE(status.message().find("3 attempt(s)"), std::string::npos);
  EXPECT_NE(status.message().find("disk busy"), std::string::npos);
}

TEST(RetryTest, DoesNotRetryPermanentErrors) {
  std::vector<milliseconds> waits;
  int calls = 0;
  Status status = RetryWithBackoff(Recorded(&waits), "op", [&] {
    ++calls;
    return Status::OutOfRange("no space left on device");
  });
  EXPECT_EQ(calls, 1);
  EXPECT_TRUE(status.IsOutOfRange());
  EXPECT_TRUE(waits.empty());
}

TEST(RetryTest, ExtremeGrowthSaturatesInsteadOfOverflowing) {
  std::vector<milliseconds> waits;
  RetryOptions options = Recorded(&waits);
  options.max_attempts = 8;
  options.initial_backoff = milliseconds(1000);
  options.backoff_multiplier = 1e300;  // would overflow int64 immediately
  options.max_backoff = milliseconds(std::numeric_limits<int64_t>::max());
  Status status = RetryWithBackoff(options, "op",
                                   [] { return Status::Unavailable("down"); });
  EXPECT_TRUE(status.IsUnavailable());
  ASSERT_EQ(waits.size(), 7u);
  EXPECT_EQ(waits[0], milliseconds(1000));
  for (size_t i = 1; i < waits.size(); ++i) {
    // Saturated exactly at the cap — never negative, never wrapped.
    EXPECT_EQ(waits[i], options.max_backoff) << i;
  }
}

TEST(RetryTest, InitialBackoffAboveTheCapIsClamped) {
  std::vector<milliseconds> waits;
  RetryOptions options = Recorded(&waits);
  options.max_attempts = 3;
  options.initial_backoff = milliseconds(500);
  options.max_backoff = milliseconds(20);
  Status status = RetryWithBackoff(options, "op",
                                   [] { return Status::Unavailable("down"); });
  EXPECT_TRUE(status.IsUnavailable());
  ASSERT_EQ(waits.size(), 2u);
  EXPECT_EQ(waits[0], milliseconds(500));  // first wait honors the request
  EXPECT_EQ(waits[1], milliseconds(20));   // growth is capped from then on
}

TEST(RetryTest, JitterShavesWithinBoundsAndIsSeededDeterministically) {
  auto schedule = [](uint64_t seed) {
    std::vector<milliseconds> waits;
    RetryOptions options;
    options.sleep = [&waits](milliseconds wait) { waits.push_back(wait); };
    options.max_attempts = 6;
    options.initial_backoff = milliseconds(1000);
    options.max_backoff = milliseconds(8000);
    options.jitter = 0.5;
    options.jitter_seed = seed;
    Status status = RetryWithBackoff(
        options, "op", [] { return Status::Unavailable("down"); });
    EXPECT_TRUE(status.IsUnavailable());
    return waits;
  };

  std::vector<milliseconds> first = schedule(42);
  ASSERT_EQ(first.size(), 5u);
  std::vector<milliseconds> expected_base = {
      milliseconds(1000), milliseconds(2000), milliseconds(4000),
      milliseconds(8000), milliseconds(8000)};
  bool any_shaved = false;
  for (size_t i = 0; i < first.size(); ++i) {
    // Uniform in [wait/2, wait]: never longer than the deterministic
    // schedule, never shaved by more than the jitter fraction.
    EXPECT_LE(first[i], expected_base[i]) << i;
    EXPECT_GE(first[i], expected_base[i] / 2 - milliseconds(1)) << i;
    any_shaved = any_shaved || first[i] != expected_base[i];
  }
  EXPECT_TRUE(any_shaved);

  // Same seed, same schedule; different seed, (almost surely) different.
  EXPECT_EQ(schedule(42), first);
  EXPECT_NE(schedule(43), first);
}

TEST(RetryTest, JitterAboveOneIsClampedToFullShave) {
  std::vector<milliseconds> waits;
  RetryOptions options = Recorded(&waits);
  options.max_attempts = 4;
  options.initial_backoff = milliseconds(100);
  options.max_backoff = milliseconds(100);
  options.jitter = 7.0;  // clamped to 1.0
  options.jitter_seed = 9;
  Status status = RetryWithBackoff(options, "op",
                                   [] { return Status::Unavailable("down"); });
  EXPECT_TRUE(status.IsUnavailable());
  ASSERT_EQ(waits.size(), 3u);
  for (const milliseconds& wait : waits) {
    EXPECT_GE(wait, milliseconds(0));
    EXPECT_LE(wait, milliseconds(100));
  }
}

TEST(RetryTest, MaxAttemptsOneDisablesRetrying) {
  std::vector<milliseconds> waits;
  RetryOptions options = Recorded(&waits);
  options.max_attempts = 1;
  int calls = 0;
  Status status = RetryWithBackoff(options, "op", [&] {
    ++calls;
    return Status::Unavailable("flaky");
  });
  EXPECT_EQ(calls, 1);
  EXPECT_TRUE(status.IsUnavailable());
  EXPECT_TRUE(waits.empty());
}

}  // namespace
}  // namespace ppdb

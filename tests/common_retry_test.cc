#include "common/retry.h"

#include <gtest/gtest.h>

#include <chrono>
#include <vector>

#include "tests/test_util.h"

namespace ppdb {
namespace {

using std::chrono::milliseconds;

RetryOptions Recorded(std::vector<milliseconds>* waits) {
  RetryOptions options;
  options.sleep = [waits](milliseconds wait) { waits->push_back(wait); };
  return options;
}

TEST(RetryTest, IsTransientOnlyForUnavailable) {
  EXPECT_TRUE(IsTransient(Status::Unavailable("busy")));
  EXPECT_FALSE(IsTransient(Status::OK()));
  EXPECT_FALSE(IsTransient(Status::Internal("bug")));
  EXPECT_FALSE(IsTransient(Status::NotFound("gone")));
  EXPECT_FALSE(IsTransient(Status::OutOfRange("no space")));
}

TEST(RetryTest, FirstAttemptSuccessDoesNotSleep) {
  std::vector<milliseconds> waits;
  int calls = 0;
  ASSERT_OK(RetryWithBackoff(Recorded(&waits), "op", [&] {
    ++calls;
    return Status::OK();
  }));
  EXPECT_EQ(calls, 1);
  EXPECT_TRUE(waits.empty());
}

TEST(RetryTest, RecoversAfterTransientFailures) {
  std::vector<milliseconds> waits;
  int calls = 0;
  ASSERT_OK(RetryWithBackoff(Recorded(&waits), "op", [&] {
    ++calls;
    return calls < 3 ? Status::Unavailable("flaky") : Status::OK();
  }));
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(waits.size(), 2u);
}

TEST(RetryTest, BackoffDoublesUpToCap) {
  std::vector<milliseconds> waits;
  RetryOptions options = Recorded(&waits);
  options.max_attempts = 6;
  options.initial_backoff = milliseconds(10);
  options.backoff_multiplier = 2.0;
  options.max_backoff = milliseconds(35);
  Status status = RetryWithBackoff(options, "op",
                                   [] { return Status::Unavailable("down"); });
  EXPECT_TRUE(status.IsUnavailable());
  ASSERT_EQ(waits.size(), 5u);
  EXPECT_EQ(waits[0], milliseconds(10));
  EXPECT_EQ(waits[1], milliseconds(20));
  EXPECT_EQ(waits[2], milliseconds(35));  // capped
  EXPECT_EQ(waits[3], milliseconds(35));
  EXPECT_EQ(waits[4], milliseconds(35));
}

TEST(RetryTest, GivesUpAfterMaxAttemptsAndAnnotates) {
  std::vector<milliseconds> waits;
  RetryOptions options = Recorded(&waits);
  options.max_attempts = 3;
  int calls = 0;
  Status status = RetryWithBackoff(options, "save ledger", [&] {
    ++calls;
    return Status::Unavailable("disk busy");
  });
  EXPECT_EQ(calls, 3);
  EXPECT_TRUE(status.IsUnavailable());
  EXPECT_NE(status.message().find("save ledger"), std::string::npos);
  EXPECT_NE(status.message().find("3 attempt(s)"), std::string::npos);
  EXPECT_NE(status.message().find("disk busy"), std::string::npos);
}

TEST(RetryTest, DoesNotRetryPermanentErrors) {
  std::vector<milliseconds> waits;
  int calls = 0;
  Status status = RetryWithBackoff(Recorded(&waits), "op", [&] {
    ++calls;
    return Status::OutOfRange("no space left on device");
  });
  EXPECT_EQ(calls, 1);
  EXPECT_TRUE(status.IsOutOfRange());
  EXPECT_TRUE(waits.empty());
}

TEST(RetryTest, MaxAttemptsOneDisablesRetrying) {
  std::vector<milliseconds> waits;
  RetryOptions options = Recorded(&waits);
  options.max_attempts = 1;
  int calls = 0;
  Status status = RetryWithBackoff(options, "op", [&] {
    ++calls;
    return Status::Unavailable("flaky");
  });
  EXPECT_EQ(calls, 1);
  EXPECT_TRUE(status.IsUnavailable());
  EXPECT_TRUE(waits.empty());
}

}  // namespace
}  // namespace ppdb

#include "storage/journal.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "common/crc32c.h"
#include "common/macros.h"
#include "common/rng.h"
#include "privacy/policy_dsl.h"
#include "storage/fs.h"
#include "tests/test_util.h"

namespace ppdb::storage {
namespace {

namespace stdfs = std::filesystem;

constexpr char kConfigDsl[] = R"(
scale visibility: l0, l1, l2, l3
scale granularity: l0, l1, l2, l3
scale retention: l0, l1, l2, l3
purpose pr
policy weight for pr: visibility=2, granularity=2, retention=2
pref 1 weight for pr: visibility=0, granularity=0, retention=0
threshold 1 = 3
)";

privacy::PrivacyConfig MakeConfig() {
  auto config = privacy::ParsePrivacyConfig(kConfigDsl);
  PPDB_CHECK_OK(config.status());
  return std::move(config).value();
}

void PutU32Le(std::string& out, uint32_t v) {
  out.push_back(static_cast<char>(v & 0xFF));
  out.push_back(static_cast<char>((v >> 8) & 0xFF));
  out.push_back(static_cast<char>((v >> 16) & 0xFF));
  out.push_back(static_cast<char>((v >> 24) & 0xFF));
}

std::string Frame(std::string_view payload) {
  std::string frame;
  PutU32Le(frame, static_cast<uint32_t>(payload.size()));
  PutU32Le(frame, Crc32c(payload));
  frame.append(payload);
  return frame;
}

std::string Header(std::string_view base) {
  return "ppdb-journal v1 base=" + std::string(base) + "\n";
}

// --- CRC-32C ---------------------------------------------------------------

TEST(Crc32cTest, KnownVectors) {
  // RFC 3720 B.4 test vectors.
  EXPECT_EQ(Crc32c("123456789"), 0xE3069283u);
  EXPECT_EQ(Crc32c(std::string(32, '\0')), 0x8A9136AAu);
  EXPECT_EQ(Crc32c(std::string(32, '\xff')), 0x62A8AB43u);
  EXPECT_EQ(Crc32c(""), 0u);
}

TEST(Crc32cTest, ExtendChainsAcrossSplits) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  const uint32_t whole = Crc32c(data);
  for (size_t split = 0; split <= data.size(); ++split) {
    EXPECT_EQ(ExtendCrc32c(Crc32c(data.substr(0, split)), data.substr(split)),
              whole)
        << "split at " << split;
  }
}

TEST(Crc32cTest, DetectsSingleBitFlips) {
  const std::string data = "add 7 0.5";
  const uint32_t good = Crc32c(data);
  for (size_t byte = 0; byte < data.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string flipped = data;
      flipped[byte] = static_cast<char>(flipped[byte] ^ (1 << bit));
      EXPECT_NE(Crc32c(flipped), good);
    }
  }
}

// --- Segment scanning -------------------------------------------------------

TEST(JournalScanTest, RejectsNonJournals) {
  EXPECT_TRUE(ScanJournalSegment("").status().IsParseError());
  EXPECT_TRUE(ScanJournalSegment("no newline here").status().IsParseError());
  EXPECT_TRUE(ScanJournalSegment("wrong header\n").status().IsParseError());
  // A header prefix with no base generation is not a journal either.
  EXPECT_TRUE(
      ScanJournalSegment("ppdb-journal v1 base=\n").status().IsParseError());
}

TEST(JournalScanTest, HeaderOnlyScansEmpty) {
  ASSERT_OK_AND_ASSIGN(JournalScan scan, ScanJournalSegment(Header("gen-3")));
  EXPECT_EQ(scan.base_generation, "gen-3");
  EXPECT_TRUE(scan.payloads.empty());
  EXPECT_FALSE(scan.torn_tail);
  EXPECT_EQ(scan.valid_bytes, Header("gen-3").size());
}

TEST(JournalScanTest, ScansRecordsInOrder) {
  const std::string contents =
      Header("gen-0") + Frame("add 7 0.5") + Frame("remove 7");
  ASSERT_OK_AND_ASSIGN(JournalScan scan, ScanJournalSegment(contents));
  ASSERT_EQ(scan.payloads.size(), 2u);
  EXPECT_EQ(scan.payloads[0], "add 7 0.5");
  EXPECT_EQ(scan.payloads[1], "remove 7");
  EXPECT_FALSE(scan.torn_tail);
  EXPECT_EQ(scan.valid_bytes, contents.size());
}

TEST(JournalScanTest, TornTailVariantsStopCleanly) {
  const std::string base = Header("gen-0") + Frame("add 7 0.5");
  struct Case {
    std::string name;
    std::string tail;
  };
  const Case cases[] = {
      {"short frame header", std::string("\x03\x00", 2)},
      {"record length beyond end of segment", Frame("add 8 1").substr(0, 10)},
      {"crc mismatch", [] {
         std::string f = Frame("add 8 1");
         f.back() ^= 1;  // corrupt the payload, keep the stored CRC
         return f;
       }()},
      {"implausible record length", [] {
         std::string f;
         PutU32Le(f, 0xFFFFFFFFu);
         PutU32Le(f, 0);
         return f;
       }()},
  };
  for (const Case& c : cases) {
    SCOPED_TRACE(c.name);
    ASSERT_OK_AND_ASSIGN(JournalScan scan,
                         ScanJournalSegment(base + c.tail));
    // The good prefix survives; the tail is reported, not returned.
    ASSERT_EQ(scan.payloads.size(), 1u);
    EXPECT_EQ(scan.payloads[0], "add 7 0.5");
    EXPECT_TRUE(scan.torn_tail);
    EXPECT_NE(scan.torn_detail.find(c.name), std::string::npos)
        << scan.torn_detail;
    EXPECT_EQ(scan.valid_bytes, base.size());
  }
}

// --- Event codec ------------------------------------------------------------

TEST(JournalEventTest, EncodeDecodeRoundTripsEveryKind) {
  std::vector<JournalEvent> events(5);
  events[0].kind = JournalEvent::Kind::kAddProvider;
  events[0].provider = 7;
  events[0].threshold = 0.125;
  events[1].kind = JournalEvent::Kind::kRemoveProvider;
  events[1].provider = 9;
  events[2].kind = JournalEvent::Kind::kSetPreference;
  events[2].provider = 7;
  events[2].attribute = "weight";
  events[2].purpose = "pr";
  events[2].visibility = 1;
  events[2].granularity = 2;
  events[2].retention = 3;
  events[3].kind = JournalEvent::Kind::kRemovePreference;
  events[3].provider = 7;
  events[3].attribute = "weight";
  events[3].purpose = "pr";
  events[4].kind = JournalEvent::Kind::kSetThreshold;
  events[4].provider = 7;
  events[4].threshold = 1e-9;

  for (const JournalEvent& event : events) {
    SCOPED_TRACE(event.Encode());
    ASSERT_OK_AND_ASSIGN(JournalEvent decoded,
                         JournalEvent::Decode(event.Encode()));
    EXPECT_EQ(decoded.Encode(), event.Encode());
    EXPECT_EQ(decoded.kind, event.kind);
    EXPECT_EQ(decoded.provider, event.provider);
  }
}

TEST(JournalEventTest, DecodeRejectsMalformedPayloads) {
  EXPECT_TRUE(JournalEvent::Decode("").status().IsParseError());
  EXPECT_TRUE(JournalEvent::Decode("frobnicate 1").status().IsParseError());
  EXPECT_TRUE(JournalEvent::Decode("add 7").status().IsParseError());
  EXPECT_TRUE(JournalEvent::Decode("add 7 x").status().IsParseError());
  EXPECT_TRUE(JournalEvent::Decode("remove").status().IsParseError());
  EXPECT_TRUE(
      JournalEvent::Decode("pref 7 weight pr 1 2").status().IsParseError());
  EXPECT_TRUE(JournalEvent::Decode("pref 7 weight pr 1 2 9999999")
                  .status()
                  .IsParseError());
}

TEST(JournalEventTest, ValidateAndApplyMirrorTheMonitor) {
  privacy::PrivacyConfig config = MakeConfig();

  JournalEvent add;
  add.kind = JournalEvent::Kind::kAddProvider;
  add.provider = 1;
  add.threshold = 5;
  // Provider 1 already exists in the DSL config.
  EXPECT_TRUE(add.Apply(config).IsAlreadyExists());

  add.provider = 9;
  ASSERT_OK(add.Apply(config));
  EXPECT_TRUE(config.preferences.Contains(9));
  EXPECT_DOUBLE_EQ(config.ThresholdFor(9), 5.0);

  JournalEvent pref;
  pref.kind = JournalEvent::Kind::kSetPreference;
  pref.provider = 9;
  pref.attribute = "weight";
  pref.purpose = "pr";
  pref.visibility = 3;
  pref.granularity = 3;
  pref.retention = 3;
  ASSERT_OK(pref.Apply(config));
  pref.purpose = "nosuch";
  EXPECT_TRUE(pref.Apply(config).IsNotFound());
  pref.purpose = "pr";
  pref.visibility = 99;  // beyond the 4-level scale
  EXPECT_FALSE(pref.Apply(config).ok());

  JournalEvent unpref;
  unpref.kind = JournalEvent::Kind::kRemovePreference;
  unpref.provider = 9;
  unpref.attribute = "weight";
  unpref.purpose = "pr";
  ASSERT_OK(unpref.Apply(config));
  EXPECT_TRUE(unpref.Apply(config).IsNotFound());  // already removed

  JournalEvent threshold;
  threshold.kind = JournalEvent::Kind::kSetThreshold;
  threshold.provider = 77;
  threshold.threshold = 1;
  EXPECT_TRUE(threshold.Apply(config).IsNotFound());
  threshold.provider = 9;
  threshold.threshold = -1;
  EXPECT_TRUE(threshold.Apply(config).IsInvalidArgument());
  threshold.threshold = 42;
  ASSERT_OK(threshold.Apply(config));
  EXPECT_DOUBLE_EQ(config.ThresholdFor(9), 42.0);

  JournalEvent remove;
  remove.kind = JournalEvent::Kind::kRemoveProvider;
  remove.provider = 9;
  ASSERT_OK(remove.Apply(config));
  EXPECT_FALSE(config.preferences.Contains(9));
  EXPECT_TRUE(remove.Apply(config).IsNotFound());
}

// --- Replay -----------------------------------------------------------------

TEST(JournalReplayTest, ReplaysOntoConfig) {
  privacy::PrivacyConfig config = MakeConfig();
  const std::string contents = Header("gen-0") + Frame("add 9 5") +
                               Frame("pref 9 weight pr 3 3 3") +
                               Frame("threshold 9 42");
  ASSERT_OK_AND_ASSIGN(JournalReplayResult replay,
                       ReplayJournal(contents, "gen-0", config));
  EXPECT_EQ(replay.replayed, 3);
  EXPECT_FALSE(replay.torn_tail);
  ASSERT_OK(replay.stopped);
  EXPECT_DOUBLE_EQ(config.ThresholdFor(9), 42.0);
}

TEST(JournalReplayTest, RefusesStaleBaseGeneration) {
  privacy::PrivacyConfig config = MakeConfig();
  const std::string contents = Header("gen-0") + Frame("add 9 5");
  EXPECT_TRUE(ReplayJournal(contents, "gen-1", config)
                  .status()
                  .IsFailedPrecondition());
  EXPECT_FALSE(config.preferences.Contains(9));  // nothing applied
}

TEST(JournalReplayTest, TornTailIsACleanStop) {
  privacy::PrivacyConfig config = MakeConfig();
  std::string contents = Header("gen-0") + Frame("add 9 5");
  contents += Frame("add 10 5").substr(0, 9);  // torn mid-frame
  ASSERT_OK_AND_ASSIGN(JournalReplayResult replay,
                       ReplayJournal(contents, "gen-0", config));
  EXPECT_EQ(replay.replayed, 1);
  EXPECT_TRUE(replay.torn_tail);
  ASSERT_OK(replay.stopped);
  EXPECT_TRUE(config.preferences.Contains(9));
  EXPECT_FALSE(config.preferences.Contains(10));
}

TEST(JournalReplayTest, BadRecordStopsWithoutApplyingTheRest) {
  privacy::PrivacyConfig config = MakeConfig();
  // Valid CRC frame whose event cannot apply (provider 1 already exists):
  // replay stops there, keeping earlier events, skipping later ones.
  const std::string contents = Header("gen-0") + Frame("add 9 5") +
                               Frame("add 1 5") + Frame("add 10 5");
  ASSERT_OK_AND_ASSIGN(JournalReplayResult replay,
                       ReplayJournal(contents, "gen-0", config));
  EXPECT_EQ(replay.replayed, 1);
  EXPECT_TRUE(replay.stopped.IsAlreadyExists()) << replay.stopped.ToString();
  EXPECT_TRUE(config.preferences.Contains(9));
  EXPECT_FALSE(config.preferences.Contains(10));
}

// --- The Journal object -----------------------------------------------------

class JournalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = stdfs::temp_directory_path() /
           ("ppdb_journal_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    stdfs::remove_all(dir_);
    ASSERT_OK(real_.CreateDirectories(dir_.string()));
  }
  void TearDown() override { stdfs::remove_all(dir_); }

  std::string SegmentPath(std::string_view base) {
    return (dir_ / Journal::SegmentNameFor(base)).string();
  }

  stdfs::path dir_;
  RealFileSystem real_;
};

TEST_F(JournalTest, AppendsAreDurableAndScannable) {
  ASSERT_OK_AND_ASSIGN(
      std::unique_ptr<Journal> journal,
      Journal::Open(dir_.string(), "gen-0", real_, Journal::Options{}));
  EXPECT_EQ(journal->segment_name(), "journal-gen-0");
  EXPECT_EQ(journal->records_in_segment(), 0);
  ASSERT_OK(journal->Append("add 7 0.5"));
  ASSERT_OK(journal->Append("remove 7"));
  EXPECT_EQ(journal->records_in_segment(), 2);

  ASSERT_OK_AND_ASSIGN(std::string contents,
                       real_.ReadFile(SegmentPath("gen-0")));
  ASSERT_OK_AND_ASSIGN(JournalScan scan, ScanJournalSegment(contents));
  EXPECT_EQ(scan.base_generation, "gen-0");
  ASSERT_EQ(scan.payloads.size(), 2u);
  EXPECT_EQ(scan.payloads[0], "add 7 0.5");
  EXPECT_EQ(journal->active_segment_bytes(), contents.size());
}

TEST_F(JournalTest, ReopenResumesAfterTheExistingTail) {
  {
    ASSERT_OK_AND_ASSIGN(
        std::unique_ptr<Journal> journal,
        Journal::Open(dir_.string(), "gen-0", real_, Journal::Options{}));
    ASSERT_OK(journal->Append("add 7 0.5"));
  }
  ASSERT_OK_AND_ASSIGN(
      std::unique_ptr<Journal> journal,
      Journal::Open(dir_.string(), "gen-0", real_, Journal::Options{}));
  EXPECT_EQ(journal->records_in_segment(), 1);
  ASSERT_OK(journal->Append("remove 7"));

  ASSERT_OK_AND_ASSIGN(std::string contents,
                       real_.ReadFile(SegmentPath("gen-0")));
  ASSERT_OK_AND_ASSIGN(JournalScan scan, ScanJournalSegment(contents));
  ASSERT_EQ(scan.payloads.size(), 2u);
  EXPECT_EQ(scan.payloads[1], "remove 7");
}

TEST_F(JournalTest, OpenAmputatesATornTail) {
  {
    ASSERT_OK_AND_ASSIGN(
        std::unique_ptr<Journal> journal,
        Journal::Open(dir_.string(), "gen-0", real_, Journal::Options{}));
    ASSERT_OK(journal->Append("add 7 0.5"));
  }
  // Simulate a crash mid-append: raw garbage after the last valid record.
  {
    ASSERT_OK_AND_ASSIGN(std::unique_ptr<AppendableFile> raw,
                         real_.OpenAppendable(SegmentPath("gen-0")));
    ASSERT_OK(raw->Append(std::string("\x42\x00\x00", 3)));
    ASSERT_OK(raw->Close());
  }
  ASSERT_OK_AND_ASSIGN(
      std::unique_ptr<Journal> journal,
      Journal::Open(dir_.string(), "gen-0", real_, Journal::Options{}));
  EXPECT_EQ(journal->records_in_segment(), 1);
  ASSERT_OK(journal->Append("remove 7"));

  ASSERT_OK_AND_ASSIGN(std::string contents,
                       real_.ReadFile(SegmentPath("gen-0")));
  ASSERT_OK_AND_ASSIGN(JournalScan scan, ScanJournalSegment(contents));
  EXPECT_FALSE(scan.torn_tail);
  ASSERT_EQ(scan.payloads.size(), 2u);
  EXPECT_EQ(scan.payloads[1], "remove 7");
}

TEST_F(JournalTest, MismatchedBaseStartsOver) {
  {
    ASSERT_OK_AND_ASSIGN(
        std::unique_ptr<Journal> journal,
        Journal::Open(dir_.string(), "gen-0", real_, Journal::Options{}));
    ASSERT_OK(journal->Append("add 7 0.5"));
  }
  // Hand-rename the segment so its header names a different base than its
  // filename claims: not resumable, must start over empty.
  ASSERT_OK(real_.Rename(SegmentPath("gen-0"), SegmentPath("gen-1")));
  ASSERT_OK_AND_ASSIGN(
      std::unique_ptr<Journal> journal,
      Journal::Open(dir_.string(), "gen-1", real_, Journal::Options{}));
  EXPECT_EQ(journal->records_in_segment(), 0);
}

TEST_F(JournalTest, RotationStartsAFreshSegmentAndClearsTheWedge) {
  FaultInjectingFileSystem faulty(&real_, Rng(3));
  faulty.SetPlan({.fail_at_op = -1});
  ASSERT_OK_AND_ASSIGN(
      std::unique_ptr<Journal> journal,
      Journal::Open(dir_.string(), "gen-0", faulty, Journal::Options{}));
  ASSERT_OK(journal->Append("add 7 0.5"));

  // Fault the next append (op 0 after SetPlan): the journal wedges and
  // every later append fails fast with the original error.
  faulty.SetPlan({.fail_at_op = 0,
                  .kind = FaultKind::kTornWrite,
                  .path_filter = "journal-"});
  EXPECT_FALSE(journal->Append("add 8 0.5").ok());
  EXPECT_TRUE(journal->wedged());
  EXPECT_FALSE(journal->Append("add 9 0.5").ok());

  // The wedge repair truncated the torn bytes: the segment on disk ends at
  // the last durable record.
  ASSERT_OK_AND_ASSIGN(std::string contents,
                       real_.ReadFile(SegmentPath("gen-0")));
  ASSERT_OK_AND_ASSIGN(JournalScan scan, ScanJournalSegment(contents));
  EXPECT_FALSE(scan.torn_tail);
  ASSERT_EQ(scan.payloads.size(), 1u);

  // Rotation (disk healed) re-arms the journal on a fresh segment.
  faulty.SetPlan({.fail_at_op = -1});
  ASSERT_OK(journal->RotateTo("gen-1"));
  EXPECT_FALSE(journal->wedged());
  EXPECT_EQ(journal->segment_name(), "journal-gen-1");
  EXPECT_EQ(journal->records_in_segment(), 0);
  ASSERT_OK(journal->Append("add 8 0.5"));
  ASSERT_OK_AND_ASSIGN(contents, real_.ReadFile(SegmentPath("gen-1")));
  ASSERT_OK_AND_ASSIGN(scan, ScanJournalSegment(contents));
  EXPECT_EQ(scan.base_generation, "gen-1");
  ASSERT_EQ(scan.payloads.size(), 1u);
  EXPECT_EQ(scan.payloads[0], "add 8 0.5");
}

TEST_F(JournalTest, ConcurrentAppendersAllLandExactlyOnce) {
  Journal::Options options;
  options.batch_window = std::chrono::microseconds(200);
  ASSERT_OK_AND_ASSIGN(
      std::unique_ptr<Journal> journal,
      Journal::Open(dir_.string(), "gen-0", real_, options));

  constexpr int kThreads = 4;
  constexpr int kPerThread = 25;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&journal, t] {
      for (int i = 0; i < kPerThread; ++i) {
        Status appended = journal->Append(
            "add " + std::to_string(t * 1000 + i) + " 1");
        PPDB_CHECK_OK(appended);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(journal->records_in_segment(), kThreads * kPerThread);

  ASSERT_OK_AND_ASSIGN(std::string contents,
                       real_.ReadFile(SegmentPath("gen-0")));
  ASSERT_OK_AND_ASSIGN(JournalScan scan, ScanJournalSegment(contents));
  EXPECT_FALSE(scan.torn_tail);
  ASSERT_EQ(scan.payloads.size(),
            static_cast<size_t>(kThreads * kPerThread));
  // Every append appears exactly once, and each thread's records appear in
  // its own program order.
  std::vector<int> next(kThreads, 0);
  for (const std::string& payload : scan.payloads) {
    ASSERT_OK_AND_ASSIGN(JournalEvent event, JournalEvent::Decode(payload));
    const int thread = static_cast<int>(event.provider / 1000);
    const int index = static_cast<int>(event.provider % 1000);
    ASSERT_LT(thread, kThreads);
    EXPECT_EQ(index, next[thread]) << "thread " << thread;
    ++next[thread];
  }
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(next[t], kPerThread);
}

}  // namespace
}  // namespace ppdb::storage

#!/usr/bin/env bash
# negative_compile_test.sh — proves the static enforcement actually bites:
#
#   1. nodiscard   a TU that drops a ppdb::Status must FAIL to compile
#                  (and a control TU that handles it must compile), with
#                  whatever host compiler built the tree.
#   2. tsa         a TU that reads a PPDB_GUARDED_BY field without the
#                  lock must FAIL under clang -Wthread-safety -Werror (and
#                  the locked control must pass). Skipped (exit 77) when
#                  no clang with -Wthread-safety support is on PATH; the
#                  static-analysis CI job always runs it.
#
# Usage: negative_compile_test.sh <repo-root> [nodiscard|tsa|all]
#
# The optional mode runs one case in isolation, so ctest can report the
# always-runnable nodiscard case separately from the clang-only tsa case.
set -u

ROOT="${1:-$(cd "$(dirname "$0")/.." && pwd)}"
MODE="${2:-all}"
SRC="$ROOT/src"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

CXX="${CXX:-c++}"
FLAGS=(-std=c++20 -fsyntax-only -Werror -I "$SRC")

fail() { echo "FAIL: $*" >&2; exit 1; }

# --- case 1: [[nodiscard]] Status --------------------------------------------
if [ "$MODE" = "nodiscard" ] || [ "$MODE" = "all" ]; then
cat > "$TMP/discard.cc" <<'EOF'
#include "common/status.h"
ppdb::Status Mutate() { return ppdb::Status::Unavailable("x"); }
void Caller() { Mutate(); }  // dropped Status: must not compile
EOF
if "$CXX" "${FLAGS[@]}" "$TMP/discard.cc" 2> "$TMP/discard.err"; then
  fail "a dropped ppdb::Status compiled cleanly; [[nodiscard]] is not enforced"
fi
grep -qi "nodiscard\|unused.result\|discard" "$TMP/discard.err" \
  || fail "dropped-Status rejection was not a nodiscard diagnostic: $(cat "$TMP/discard.err")"
echo "PASS  nodiscard: dropping a Status fails the build"

cat > "$TMP/discard_ok.cc" <<'EOF'
#include "common/macros.h"
#include "common/status.h"
ppdb::Status Mutate() { return ppdb::Status::Unavailable("x"); }
ppdb::Status Caller() {
  PPDB_RETURN_NOT_OK(Mutate());
  PPDB_IGNORE_ERROR(Mutate());  // explicit, visible discard
  return ppdb::Status::OK();
}
EOF
"$CXX" "${FLAGS[@]}" "$TMP/discard_ok.cc" 2> "$TMP/discard_ok.err" \
  || fail "the handled-Status control TU failed to compile: $(cat "$TMP/discard_ok.err")"
echo "PASS  nodiscard: handling the Status compiles (control)"
fi

# --- case 2: thread-safety analysis ------------------------------------------
if [ "$MODE" = "tsa" ] || [ "$MODE" = "all" ]; then
CLANG=""
for c in clang++ clang++-20 clang++-19 clang++-18 clang++-17 clang++-16 \
         clang++-15 clang++-14; do
  command -v "$c" > /dev/null 2>&1 || continue
  if printf 'int main(){}' \
      | "$c" -x c++ -fsyntax-only -Wthread-safety - > /dev/null 2>&1; then
    CLANG="$c"
    break
  fi
done
if [ -z "$CLANG" ]; then
  echo "SKIP  tsa: no clang with -Wthread-safety on PATH (CI covers this)"
  exit 77
fi

cat > "$TMP/tsa_bad.cc" <<'EOF'
#include "common/mutex.h"
#include "common/thread_annotations.h"
class Account {
 public:
  void Deposit(int amount) { balance_ += amount; }  // lock not held
 private:
  ppdb::Mutex mu_;
  int balance_ PPDB_GUARDED_BY(mu_) = 0;
};
EOF
if "$CLANG" "${FLAGS[@]}" -Wthread-safety "$TMP/tsa_bad.cc" \
    2> "$TMP/tsa_bad.err"; then
  fail "an unguarded write to a PPDB_GUARDED_BY field compiled cleanly"
fi
grep -q "thread-safety\|requires holding" "$TMP/tsa_bad.err" \
  || fail "unguarded-write rejection was not a thread-safety diagnostic: $(cat "$TMP/tsa_bad.err")"
echo "PASS  tsa: unguarded access to a GUARDED_BY field fails the build"

cat > "$TMP/tsa_ok.cc" <<'EOF'
#include "common/mutex.h"
#include "common/thread_annotations.h"
class Account {
 public:
  void Deposit(int amount) {
    ppdb::MutexLock lock(mu_);
    balance_ += amount;
  }
 private:
  ppdb::Mutex mu_;
  int balance_ PPDB_GUARDED_BY(mu_) = 0;
};
EOF
"$CLANG" "${FLAGS[@]}" -Wthread-safety "$TMP/tsa_ok.cc" \
    2> "$TMP/tsa_ok.err" \
  || fail "the locked control TU failed thread-safety analysis: $(cat "$TMP/tsa_ok.err")"
echo "PASS  tsa: locked access compiles (control)"
fi

echo "negative_compile_test: requested cases passed."

// Crash matrix for the atomic save protocol: a full save is run once to
// count its mutating filesystem operations (the injection sites), then for
// every site × every fault kind the save is killed there and the directory
// re-loaded. The invariant under test is Def. 3's substrate guarantee:
// LoadDatabase always yields either the complete pre-save or the complete
// post-save database — field by field — never an error-free hybrid.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/rng.h"
#include "privacy/policy_dsl.h"
#include "relational/csv.h"
#include "storage/database_io.h"
#include "storage/fs.h"
#include "tests/test_util.h"

namespace ppdb::storage {
namespace {

namespace stdfs = std::filesystem;

constexpr int kNumTables = 12;

// Builds a database with enough tables that one save crosses well over 20
// injection sites. `post` derives a second, everywhere-different state:
// changed rows, one table dropped, one added, extra config/ledger/audit.
Database MakeDatabase(bool post) {
  Database db;
  std::string dsl = R"(
purpose care
policy weight for care: visibility=house, granularity=specific, retention=year
pref 1 weight for care: visibility=house, granularity=partial, retention=year
attr_sensitivity weight = 4
threshold 1 = 10
)";
  if (post) dsl += "threshold 2 = 25\n";
  auto config = privacy::ParsePrivacyConfig(dsl);
  PPDB_CHECK_OK(config.status());
  db.config = std::move(config).value();

  for (int t = 0; t < kNumTables + (post ? 1 : 0); ++t) {
    if (post && t == kNumTables - 1) continue;  // dropped in the post state
    std::string name = "t" + std::to_string(t);
    rel::Schema schema =
        rel::Schema::Create({{"a", rel::DataType::kInt64, ""},
                             {"b", rel::DataType::kString, ""}})
            .value();
    int64_t salt = post ? 1000 : 0;
    if (t % 3 == 2) {
      rel::Table multi = rel::Table::CreateMultiRecord(name, schema).value();
      PPDB_CHECK_OK(multi.Insert(
          1, {rel::Value::Int64(t + salt), rel::Value::String("x")}));
      PPDB_CHECK_OK(multi.Insert(
          1, {rel::Value::Int64(2 * t + salt), rel::Value::String("y")}));
      PPDB_CHECK_OK(db.catalog.AddTable(std::move(multi)).status());
    } else {
      rel::Table* table = db.catalog.CreateTable(name, schema).value();
      PPDB_CHECK_OK(table->Insert(
          1, {rel::Value::Int64(t + salt), rel::Value::String("one")}));
      PPDB_CHECK_OK(table->Insert(
          2, {rel::Value::Null(), rel::Value::String(post ? "new" : "old")}));
    }
  }

  db.ledger.RecordIngest("t0", 1, "a", 3);
  if (post) db.ledger.RecordIngest("t1", 2, "b", 9);

  audit::AuditEvent event;
  event.timestamp = post ? 20 : 10;
  event.kind = audit::AuditEventKind::kCellSuppressed;
  event.requester = post ? "post" : "pre";
  event.table = "t0";
  event.provider = 1;
  event.attribute = "a";
  event.detail = "crash matrix";
  db.log.Append(std::move(event));
  return db;
}

// Field-by-field comparison via the canonical serializations of every
// component. Returns a description of the first difference, empty on equal.
std::string DiffDatabases(const Database& got, const Database& want) {
  if (got.catalog.TableNames() != want.catalog.TableNames()) {
    return "table inventory differs";
  }
  for (const std::string& name : want.catalog.TableNames()) {
    const rel::Table* a = got.catalog.GetTable(name).value();
    const rel::Table* b = want.catalog.GetTable(name).value();
    if (a->multi_record() != b->multi_record()) {
      return "table '" + name + "' mode differs";
    }
    const auto& attrs_a = a->schema().attributes();
    const auto& attrs_b = b->schema().attributes();
    if (attrs_a.size() != attrs_b.size()) {
      return "table '" + name + "' schema arity differs";
    }
    for (size_t i = 0; i < attrs_a.size(); ++i) {
      if (attrs_a[i].name != attrs_b[i].name ||
          attrs_a[i].type != attrs_b[i].type) {
        return "table '" + name + "' schema differs";
      }
    }
    if (rel::TableToCsv(*a) != rel::TableToCsv(*b)) {
      return "table '" + name + "' rows differ";
    }
  }
  if (privacy::SerializePrivacyConfig(got.config) !=
      privacy::SerializePrivacyConfig(want.config)) {
    return "privacy config differs";
  }
  if (LedgerToCsv(got.ledger) != LedgerToCsv(want.ledger)) {
    return "ledger differs";
  }
  if (AuditLogToCsv(got.log) != AuditLogToCsv(want.log)) {
    return "audit log differs";
  }
  return "";
}

class CrashMatrixTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  void SetUp() override {
    root_ = stdfs::temp_directory_path() /
            ("ppdb_crash_matrix_" + std::to_string(::getpid()) + "_seed" +
             std::to_string(GetParam()));
    stdfs::remove_all(root_);
  }
  void TearDown() override { stdfs::remove_all(root_); }

  stdfs::path root_;
  RealFileSystem real_;
};

TEST_P(CrashMatrixTest, LoadYieldsOldOrNewNeverHybrid) {
  const uint64_t seed = GetParam();
  const Database pre = MakeDatabase(false);
  const Database post = MakeDatabase(true);
  SaveOptions no_retry;
  no_retry.retry.max_attempts = 1;  // One fault must mean one failed save.

  // Pass 1: count the injection sites of a post-save over a committed
  // pre-save, without injecting anything.
  const std::string count_dir = (root_ / "count").string();
  ASSERT_OK(SaveDatabase(count_dir, pre, real_));
  FaultInjectingFileSystem counting(&real_, Rng(seed));
  counting.SetPlan(FaultPlan{});
  ASSERT_OK(SaveDatabase(count_dir, post, counting, no_retry));
  const int64_t total_ops = counting.ops_seen();
  ASSERT_GE(total_ops, 20) << "save shrank below the required fault matrix";

  const FaultKind kinds[] = {FaultKind::kFailOp, FaultKind::kTornWrite,
                             FaultKind::kNoSpace, FaultKind::kCrash};
  for (FaultKind kind : kinds) {
    for (int64_t op = 0; op < total_ops; ++op) {
      SCOPED_TRACE("seed " + std::to_string(seed) + ", kind " +
                   std::string(FaultKindName(kind)) + ", fault at op " +
                   std::to_string(op));
      const std::string dir =
          (root_ / (std::string(FaultKindName(kind)) + "_" +
                    std::to_string(op)))
              .string();
      ASSERT_OK(SaveDatabase(dir, pre, real_));

      FaultInjectingFileSystem faulty(&real_, Rng(seed * 1000003 + op));
      faulty.SetPlan({.fail_at_op = op, .kind = kind});
      Status saved = SaveDatabase(dir, post, faulty, no_retry);

      RecoveryReport report;
      Result<Database> loaded = LoadDatabase(dir, real_, &report);
      ASSERT_OK(loaded.status()) << report.ToString();
      // The commit point decides which database the directory holds:
      // a save that reported success must read back as the new state, a
      // failed save as the old one. Anything else is a torn hybrid.
      const Database& want = saved.ok() ? post : pre;
      EXPECT_EQ(DiffDatabases(loaded.value(), want), "")
          << "save status: " << saved.ToString()
          << "\nrecovery: " << report.ToString();

      // A later, healthy save must absorb whatever the crash left behind.
      if (!saved.ok()) {
        ASSERT_OK(SaveDatabase(dir, post, real_));
        RecoveryReport clean_report;
        ASSERT_OK_AND_ASSIGN(Database after,
                             LoadDatabase(dir, real_, &clean_report));
        EXPECT_EQ(DiffDatabases(after, post), "");
        EXPECT_TRUE(clean_report.clean()) << clean_report.ToString();
      }
      stdfs::remove_all(dir);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrashMatrixTest,
                         ::testing::Values<uint64_t>(1, 2, 3));

}  // namespace
}  // namespace ppdb::storage

#!/usr/bin/env bash
# End-to-end test of `ppdb_cli serve --listen` over a real loopback TCP
# socket, driven with bash's /dev/tcp (no external client needed). Covers
# the happy path (ping/query/drain), the drain-triggered shutdown, the
# oversized-line rejection, and process exit hygiene.
set -u
CLI="$1"
DIR="$(mktemp -d)"
SERVER_PID=""
cleanup() {
  [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null
  rm -rf "$DIR"
}
trap cleanup EXIT
failures=0

check() {  # check <description> <expected-substring> <<< output
  local description="$1" expected="$2" output
  output="$(cat)"
  if ! grep -qF "$expected" <<< "$output"; then
    echo "FAIL: $description"
    echo "  expected substring: $expected"
    echo "  got: $output"
    failures=$((failures + 1))
  fi
}

"$CLI" demo "$DIR/db" >/dev/null || { echo "FAIL: demo"; exit 1; }

# --- session 1: full request/drain cycle ------------------------------------
"$CLI" serve "$DIR/db" --listen 127.0.0.1:0 --max-conns 8 \
  --idle-timeout-ms 30000 >"$DIR/serve_out" 2>"$DIR/serve_err" &
SERVER_PID=$!
for _ in $(seq 1 100); do
  grep -q "listening on" "$DIR/serve_out" 2>/dev/null && break
  sleep 0.1
done
head -1 "$DIR/serve_out" | check "prints bound endpoint" "listening on 127.0.0.1:"
PORT="$(sed -n 's/^listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' "$DIR/serve_out")"
if [ -z "$PORT" ]; then
  echo "FAIL: could not scrape port from: $(cat "$DIR/serve_out")"
  exit 1
fi

exec 3<>"/dev/tcp/127.0.0.1/$PORT"
printf 'ping\nquery pw\n# comment lines are skipped\ndrain\n' >&3
RESPONSES="$(timeout 30 cat <&3)"
exec 3<&- 3>&-
check "ping answered" "1 ok pong" <<< "$RESPONSES"
check "query answered" "2 ok pw=" <<< "$RESPONSES"
check "drain acked with final checkpoint" \
  "3 ok drained=1 final_checkpoint=ok" <<< "$RESPONSES"

# Drain must shut the whole process down, exit 0.
SERVER_EXIT=0
wait "$SERVER_PID" || SERVER_EXIT=$?
SERVER_PID=""
if [ "$SERVER_EXIT" -ne 0 ]; then
  echo "FAIL: server exited $SERVER_EXIT after drain"
  failures=$((failures + 1))
fi

# --- session 2: oversized line is shed, connection survives ------------------
"$CLI" serve "$DIR/db" --listen 127.0.0.1:0 >"$DIR/serve_out2" 2>&1 &
SERVER_PID=$!
for _ in $(seq 1 100); do
  grep -q "listening on" "$DIR/serve_out2" 2>/dev/null && break
  sleep 0.1
done
PORT="$(sed -n 's/^listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' "$DIR/serve_out2")"
exec 3<>"/dev/tcp/127.0.0.1/$PORT"
{
  # 100 KiB of garbage on one line: over the 64 KiB cap.
  head -c 102400 /dev/zero | tr '\0' 'x'
  printf '\nping\ndrain\n'
} >&3
RESPONSES="$(timeout 30 cat <&3)"
exec 3<&- 3>&-
check "oversized line rejected" "1 error invalid_argument line_too_long" \
  <<< "$RESPONSES"
check "connection resyncs after oversized line" "2 ok pong" <<< "$RESPONSES"
SERVER_EXIT=0
wait "$SERVER_PID" || SERVER_EXIT=$?
SERVER_PID=""
if [ "$SERVER_EXIT" -ne 0 ]; then
  echo "FAIL: server exited $SERVER_EXIT after session 2"
  failures=$((failures + 1))
fi

if [ "$failures" -ne 0 ]; then
  echo "$failures socket e2e failure(s)"
  exit 1
fi
echo "socket e2e: all checks passed"

#!/usr/bin/env bash
# End-to-end test of `ppdb_cli serve --listen` over a real loopback TCP
# socket, driven with bash's /dev/tcp (no external client needed). Covers
# the happy path (ping/query/drain), the drain-triggered shutdown, the
# oversized-line rejection, and process exit hygiene.
set -u
CLI="$1"
DIR="$(mktemp -d)"
SERVER_PID=""
cleanup() {
  [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null
  rm -rf "$DIR"
}
trap cleanup EXIT
failures=0

check() {  # check <description> <expected-substring> <<< output
  local description="$1" expected="$2" output
  output="$(cat)"
  if ! grep -qF "$expected" <<< "$output"; then
    echo "FAIL: $description"
    echo "  expected substring: $expected"
    echo "  got: $output"
    failures=$((failures + 1))
  fi
}

"$CLI" demo "$DIR/db" >/dev/null || { echo "FAIL: demo"; exit 1; }

# --- session 1: full request/drain cycle ------------------------------------
"$CLI" serve "$DIR/db" --listen 127.0.0.1:0 --max-conns 8 \
  --idle-timeout-ms 30000 >"$DIR/serve_out" 2>"$DIR/serve_err" &
SERVER_PID=$!
for _ in $(seq 1 100); do
  grep -q "listening on" "$DIR/serve_out" 2>/dev/null && break
  sleep 0.1
done
head -1 "$DIR/serve_out" | check "prints bound endpoint" "listening on 127.0.0.1:"
PORT="$(sed -n 's/^listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' "$DIR/serve_out")"
if [ -z "$PORT" ]; then
  echo "FAIL: could not scrape port from: $(cat "$DIR/serve_out")"
  exit 1
fi

exec 3<>"/dev/tcp/127.0.0.1/$PORT"
printf 'ping\nquery pw\n# comment lines are skipped\ndrain\n' >&3
RESPONSES="$(timeout 30 cat <&3)"
exec 3<&- 3>&-
check "ping answered" "1 ok pong" <<< "$RESPONSES"
check "query answered" "2 ok pw=" <<< "$RESPONSES"
check "drain acked with final checkpoint" \
  "3 ok drained=1 final_checkpoint=ok" <<< "$RESPONSES"

# Drain must shut the whole process down, exit 0.
SERVER_EXIT=0
wait "$SERVER_PID" || SERVER_EXIT=$?
SERVER_PID=""
if [ "$SERVER_EXIT" -ne 0 ]; then
  echo "FAIL: server exited $SERVER_EXIT after drain"
  failures=$((failures + 1))
fi

# --- session 2: oversized line is shed, connection survives ------------------
"$CLI" serve "$DIR/db" --listen 127.0.0.1:0 >"$DIR/serve_out2" 2>&1 &
SERVER_PID=$!
for _ in $(seq 1 100); do
  grep -q "listening on" "$DIR/serve_out2" 2>/dev/null && break
  sleep 0.1
done
PORT="$(sed -n 's/^listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' "$DIR/serve_out2")"
exec 3<>"/dev/tcp/127.0.0.1/$PORT"
{
  # 100 KiB of garbage on one line: over the 64 KiB cap.
  head -c 102400 /dev/zero | tr '\0' 'x'
  printf '\nping\ndrain\n'
} >&3
RESPONSES="$(timeout 30 cat <&3)"
exec 3<&- 3>&-
check "oversized line rejected" "1 error invalid_argument line_too_long" \
  <<< "$RESPONSES"
check "connection resyncs after oversized line" "2 ok pong" <<< "$RESPONSES"
SERVER_EXIT=0
wait "$SERVER_PID" || SERVER_EXIT=$?
SERVER_PID=""
if [ "$SERVER_EXIT" -ne 0 ]; then
  echo "FAIL: server exited $SERVER_EXIT after session 2"
  failures=$((failures + 1))
fi

# --- session 3: kill -9 after an ack, recover, re-serve ----------------------
# The ack races nothing: it is sent only after the journal fsync, so an
# event acknowledged over the socket must survive an immediate SIGKILL.
# Launched from a subshell so bash never prints a "Killed" job notice.
( "$CLI" serve "$DIR/db" --listen 127.0.0.1:0 >"$DIR/serve_out3" 2>&1 &
  echo $! > "$DIR/serve.pid" )
SERVER_PID="$(cat "$DIR/serve.pid")"
for _ in $(seq 1 100); do
  grep -q "listening on" "$DIR/serve_out3" 2>/dev/null && break
  sleep 0.1
done
PORT="$(sed -n 's/^listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' "$DIR/serve_out3")"
exec 3<>"/dev/tcp/127.0.0.1/$PORT"
printf 'event add 9 100\n' >&3
ACK=""
IFS= read -r -t 30 ACK <&3
exec 3<&- 3>&-
check "event acked over the socket" "1 ok" <<< "$ACK"
kill -9 "$SERVER_PID" 2>/dev/null
while kill -0 "$SERVER_PID" 2>/dev/null; do sleep 0.05; done
SERVER_PID=""

"$CLI" recover "$DIR/db" > "$DIR/recover_out"
RECOVER_EXIT=$?
check "recover replays the journaled ack" "replayed" < "$DIR/recover_out"
if [ "$RECOVER_EXIT" -ne 4 ]; then
  echo "FAIL: recover after kill -9 should exit 4, got $RECOVER_EXIT"
  failures=$((failures + 1))
fi

"$CLI" serve "$DIR/db" --listen 127.0.0.1:0 >"$DIR/serve_out4" 2>&1 &
SERVER_PID=$!
for _ in $(seq 1 100); do
  grep -q "listening on" "$DIR/serve_out4" 2>/dev/null && break
  sleep 0.1
done
PORT="$(sed -n 's/^listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' "$DIR/serve_out4")"
exec 3<>"/dev/tcp/127.0.0.1/$PORT"
printf 'query pw\ndrain\n' >&3
RESPONSES="$(timeout 30 cat <&3)"
exec 3<&- 3>&-
check "killed event visible after re-serve" "1 ok pw=0.75" <<< "$RESPONSES"
check "re-serve drains cleanly" "2 ok drained=1 final_checkpoint=ok" \
  <<< "$RESPONSES"
SERVER_EXIT=0
wait "$SERVER_PID" || SERVER_EXIT=$?
SERVER_PID=""
if [ "$SERVER_EXIT" -ne 0 ]; then
  echo "FAIL: server exited $SERVER_EXIT after session 3"
  failures=$((failures + 1))
fi

# --- session 4: drain with a doomed final checkpoint -------------------------
# The ack must carry the failure and the process must exit 5 (so a
# supervisor triggers `recover` instead of treating the run as clean).
mkdir "$DIR/db/CURRENT.tmp"   # save's CURRENT staging write now fails
"$CLI" serve "$DIR/db" --listen 127.0.0.1:0 >"$DIR/serve_out5" 2>"$DIR/serve_err5" &
SERVER_PID=$!
for _ in $(seq 1 100); do
  grep -q "listening on" "$DIR/serve_out5" 2>/dev/null && break
  sleep 0.1
done
PORT="$(sed -n 's/^listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' "$DIR/serve_out5")"
exec 3<>"/dev/tcp/127.0.0.1/$PORT"
printf 'drain\n' >&3
RESPONSES="$(timeout 30 cat <&3)"
exec 3<&- 3>&-
check "drain ack names the failed checkpoint" \
  "1 ok drained=1 final_checkpoint=" <<< "$RESPONSES"
if grep -qF "final_checkpoint=ok" <<< "$RESPONSES"; then
  echo "FAIL: drain ack claimed final_checkpoint=ok despite the fault"
  failures=$((failures + 1))
fi
SERVER_EXIT=0
wait "$SERVER_PID" || SERVER_EXIT=$?
SERVER_PID=""
if [ "$SERVER_EXIT" -ne 5 ]; then
  echo "FAIL: server should exit 5 on a failed final checkpoint, got $SERVER_EXIT"
  failures=$((failures + 1))
fi
check "stderr explains the exit code" "final checkpoint failed" \
  < "$DIR/serve_err5"
rmdir "$DIR/db/CURRENT.tmp"

if [ "$failures" -ne 0 ]; then
  echo "$failures socket e2e failure(s)"
  exit 1
fi
echo "socket e2e: all checks passed"

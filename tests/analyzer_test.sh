#!/usr/bin/env bash
# Negative-path tests for ppdb_analyze: each class of violation the
# analyzer claims to detect is seeded into a tiny fixture tree and MUST
# fail with a finding naming the right site, and each escape hatch must
# actually silence its check. The positive half — the real tree analyzes
# clean and the DOT artifact renders — runs here too, so a single ctest
# entry proves both directions.
#
# Usage: analyzer_test.sh <ppdb_analyze-binary> <repo-root>
set -u

ANALYZE="${1:?path to ppdb_analyze}"
ROOT="${2:?repo root}"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

fail() { echo "FAIL: $*" >&2; exit 1; }

# --- clean tree passes and emits the graph -----------------------------------
"$ANALYZE" --root "$ROOT" --dot "$TMP/lock_order.dot" > "$TMP/clean.out" 2>&1 \
  || fail "real tree is not clean: $(cat "$TMP/clean.out")"
grep -q '"broker" -> "service"' "$TMP/lock_order.dot" \
  || fail "DOT artifact lacks the declared broker -> service edge"
grep -q 'style=dashed' "$TMP/lock_order.dot" \
  || fail "DOT artifact lacks observed (dashed) edges"
echo "PASS  clean tree analyzes clean and the lock graph renders"

# --- seeded declared-order cycle ---------------------------------------------
mkdir -p "$TMP/cycle/src"
cat > "$TMP/cycle/src/a.h" <<'EOF'
struct A {
  Mutex a_ PPDB_LOCK_LEVEL(alpha) PPDB_ACQUIRED_BEFORE(beta);
  Mutex b_ PPDB_LOCK_LEVEL(beta) PPDB_ACQUIRED_BEFORE(alpha);
};
EOF
if "$ANALYZE" --root "$TMP/cycle" --pass lock-order > "$TMP/cycle.out" 2>&1; then
  fail "declared lock-order cycle was not detected"
fi
grep -q "cycle" "$TMP/cycle.out" \
  || fail "cycle finding lacks the word 'cycle': $(cat "$TMP/cycle.out")"
echo "PASS  seeded declared-order cycle fails"

# --- seeded acquisition inverting the declared order -------------------------
mkdir -p "$TMP/invert/src"
cat > "$TMP/invert/src/a.h" <<'EOF'
struct A {
  Mutex a_ PPDB_LOCK_LEVEL(alpha) PPDB_ACQUIRED_BEFORE(beta);
  Mutex b_ PPDB_LOCK_LEVEL(beta);
  void Tangle();
};
EOF
cat > "$TMP/invert/src/a.cc" <<'EOF'
#include "a.h"
void A::Tangle() {
  MutexLock lb(b_);
  MutexLock la(a_);
}
EOF
if "$ANALYZE" --root "$TMP/invert" --pass lock-order \
    > "$TMP/invert.out" 2>&1; then
  fail "lock-order inversion was not detected"
fi
grep -q "INVERTS" "$TMP/invert.out" \
  || fail "inversion not reported as such: $(cat "$TMP/invert.out")"
grep -q "a.cc:4" "$TMP/invert.out" \
  || fail "inversion finding lacks the site: $(cat "$TMP/invert.out")"
echo "PASS  seeded inversion of the declared order fails at the site"

# --- mutex member without a lock level, and its escape hatch -----------------
mkdir -p "$TMP/nolevel/src"
cat > "$TMP/nolevel/src/a.h" <<'EOF'
struct A {
  Mutex anon_;
};
EOF
if "$ANALYZE" --root "$TMP/nolevel" --pass lock-order \
    > "$TMP/nolevel.out" 2>&1; then
  fail "Mutex member without PPDB_LOCK_LEVEL was not detected"
fi
grep -q "anon_" "$TMP/nolevel.out" \
  || fail "missing-level finding lacks the member name"
cat > "$TMP/nolevel/src/a.h" <<'EOF'
struct A {
  // ppdb-lint: allow(lock-order)
  Mutex anon_;
};
EOF
"$ANALYZE" --root "$TMP/nolevel" --pass lock-order > "$TMP/nolevel2.out" 2>&1 \
  || fail "allow(lock-order) marker did not silence the missing-level check"
echo "PASS  unleveled mutex fails; allow(lock-order) silences it"

# --- seeded FP accumulation, and its escape hatch ----------------------------
mkdir -p "$TMP/fp/src/violation"
cat > "$TMP/fp/src/violation/sum.cc" <<'EOF'
double Total(const double* v, int n) {
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += v[i];
  return sum;
}
EOF
if "$ANALYZE" --root "$TMP/fp" --pass determinism > "$TMP/fp.out" 2>&1; then
  fail "FP accumulation in a loop was not detected"
fi
grep -q "sum.cc:3" "$TMP/fp.out" \
  || fail "fp-accumulate finding lacks the site: $(cat "$TMP/fp.out")"
cat > "$TMP/fp/src/violation/sum.cc" <<'EOF'
double Total(const double* v, int n) {
  double sum = 0.0;
  // ppdb-lint: allow(fp-accumulate)
  for (int i = 0; i < n; ++i) sum += v[i];
  return sum;
}
EOF
"$ANALYZE" --root "$TMP/fp" --pass determinism > "$TMP/fp2.out" 2>&1 \
  || fail "allow(fp-accumulate) marker did not silence the check"
echo "PASS  seeded FP accumulation fails; allow(fp-accumulate) silences it"

# --- blessed helpers stay exempt ---------------------------------------------
mkdir -p "$TMP/fp/src/violation/kernel"
cat > "$TMP/fp/src/violation/kernel/reduce.cc" <<'EOF'
double Reduce(const double* v, int n) {
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += v[i];
  return sum;
}
EOF
"$ANALYZE" --root "$TMP/fp" --pass determinism > "$TMP/fp3.out" 2>&1 \
  || fail "kernel/ reduction helper was wrongly flagged: $(cat "$TMP/fp3.out")"
echo "PASS  kernel/ reduction helpers are exempt by design"

# --- seeded reduction over unordered iteration -------------------------------
mkdir -p "$TMP/uo/src/server"
cat > "$TMP/uo/src/server/agg.cc" <<'EOF'
#include <unordered_map>
struct Agg {
  std::unordered_map<int, double> weights_;
  double Sum() {
    double total = 0.0;
    for (const auto& [k, w] : weights_) total += w;
    return total;
  }
};
EOF
if "$ANALYZE" --root "$TMP/uo" --pass determinism > "$TMP/uo.out" 2>&1; then
  fail "reduction over unordered iteration was not detected"
fi
grep -q "weights_" "$TMP/uo.out" \
  || fail "unordered-iter finding lacks the container: $(cat "$TMP/uo.out")"
echo "PASS  reduction over hash-ordered iteration fails"

# --- seeded nondeterministic sources -----------------------------------------
mkdir -p "$TMP/nd/src"
cat > "$TMP/nd/src/seed.cc" <<'EOF'
#include <cstdlib>
#include <random>
int Seed() {
  std::random_device rd;
  return static_cast<int>(rd()) + rand();
}
EOF
if "$ANALYZE" --root "$TMP/nd" --pass determinism > "$TMP/nd.out" 2>&1; then
  fail "nondeterministic sources were not detected"
fi
grep -q "random_device" "$TMP/nd.out" \
  || fail "nondet finding lacks random_device: $(cat "$TMP/nd.out")"
grep -q "'rand'" "$TMP/nd.out" \
  || fail "nondet finding lacks rand: $(cat "$TMP/nd.out")"
echo "PASS  rand()/std::random_device outside common/rng.cc fail"

# --- usage errors exit 2, not 1 ----------------------------------------------
"$ANALYZE" --pass bogus > /dev/null 2>&1
[ $? -eq 2 ] || fail "bad --pass should exit 2"
"$ANALYZE" --root "$TMP/does-not-exist" > /dev/null 2>&1
[ $? -eq 2 ] || fail "missing root should exit 2"
echo "PASS  usage and IO errors are distinct from findings"

echo "OK: ppdb_analyze self-test"

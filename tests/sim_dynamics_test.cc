#include "sim/dynamics.h"

#include <gtest/gtest.h>

#include "common/macros.h"
#include "tests/test_util.h"
#include "violation/detector.h"

namespace ppdb::sim {
namespace {

using privacy::PrivacyTuple;
using privacy::PurposeId;
using violation::MakeLinearExposureValue;
using violation::SearchOptions;

// Banded population: providers in band b accept level b everywhere.
privacy::PrivacyConfig BandedConfig(int64_t providers_per_band,
                                    double threshold) {
  privacy::PrivacyConfig config;
  PurposeId purpose = config.purposes.Register("ads").value();
  PPDB_CHECK_OK(config.policy.Add("x", PrivacyTuple{purpose, 0, 0, 0}));
  PPDB_CHECK_OK(config.sensitivities.SetAttributeSensitivity("x", 1.0));
  int64_t id = 0;
  for (int band = 0; band <= 3; ++band) {
    for (int64_t i = 0; i < providers_per_band; ++i) {
      ++id;
      config.preferences.ForProvider(id).Set(
          "x", PrivacyTuple{purpose, band, band, band});
      config.thresholds[id] = threshold;
    }
  }
  return config;
}

TEST(DynamicsTest, RejectsBadRoundCount) {
  privacy::PrivacyConfig config = BandedConfig(1, 1.0);
  SearchOptions options;
  options.value_model = MakeLinearExposureValue(1.0);
  EXPECT_TRUE(RunHouseProviderDynamics(config, options, 0)
                  .status()
                  .IsInvalidArgument());
}

TEST(DynamicsTest, WorthlessDataConvergesImmediatelyWithEveryoneRetained) {
  privacy::PrivacyConfig config = BandedConfig(5, 1.0);
  SearchOptions options;
  options.utility_per_provider = 1.0;
  options.value_model = MakeLinearExposureValue(0.0);
  ASSERT_OK_AND_ASSIGN(DynamicsResult result,
                       RunHouseProviderDynamics(config, options));
  EXPECT_TRUE(result.converged);
  // With worthless exposure and a zero starting policy, the house never
  // widens, nobody defaults, round 1 is already stable.
  ASSERT_EQ(result.rounds.size(), 1u);
  EXPECT_EQ(result.rounds[0].departures, 0);
  EXPECT_EQ(result.rounds[0].population, 20);
}

TEST(DynamicsTest, ValuableDataDrivesDeparturesThenStabilizes) {
  privacy::PrivacyConfig config = BandedConfig(5, 1.0);
  SearchOptions options;
  options.utility_per_provider = 0.2;
  options.value_model = MakeLinearExposureValue(5.0);
  ASSERT_OK_AND_ASSIGN(DynamicsResult result,
                       RunHouseProviderDynamics(config, options, 12));
  EXPECT_TRUE(result.converged);
  EXPECT_GT(result.rounds.size(), 1u);
  // Someone left along the way.
  int64_t total_departures = 0;
  for (const DynamicsRound& round : result.rounds) {
    total_departures += round.departures;
  }
  EXPECT_GT(total_departures, 0);
  // The fixed point has no departures.
  EXPECT_EQ(result.final_round().departures, 0);
  // Population is monotone non-increasing across rounds.
  for (size_t r = 1; r < result.rounds.size(); ++r) {
    EXPECT_LE(result.rounds[r].population, result.rounds[r - 1].population);
  }
}

TEST(DynamicsTest, FixedPointIsGenuinelyStable) {
  privacy::PrivacyConfig config = BandedConfig(4, 2.0);
  SearchOptions options;
  options.utility_per_provider = 0.5;
  options.value_model = MakeLinearExposureValue(2.0);
  ASSERT_OK_AND_ASSIGN(DynamicsResult result,
                       RunHouseProviderDynamics(config, options, 16));
  ASSERT_TRUE(result.converged);
  // Re-running the dynamic from the returned end state changes nothing.
  ASSERT_OK_AND_ASSIGN(
      DynamicsResult again,
      RunHouseProviderDynamics(result.final_config, options, 4));
  EXPECT_TRUE(again.converged);
  ASSERT_EQ(again.rounds.size(), 1u);
  EXPECT_EQ(again.rounds[0].departures, 0);
  EXPECT_EQ(again.rounds[0].moves, 0);
}

TEST(DynamicsTest, FinalConfigReflectsDepartures) {
  privacy::PrivacyConfig config = BandedConfig(5, 1.0);
  SearchOptions options;
  options.utility_per_provider = 0.2;
  options.value_model = MakeLinearExposureValue(5.0);
  ASSERT_OK_AND_ASSIGN(DynamicsResult result,
                       RunHouseProviderDynamics(config, options, 12));
  int64_t total_departures = 0;
  for (const DynamicsRound& round : result.rounds) {
    total_departures += round.departures;
  }
  EXPECT_EQ(result.final_config.preferences.num_providers(),
            config.preferences.num_providers() - total_departures);
  // Nobody left in the final population violates past their threshold.
  violation::ViolationDetector detector(&result.final_config);
  ASSERT_OK_AND_ASSIGN(violation::ViolationReport report, detector.Analyze());
  violation::DefaultReport defaults =
      violation::ComputeDefaults(report, result.final_config);
  EXPECT_EQ(defaults.num_defaulted, 0);
}

TEST(DynamicsTest, InputConfigUntouched) {
  privacy::PrivacyConfig config = BandedConfig(3, 1.0);
  int64_t before = config.preferences.num_providers();
  SearchOptions options;
  options.utility_per_provider = 0.2;
  options.value_model = MakeLinearExposureValue(5.0);
  ASSERT_OK(RunHouseProviderDynamics(config, options).status());
  EXPECT_EQ(config.preferences.num_providers(), before);
}

}  // namespace
}  // namespace ppdb::sim

#include "common/string_util.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace ppdb {
namespace {

TEST(TrimWhitespaceTest, TrimsBothEnds) {
  EXPECT_EQ(TrimWhitespace("  abc  "), "abc");
  EXPECT_EQ(TrimWhitespace("\t\nabc\r\n"), "abc");
  EXPECT_EQ(TrimWhitespace("abc"), "abc");
}

TEST(TrimWhitespaceTest, AllWhitespaceBecomesEmpty) {
  EXPECT_EQ(TrimWhitespace("   "), "");
  EXPECT_EQ(TrimWhitespace(""), "");
}

TEST(TrimWhitespaceTest, PreservesInteriorWhitespace) {
  EXPECT_EQ(TrimWhitespace(" a b "), "a b");
}

TEST(SplitTest, SplitsOnDelimiter) {
  auto parts = Split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(SplitTest, EmptyFieldsPreserved) {
  auto parts = Split("a,,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[1], "");
}

TEST(SplitTest, EmptyInputIsOneEmptyField) {
  auto parts = Split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(SplitTest, TrailingDelimiterYieldsTrailingEmpty) {
  auto parts = Split("a,", ',');
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[1], "");
}

TEST(SplitAndTrimTest, TrimsEveryField) {
  auto parts = SplitAndTrim(" a , b ,c ", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(JoinTest, JoinsWithSeparator) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StartsEndsWithTest, Basics) {
  EXPECT_TRUE(StartsWith("policy weight", "policy"));
  EXPECT_FALSE(StartsWith("po", "policy"));
  EXPECT_TRUE(EndsWith("table.csv", ".csv"));
  EXPECT_FALSE(EndsWith("csv", "table.csv"));
  EXPECT_TRUE(StartsWith("x", ""));
  EXPECT_TRUE(EndsWith("x", ""));
}

TEST(ToLowerTest, LowersAsciiOnly) {
  EXPECT_EQ(ToLower("AbC-12_z"), "abc-12_z");
}

TEST(ParseInt64Test, ParsesDecimal) {
  ASSERT_OK_AND_ASSIGN(int64_t v, ParseInt64("42"));
  EXPECT_EQ(v, 42);
  ASSERT_OK_AND_ASSIGN(int64_t n, ParseInt64("-17"));
  EXPECT_EQ(n, -17);
}

TEST(ParseInt64Test, TrimsWhitespace) {
  ASSERT_OK_AND_ASSIGN(int64_t v, ParseInt64("  7 "));
  EXPECT_EQ(v, 7);
}

TEST(ParseInt64Test, RejectsGarbage) {
  EXPECT_TRUE(ParseInt64("4x").status().IsParseError());
  EXPECT_TRUE(ParseInt64("").status().IsParseError());
  EXPECT_TRUE(ParseInt64("4.5").status().IsParseError());
}

TEST(ParseInt64Test, RejectsOverflow) {
  EXPECT_TRUE(ParseInt64("99999999999999999999").status().IsOutOfRange());
}

TEST(ParseDoubleTest, ParsesFloats) {
  ASSERT_OK_AND_ASSIGN(double v, ParseDouble("3.5"));
  EXPECT_DOUBLE_EQ(v, 3.5);
  ASSERT_OK_AND_ASSIGN(double e, ParseDouble("-1e3"));
  EXPECT_DOUBLE_EQ(e, -1000.0);
}

TEST(ParseDoubleTest, RejectsGarbage) {
  EXPECT_TRUE(ParseDouble("3.5kg").status().IsParseError());
  EXPECT_TRUE(ParseDouble("").status().IsParseError());
}

TEST(IsValidIdentifierTest, AcceptsTypicalNames) {
  EXPECT_TRUE(IsValidIdentifier("weight"));
  EXPECT_TRUE(IsValidIdentifier("_private"));
  EXPECT_TRUE(IsValidIdentifier("email_marketing"));
  EXPECT_TRUE(IsValidIdentifier("a.b-c"));
  EXPECT_TRUE(IsValidIdentifier("Table9"));
}

TEST(IsValidIdentifierTest, RejectsInvalid) {
  EXPECT_FALSE(IsValidIdentifier(""));
  EXPECT_FALSE(IsValidIdentifier("9lives"));
  EXPECT_FALSE(IsValidIdentifier("has space"));
  EXPECT_FALSE(IsValidIdentifier("-leading"));
  EXPECT_FALSE(IsValidIdentifier("semi;colon"));
}

TEST(CsvEscapeTest, PlainFieldsUntouched) {
  EXPECT_EQ(CsvEscape("plain"), "plain");
}

TEST(CsvEscapeTest, QuotesSpecialFields) {
  EXPECT_EQ(CsvEscape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvEscape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvEscape("line\nbreak"), "\"line\nbreak\"");
}

}  // namespace
}  // namespace ppdb

#!/usr/bin/env bash
# Exercises tools/check_metrics_docs.sh failure modes that the CI gate
# relies on: a missing OBSERVABILITY.md must fail loudly (not crash with a
# grep error), and a doc that drifted from the exported set must fail with
# the family name in the message. The in-sync case is CI's normal run.
#
# Usage: check_metrics_docs_test.sh <repo-root> <build-dir>
set -u

ROOT="${1:?repo root}"
BUILD="${2:?build dir}"
CHECK="$ROOT/tools/check_metrics_docs.sh"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

fail() { echo "FAIL: $*" >&2; exit 1; }

# --- missing doc -------------------------------------------------------------
if PPDB_OBSERVABILITY_DOC="$TMP/does-not-exist.md" \
    bash "$CHECK" "$BUILD" > "$TMP/missing.out" 2>&1; then
  fail "check_metrics_docs.sh passed with a missing OBSERVABILITY.md"
fi
grep -q "does not exist" "$TMP/missing.out" \
  || fail "missing-doc failure lacks a clear message: $(cat "$TMP/missing.out")"
echo "PASS  missing doc fails with a clear diagnostic"

# --- drifted doc -------------------------------------------------------------
# A copy of the real doc plus one phantom metric row: the check must flag
# the phantom as documented-but-not-exported.
cp "$ROOT/OBSERVABILITY.md" "$TMP/drifted.md"
printf '\n| `ppdb_phantom_metric_total` | counter | — | x | Not real. |\n' \
  >> "$TMP/drifted.md"
if PPDB_OBSERVABILITY_DOC="$TMP/drifted.md" \
    bash "$CHECK" "$BUILD" > "$TMP/drifted.out" 2>&1; then
  fail "check_metrics_docs.sh passed with a phantom documented metric"
fi
grep -q "ppdb_phantom_metric_total" "$TMP/drifted.out" \
  || fail "drift failure does not name the phantom family: $(cat "$TMP/drifted.out")"
echo "PASS  doc drift fails and names the offending family"

# --- in-sync doc -------------------------------------------------------------
PPDB_OBSERVABILITY_DOC="$ROOT/OBSERVABILITY.md" \
    bash "$CHECK" "$BUILD" > "$TMP/sync.out" 2>&1 \
  || fail "check_metrics_docs.sh failed on the real doc: $(cat "$TMP/sync.out")"
echo "PASS  real doc is in sync"

echo "check_metrics_docs_test: all cases passed."

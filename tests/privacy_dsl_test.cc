#include "privacy/policy_dsl.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace ppdb::privacy {
namespace {

constexpr char kFullConfig[] = R"(
# The paper's Section 8 example, as DSL.
scale visibility: none, house, third_party, world
scale granularity: none, existential, partial, specific
scale retention: none, week, month, year, indefinite
magnitudes retention: 0, 7, 30, 365, 36500

purpose marketing
purpose email_marketing implies marketing

policy weight for marketing: visibility=house, granularity=specific, retention=year
policy age for marketing: visibility=house, granularity=partial, retention=month

pref 1 weight for marketing: visibility=world, granularity=specific, retention=indefinite
pref 2 weight for marketing: visibility=world, granularity=partial, retention=indefinite

attr_sensitivity weight = 4
sensitivity 1 weight: value=1, visibility=1, granularity=2, retention=1
sensitivity 2 weight: value=3, visibility=1, granularity=5, retention=2
threshold 1 = 10
threshold 2 = 50
fallback_threshold = 25
)";

TEST(PolicyDslTest, ParsesFullConfig) {
  ASSERT_OK_AND_ASSIGN(PrivacyConfig config, ParsePrivacyConfig(kFullConfig));
  EXPECT_EQ(config.purposes.num_purposes(), 2);
  EXPECT_EQ(config.policy.size(), 2);
  EXPECT_EQ(config.preferences.num_providers(), 2);
  EXPECT_DOUBLE_EQ(config.fallback_threshold, 25.0);
  EXPECT_DOUBLE_EQ(config.ThresholdFor(1), 10.0);
  EXPECT_DOUBLE_EQ(config.ThresholdFor(99), 25.0);

  ASSERT_OK_AND_ASSIGN(PurposeId marketing,
                       config.purposes.Lookup("marketing"));
  ASSERT_OK_AND_ASSIGN(PrivacyTuple weight_policy,
                       config.policy.Find("weight", marketing));
  EXPECT_EQ(weight_policy.visibility, 1);   // house
  EXPECT_EQ(weight_policy.granularity, 3);  // specific
  EXPECT_EQ(weight_policy.retention, 3);    // year

  EXPECT_DOUBLE_EQ(config.sensitivities.AttributeSensitivity("weight",
                                                             marketing),
                   4.0);
  EXPECT_DOUBLE_EQ(
      config.sensitivities.ProviderSensitivity(2, "weight", marketing)
          .granularity,
      5.0);

  // Hierarchy edge parsed.
  ASSERT_OK_AND_ASSIGN(PurposeId email,
                       config.purposes.Lookup("email_marketing"));
  EXPECT_TRUE(config.purpose_hierarchy.Implies(email, marketing));
}

TEST(PolicyDslTest, DefaultScalesWhenUndeclared) {
  ASSERT_OK_AND_ASSIGN(
      PrivacyConfig config,
      ParsePrivacyConfig(
          "policy weight for marketing: visibility=house, "
          "granularity=partial, retention=week\n"));
  EXPECT_EQ(config.scales.visibility.num_levels(), 4);
  EXPECT_EQ(config.policy.size(), 1);
}

TEST(PolicyDslTest, NumericLevelsAccepted) {
  ASSERT_OK_AND_ASSIGN(
      PrivacyConfig config,
      ParsePrivacyConfig("policy w for p: visibility=2, granularity=3, "
                         "retention=0\n"));
  ASSERT_OK_AND_ASSIGN(PurposeId p, config.purposes.Lookup("p"));
  EXPECT_EQ(config.policy.Find("w", p)->visibility, 2);
}

TEST(PolicyDslTest, UnspecifiedDimensionsDefaultToZero) {
  ASSERT_OK_AND_ASSIGN(PrivacyConfig config,
                       ParsePrivacyConfig("policy w for p: visibility=1\n"));
  ASSERT_OK_AND_ASSIGN(PurposeId p, config.purposes.Lookup("p"));
  PrivacyTuple t = config.policy.Find("w", p).value();
  EXPECT_EQ(t.granularity, 0);
  EXPECT_EQ(t.retention, 0);
}

TEST(PolicyDslTest, ContinuationLines) {
  ASSERT_OK_AND_ASSIGN(
      PrivacyConfig config,
      ParsePrivacyConfig("policy w for p: visibility=1, \\\n"
                         "  granularity=2\n"));
  ASSERT_OK_AND_ASSIGN(PurposeId p, config.purposes.Lookup("p"));
  EXPECT_EQ(config.policy.Find("w", p)->granularity, 2);
}

TEST(PolicyDslTest, CommentsAndBlankLinesIgnored) {
  ASSERT_OK_AND_ASSIGN(PrivacyConfig config,
                       ParsePrivacyConfig("# just a comment\n\n  \n"
                                          "purpose research # inline\n"));
  EXPECT_TRUE(config.purposes.Contains("research"));
}

TEST(PolicyDslTest, ErrorsCarryLineNumbers) {
  Status s = ParsePrivacyConfig("purpose ok\nbogus statement here\n")
                 .status();
  ASSERT_TRUE(s.IsParseError());
  EXPECT_NE(s.message().find("line 2"), std::string::npos);
}

TEST(PolicyDslTest, UnknownLevelNameErrors) {
  EXPECT_TRUE(ParsePrivacyConfig("policy w for p: visibility=everyone\n")
                  .status()
                  .IsParseError());
}

TEST(PolicyDslTest, LevelIndexOutOfRangeErrors) {
  EXPECT_TRUE(ParsePrivacyConfig("policy w for p: visibility=9\n")
                  .status()
                  .IsParseError());
}

TEST(PolicyDslTest, ScaleAfterUseErrors) {
  Status s = ParsePrivacyConfig(
                 "policy w for p: visibility=1\n"
                 "scale visibility: a, b\n")
                 .status();
  EXPECT_TRUE(s.IsParseError());
  EXPECT_NE(s.message().find("precede"), std::string::npos);
}

TEST(PolicyDslTest, MagnitudeCountMustMatchLevels) {
  EXPECT_TRUE(ParsePrivacyConfig("magnitudes retention: 1, 2\n")
                  .status()
                  .IsParseError());
}

TEST(PolicyDslTest, DuplicatePolicyTupleErrors) {
  EXPECT_TRUE(ParsePrivacyConfig("policy w for p: visibility=1\n"
                                 "policy w for p: visibility=2\n")
                  .status()
                  .IsAlreadyExists());
}

TEST(PolicyDslTest, NegativeThresholdErrors) {
  EXPECT_TRUE(
      ParsePrivacyConfig("threshold 1 = -5\n").status().IsParseError());
}

TEST(PolicyDslTest, MalformedKvListErrors) {
  EXPECT_TRUE(ParsePrivacyConfig("policy w for p: visibility\n")
                  .status()
                  .IsParseError());
  EXPECT_TRUE(ParsePrivacyConfig("policy w for p: =1\n")
                  .status()
                  .IsParseError());
}

TEST(PolicyDslTest, PurposeCycleErrors) {
  EXPECT_TRUE(ParsePrivacyConfig("purpose a implies b\n"
                                 "purpose b implies a\n")
                  .status()
                  .IsInvalidArgument());
}

TEST(PolicyDslTest, SensitivityDefaultsUnspecifiedKeysToOne) {
  ASSERT_OK_AND_ASSIGN(
      PrivacyConfig config,
      ParsePrivacyConfig("purpose p\nsensitivity 1 w: granularity=5\n"));
  ASSERT_OK_AND_ASSIGN(PurposeId p, config.purposes.Lookup("p"));
  DimensionSensitivity s =
      config.sensitivities.ProviderSensitivity(1, "w", p);
  EXPECT_DOUBLE_EQ(s.value, 1.0);
  EXPECT_DOUBLE_EQ(s.visibility, 1.0);
  EXPECT_DOUBLE_EQ(s.granularity, 5.0);
}

TEST(PolicyDslTest, PurposeScopedSensitivity) {
  ASSERT_OK_AND_ASSIGN(
      PrivacyConfig config,
      ParsePrivacyConfig("purpose p\npurpose q\n"
                         "attr_sensitivity w for p = 7\n"
                         "sensitivity 1 w for q: value=3\n"));
  ASSERT_OK_AND_ASSIGN(PurposeId p, config.purposes.Lookup("p"));
  ASSERT_OK_AND_ASSIGN(PurposeId q, config.purposes.Lookup("q"));
  EXPECT_DOUBLE_EQ(config.sensitivities.AttributeSensitivity("w", p), 7.0);
  EXPECT_DOUBLE_EQ(config.sensitivities.AttributeSensitivity("w", q), 1.0);
  EXPECT_DOUBLE_EQ(
      config.sensitivities.ProviderSensitivity(1, "w", q).value, 3.0);
  EXPECT_DOUBLE_EQ(
      config.sensitivities.ProviderSensitivity(1, "w", p).value, 1.0);
}

TEST(PolicyDslTest, RoundTripThroughSerializer) {
  ASSERT_OK_AND_ASSIGN(PrivacyConfig original,
                       ParsePrivacyConfig(kFullConfig));
  std::string serialized = SerializePrivacyConfig(original);
  ASSERT_OK_AND_ASSIGN(PrivacyConfig reparsed,
                       ParsePrivacyConfig(serialized));

  EXPECT_EQ(reparsed.purposes.names(), original.purposes.names());
  EXPECT_EQ(reparsed.policy.tuples(), original.policy.tuples());
  EXPECT_EQ(reparsed.preferences.ProviderIds(),
            original.preferences.ProviderIds());
  ASSERT_OK_AND_ASSIGN(PurposeId marketing,
                       reparsed.purposes.Lookup("marketing"));
  EXPECT_EQ(reparsed.preferences.Find(2).value()->Find("weight", marketing)
                .value(),
            original.preferences.Find(2).value()->Find("weight", marketing)
                .value());
  EXPECT_DOUBLE_EQ(
      reparsed.sensitivities.AttributeSensitivity("weight", marketing), 4.0);
  EXPECT_DOUBLE_EQ(
      reparsed.sensitivities.ProviderSensitivity(2, "weight", marketing)
          .granularity,
      5.0);
  EXPECT_DOUBLE_EQ(reparsed.ThresholdFor(2), 50.0);
  EXPECT_DOUBLE_EQ(reparsed.fallback_threshold, 25.0);
  // Hierarchy survived.
  ASSERT_OK_AND_ASSIGN(PurposeId email,
                       reparsed.purposes.Lookup("email_marketing"));
  EXPECT_TRUE(reparsed.purpose_hierarchy.Implies(email, marketing));
  // Magnitudes survived.
  EXPECT_DOUBLE_EQ(reparsed.scales.retention.MagnitudeOf(3).value(), 365.0);
}

TEST(PolicyDslTest, ValidationRejectsOutOfScaleTuples) {
  // Scale with 2 levels, then a numeric level beyond it.
  Status s = ParsePrivacyConfig(
                 "scale visibility: lo, hi\n"
                 "policy w for p: visibility=5\n")
                 .status();
  EXPECT_TRUE(s.IsParseError());
}

TEST(PolicyDslTest, GeneralizerStatement) {
  ASSERT_OK_AND_ASSIGN(
      PrivacyConfig config,
      ParsePrivacyConfig("generalizer weight: 0, 0, 10\n"
                         "generalizer age: 0, 5\n"));
  ASSERT_EQ(config.numeric_generalizers.size(), 2u);
  EXPECT_EQ(config.numeric_generalizers.at("weight"),
            (std::vector<double>{0, 0, 10}));
  // Round-trips through the serializer.
  ASSERT_OK_AND_ASSIGN(PrivacyConfig reparsed,
                       ParsePrivacyConfig(SerializePrivacyConfig(config)));
  EXPECT_EQ(reparsed.numeric_generalizers, config.numeric_generalizers);
}

TEST(PolicyDslTest, GeneralizerStatementErrors) {
  EXPECT_TRUE(ParsePrivacyConfig("generalizer weight:\n")
                  .status()
                  .IsParseError());
  EXPECT_TRUE(ParsePrivacyConfig("generalizer weight: ten\n")
                  .status()
                  .IsParseError());
  EXPECT_TRUE(ParsePrivacyConfig("generalizer 9bad: 1\n")
                  .status()
                  .IsParseError());
}

}  // namespace
}  // namespace ppdb::privacy

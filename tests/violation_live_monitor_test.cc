#include "violation/live_monitor.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <string>

#include "common/circuit_breaker.h"
#include "common/macros.h"
#include "common/rng.h"
#include "privacy/policy_dsl.h"
#include "storage/database_io.h"
#include "storage/fs.h"
#include "tests/test_util.h"

namespace ppdb::violation {
namespace {

using privacy::Dimension;
using privacy::PrivacyTuple;
using privacy::PurposeId;

class LiveMonitorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    purpose_ = config_.purposes.Register("ads").value();
    PPDB_CHECK_OK(config_.policy.Add("weight",
                                     PrivacyTuple{purpose_, 2, 2, 2}));
    for (int64_t i = 1; i <= 4; ++i) {
      int level = static_cast<int>(i - 1);  // 0..3: increasing tolerance.
      config_.preferences.ForProvider(i).Set(
          "weight", PrivacyTuple{purpose_, level, level, level});
      config_.thresholds[i] = 3.0;
    }
  }

  privacy::PrivacyConfig config_;
  PurposeId purpose_;
};

TEST_F(LiveMonitorTest, InitialStateMatchesBatchDetector) {
  ViolationDetector batch(&config_);
  ASSERT_OK_AND_ASSIGN(ViolationReport report, batch.Analyze());
  ASSERT_OK_AND_ASSIGN(LivePopulationMonitor monitor,
                       LivePopulationMonitor::Create(config_));
  EXPECT_EQ(monitor.num_providers(), report.num_providers());
  EXPECT_EQ(monitor.num_violated(), report.num_violated);
  EXPECT_DOUBLE_EQ(monitor.TotalViolations(), report.total_severity);
  EXPECT_DOUBLE_EQ(monitor.ProbabilityOfViolation(),
                   report.ProbabilityOfViolation());
}

TEST_F(LiveMonitorTest, AddAndRemoveProvider) {
  ASSERT_OK_AND_ASSIGN(LivePopulationMonitor monitor,
                       LivePopulationMonitor::Create(config_));
  int64_t before = monitor.num_violated();
  // A new provider with no stated preferences: implicit zeros, violated.
  ASSERT_OK(monitor.AddProvider(99, 1.0));
  EXPECT_EQ(monitor.num_providers(), 5);
  EXPECT_EQ(monitor.num_violated(), before + 1);
  ASSERT_OK_AND_ASSIGN(bool defaulted, monitor.IsDefaulted(99));
  EXPECT_TRUE(defaulted);  // Severity 6 > threshold 1.
  EXPECT_TRUE(monitor.AddProvider(99, 1.0).IsAlreadyExists());

  ASSERT_OK(monitor.RemoveProvider(99));
  EXPECT_EQ(monitor.num_providers(), 4);
  EXPECT_EQ(monitor.num_violated(), before);
  EXPECT_TRUE(monitor.RemoveProvider(99).IsNotFound());
}

TEST_F(LiveMonitorTest, SetPreferenceRefreshesProvider) {
  ASSERT_OK_AND_ASSIGN(LivePopulationMonitor monitor,
                       LivePopulationMonitor::Create(config_));
  // Provider 1 (preference all-0) is violated; raise their tolerance to
  // the policy level: cleared.
  ASSERT_OK_AND_ASSIGN(ProviderViolation before, monitor.ForProvider(1));
  EXPECT_TRUE(before.violated);
  ASSERT_OK(monitor.SetPreference(1, "weight",
                                  PrivacyTuple{purpose_, 2, 2, 2}));
  ASSERT_OK_AND_ASSIGN(ProviderViolation after, monitor.ForProvider(1));
  EXPECT_FALSE(after.violated);
  EXPECT_DOUBLE_EQ(after.total_severity, 0.0);
}

TEST_F(LiveMonitorTest, SetPreferenceValidatesScale) {
  ASSERT_OK_AND_ASSIGN(LivePopulationMonitor monitor,
                       LivePopulationMonitor::Create(config_));
  EXPECT_TRUE(monitor
                  .SetPreference(1, "weight", PrivacyTuple{purpose_, 99, 0, 0})
                  .IsOutOfRange());
}

TEST_F(LiveMonitorTest, RemovePreferenceFallsBackToImplicitZero) {
  ASSERT_OK_AND_ASSIGN(LivePopulationMonitor monitor,
                       LivePopulationMonitor::Create(config_));
  // Provider 3 (level 2) is clean; removing the stated preference exposes
  // them to the implicit-zero rule.
  ASSERT_OK_AND_ASSIGN(ProviderViolation before, monitor.ForProvider(3));
  EXPECT_FALSE(before.violated);
  ASSERT_OK(monitor.RemovePreference(3, "weight", purpose_));
  ASSERT_OK_AND_ASSIGN(ProviderViolation after, monitor.ForProvider(3));
  EXPECT_TRUE(after.violated);
  EXPECT_TRUE(monitor.RemovePreference(3, "weight", purpose_).IsNotFound());
}

TEST_F(LiveMonitorTest, SetThresholdFlipsOnlyDefaultBit) {
  ASSERT_OK_AND_ASSIGN(LivePopulationMonitor monitor,
                       LivePopulationMonitor::Create(config_));
  // Provider 1: severity 6 > 3 -> defaulted. Raise v_1 to 10: recovered.
  ASSERT_OK_AND_ASSIGN(bool before, monitor.IsDefaulted(1));
  EXPECT_TRUE(before);
  double severity = monitor.ForProvider(1)->total_severity;
  ASSERT_OK(monitor.SetThreshold(1, 10.0));
  ASSERT_OK_AND_ASSIGN(bool after, monitor.IsDefaulted(1));
  EXPECT_FALSE(after);
  EXPECT_DOUBLE_EQ(monitor.ForProvider(1)->total_severity, severity);
  EXPECT_TRUE(monitor.SetThreshold(1, -1.0).IsInvalidArgument());
  EXPECT_TRUE(monitor.SetThreshold(42, 1.0).IsNotFound());
}

TEST_F(LiveMonitorTest, SetPolicyRefreshesEveryone) {
  ASSERT_OK_AND_ASSIGN(LivePopulationMonitor monitor,
                       LivePopulationMonitor::Create(config_));
  ASSERT_OK_AND_ASSIGN(
      privacy::HousePolicy narrower,
      config_.policy.Widened(Dimension::kVisibility, -2, config_.scales));
  ASSERT_OK_AND_ASSIGN(
      narrower, narrower.Widened(Dimension::kGranularity, -2, config_.scales));
  ASSERT_OK_AND_ASSIGN(
      narrower, narrower.Widened(Dimension::kRetention, -2, config_.scales));
  ASSERT_OK(monitor.SetPolicy(narrower));
  EXPECT_EQ(monitor.num_violated(), 0);
  EXPECT_DOUBLE_EQ(monitor.TotalViolations(), 0.0);
}

TEST_F(LiveMonitorTest, SnapshotEqualsBatchRun) {
  ASSERT_OK_AND_ASSIGN(LivePopulationMonitor monitor,
                       LivePopulationMonitor::Create(config_));
  ASSERT_OK(monitor.SetPreference(2, "weight",
                                  PrivacyTuple{purpose_, 3, 3, 3}));
  ASSERT_OK(monitor.AddProvider(50, 5.0));
  ViolationReport snapshot = monitor.Snapshot();
  ViolationDetector batch(&monitor.config());
  ASSERT_OK_AND_ASSIGN(ViolationReport batch_report, batch.Analyze());
  ASSERT_EQ(snapshot.providers.size(), batch_report.providers.size());
  EXPECT_EQ(snapshot.num_violated, batch_report.num_violated);
  EXPECT_DOUBLE_EQ(snapshot.total_severity, batch_report.total_severity);
}

// Property: after an arbitrary random event sequence the live aggregates
// equal a from-scratch batch analysis.
class LiveMonitorFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LiveMonitorFuzzTest, EquivalentToBatchAfterRandomEvents) {
  privacy::PrivacyConfig config;
  PurposeId purpose = config.purposes.Register("p").value();
  PPDB_CHECK_OK(config.policy.Add("a", PrivacyTuple{purpose, 1, 1, 1}));
  PPDB_CHECK_OK(config.policy.Add("b", PrivacyTuple{purpose, 2, 0, 1}));
  ASSERT_OK_AND_ASSIGN(LivePopulationMonitor monitor,
                       LivePopulationMonitor::Create(std::move(config)));

  Rng rng(GetParam());
  std::vector<privacy::ProviderId> known;
  for (int event = 0; event < 200; ++event) {
    double roll = rng.NextDouble();
    if (roll < 0.25 || known.empty()) {
      privacy::ProviderId id = rng.NextInt(1, 1000000);
      if (monitor.AddProvider(id, rng.NextDouble() * 10).ok()) {
        known.push_back(id);
      }
    } else if (roll < 0.55) {
      privacy::ProviderId id = known[rng.NextBounded(known.size())];
      const char* attr = rng.NextBool(0.5) ? "a" : "b";
      PrivacyTuple tuple{0, static_cast<int>(rng.NextInt(0, 3)),
                         static_cast<int>(rng.NextInt(0, 3)),
                         static_cast<int>(rng.NextInt(0, 4))};
      ASSERT_OK(monitor.SetPreference(id, attr, tuple));
    } else if (roll < 0.7) {
      privacy::ProviderId id = known[rng.NextBounded(known.size())];
      ASSERT_OK(monitor.SetThreshold(id, rng.NextDouble() * 10));
    } else if (roll < 0.8) {
      size_t pick = rng.NextBounded(known.size());
      ASSERT_OK(monitor.RemoveProvider(known[pick]));
      known.erase(known.begin() + static_cast<std::ptrdiff_t>(pick));
    } else {
      privacy::HousePolicy policy;
      PPDB_CHECK_OK(policy.Add(
          "a", PrivacyTuple{0, static_cast<int>(rng.NextInt(0, 3)),
                            static_cast<int>(rng.NextInt(0, 3)),
                            static_cast<int>(rng.NextInt(0, 4))}));
      if (rng.NextBool(0.5)) {
        PPDB_CHECK_OK(policy.Add(
            "b", PrivacyTuple{0, static_cast<int>(rng.NextInt(0, 3)),
                              static_cast<int>(rng.NextInt(0, 3)),
                              static_cast<int>(rng.NextInt(0, 4))}));
      }
      ASSERT_OK(monitor.SetPolicy(std::move(policy)));
    }
  }

  ViolationDetector batch(&monitor.config());
  ASSERT_OK_AND_ASSIGN(ViolationReport report, batch.Analyze());
  EXPECT_EQ(monitor.num_providers(), report.num_providers());
  EXPECT_EQ(monitor.num_violated(), report.num_violated);
  EXPECT_NEAR(monitor.TotalViolations(), report.total_severity, 1e-9);
  DefaultReport defaults = ComputeDefaults(report, monitor.config());
  EXPECT_EQ(monitor.num_defaulted(), defaults.num_defaulted);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LiveMonitorFuzzTest,
                         ::testing::Range<uint64_t>(0, 8));

// --- periodic checkpointing through the durable storage API -------------

class LiveMonitorCheckpointTest : public LiveMonitorTest {
 protected:
  void SetUp() override {
    LiveMonitorTest::SetUp();
    dir_ = std::filesystem::temp_directory_path() /
           ("ppdb_monitor_ckpt_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  /// A hook that checkpoints the monitored config with the atomic save.
  LivePopulationMonitor::CheckpointHook SaveHook(int64_t every,
                                                 storage::FileSystem* fs) {
    LivePopulationMonitor::CheckpointHook hook;
    hook.every_events = every;
    hook.save = [this, fs](const privacy::PrivacyConfig& config) {
      storage::Database snapshot;
      snapshot.config = config;
      return storage::SaveDatabase(dir_.string(), snapshot, *fs);
    };
    return hook;
  }

  std::filesystem::path dir_;
};

TEST_F(LiveMonitorCheckpointTest, FiresAtCadenceAndPersistsConfig) {
  ASSERT_OK_AND_ASSIGN(LivePopulationMonitor monitor,
                       LivePopulationMonitor::Create(config_));
  monitor.SetCheckpointHook(SaveHook(2, &storage::GetRealFileSystem()));

  ASSERT_OK(monitor.AddProvider(50, 5.0));  // event 1: no checkpoint yet
  EXPECT_EQ(monitor.checkpoints_taken(), 0);
  EXPECT_EQ(monitor.events_since_checkpoint(), 1);
  EXPECT_FALSE(std::filesystem::exists(dir_));

  ASSERT_OK(monitor.SetThreshold(50, 9.0));  // event 2: checkpoint fires
  EXPECT_EQ(monitor.checkpoints_taken(), 1);
  EXPECT_EQ(monitor.events_since_checkpoint(), 0);
  EXPECT_OK(monitor.last_checkpoint_status());

  // The checkpoint is a loadable database holding the live config.
  ASSERT_OK_AND_ASSIGN(storage::Database loaded,
                       storage::LoadDatabase(dir_.string()));
  EXPECT_EQ(privacy::SerializePrivacyConfig(loaded.config),
            privacy::SerializePrivacyConfig(monitor.config()));
  EXPECT_DOUBLE_EQ(loaded.config.ThresholdFor(50), 9.0);
}

TEST_F(LiveMonitorCheckpointTest, FailedCheckpointIsReportedAndRetried) {
  ASSERT_OK_AND_ASSIGN(LivePopulationMonitor monitor,
                       LivePopulationMonitor::Create(config_));
  storage::FaultInjectingFileSystem faulty(&storage::GetRealFileSystem(),
                                           Rng(3));
  // Enough consecutive transient failures to defeat the save's bounded
  // retry once, after which the disk "heals".
  faulty.SetPlan({.fail_at_op = 0, .kind = storage::FaultKind::kFailOp,
                  .transient_failures = 6});
  monitor.SetCheckpointHook(SaveHook(1, &faulty));

  // The event itself succeeds even though its checkpoint failed.
  ASSERT_OK(monitor.AddProvider(60, 2.0));
  EXPECT_TRUE(monitor.last_checkpoint_status().IsUnavailable())
      << monitor.last_checkpoint_status();
  EXPECT_EQ(monitor.checkpoints_taken(), 0);
  EXPECT_EQ(monitor.events_since_checkpoint(), 1);

  // The next event retries the checkpoint and succeeds.
  ASSERT_OK(monitor.SetThreshold(60, 4.0));
  EXPECT_OK(monitor.last_checkpoint_status());
  EXPECT_EQ(monitor.checkpoints_taken(), 1);
  EXPECT_EQ(monitor.events_since_checkpoint(), 0);
  EXPECT_OK(storage::LoadDatabase(dir_.string()).status());
}

/// A save hook guarded by a circuit breaker, the way the serving layer
/// wires checkpointing: Allow -> save -> Record, with rejections counted
/// instead of hitting the (possibly failing) disk.
LivePopulationMonitor::CheckpointHook GuardedHook(
    LivePopulationMonitor::CheckpointHook inner, CircuitBreaker* breaker) {
  LivePopulationMonitor::CheckpointHook hook = inner;
  hook.save = [inner, breaker](const privacy::PrivacyConfig& config) {
    Status admitted = breaker->Allow();
    if (!admitted.ok()) return admitted;
    Status saved = inner.save(config);
    breaker->Record(saved);
    return saved;
  };
  return hook;
}

TEST_F(LiveMonitorCheckpointTest, BreakerTripsAfterConsecutiveFailedSaves) {
  ASSERT_OK_AND_ASSIGN(LivePopulationMonitor monitor,
                       LivePopulationMonitor::Create(config_));
  storage::FaultInjectingFileSystem faulty(&storage::GetRealFileSystem(),
                                           Rng(11));
  faulty.SetPlan({.fail_at_op = 0, .kind = storage::FaultKind::kFailOp,
                  .transient_failures = 1 << 30});
  CircuitBreaker::Options options;
  options.failure_threshold = 3;
  CircuitBreaker breaker(options);
  monitor.SetCheckpointHook(GuardedHook(SaveHook(1, &faulty), &breaker));

  // Three failing checkpoints trip the breaker; every event still lands.
  for (int64_t i = 0; i < 3; ++i) {
    ASSERT_OK(monitor.AddProvider(80 + i, 1.0)) << i;
    EXPECT_TRUE(monitor.last_checkpoint_status().IsUnavailable()) << i;
  }
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.trips(), 1);
  EXPECT_EQ(monitor.checkpoints_taken(), 0);

  // While open, checkpoint attempts are rejected without touching the
  // disk — and the monitor records the rejection, not a crash.
  int64_t ops_before = faulty.ops_seen();
  ASSERT_OK(monitor.AddProvider(90, 1.0));
  EXPECT_EQ(faulty.ops_seen(), ops_before);
  EXPECT_TRUE(monitor.last_checkpoint_status().IsUnavailable());
  EXPECT_NE(monitor.last_checkpoint_status().message().find("circuit"),
            std::string::npos)
      << monitor.last_checkpoint_status();
  EXPECT_EQ(monitor.num_providers(), 8);  // 4 seeded + 4 added
}

TEST_F(LiveMonitorCheckpointTest, BreakerHalfOpenProbeRestoresCheckpoints) {
  ASSERT_OK_AND_ASSIGN(LivePopulationMonitor monitor,
                       LivePopulationMonitor::Create(config_));
  storage::FaultInjectingFileSystem faulty(&storage::GetRealFileSystem(),
                                           Rng(12));
  faulty.SetPlan({.fail_at_op = 0, .kind = storage::FaultKind::kFailOp,
                  .transient_failures = 1 << 30});

  auto now = std::chrono::steady_clock::time_point();
  CircuitBreaker::Options options;
  options.failure_threshold = 1;
  options.open_duration = std::chrono::milliseconds(100);
  options.clock = [&now] { return now; };
  CircuitBreaker breaker(options);
  monitor.SetCheckpointHook(GuardedHook(SaveHook(1, &faulty), &breaker));

  ASSERT_OK(monitor.AddProvider(91, 1.0));
  ASSERT_EQ(breaker.state(), CircuitBreaker::State::kOpen);

  // Disk heals; after the open window the next checkpoint is the probe,
  // it succeeds, and checkpointing is fully restored.
  faulty.SetPlan({.fail_at_op = -1});
  now += std::chrono::milliseconds(250);
  ASSERT_OK(monitor.SetThreshold(91, 6.0));
  EXPECT_OK(monitor.last_checkpoint_status());
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_EQ(monitor.checkpoints_taken(), 1);
  ASSERT_OK_AND_ASSIGN(storage::Database loaded,
                       storage::LoadDatabase(dir_.string()));
  EXPECT_DOUBLE_EQ(loaded.config.ThresholdFor(91), 6.0);
}

TEST_F(LiveMonitorCheckpointTest, CheckpointNowAndMissingHook) {
  ASSERT_OK_AND_ASSIGN(LivePopulationMonitor monitor,
                       LivePopulationMonitor::Create(config_));
  EXPECT_TRUE(monitor.CheckpointNow().IsFailedPrecondition());

  monitor.SetCheckpointHook(SaveHook(1000, &storage::GetRealFileSystem()));
  ASSERT_OK(monitor.AddProvider(70, 1.0));
  EXPECT_EQ(monitor.checkpoints_taken(), 0);  // cadence not reached
  ASSERT_OK(monitor.CheckpointNow());         // forced
  EXPECT_EQ(monitor.checkpoints_taken(), 1);
  EXPECT_EQ(monitor.events_since_checkpoint(), 0);
  EXPECT_OK(storage::LoadDatabase(dir_.string()).status());
}

}  // namespace
}  // namespace ppdb::violation

#include "privacy/privacy_tuple.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace ppdb::privacy {
namespace {

TEST(PrivacyTupleTest, LevelAccessByDimension) {
  PrivacyTuple t{0, 1, 2, 3};
  ASSERT_OK_AND_ASSIGN(int v, t.Level(Dimension::kVisibility));
  EXPECT_EQ(v, 1);
  ASSERT_OK_AND_ASSIGN(int g, t.Level(Dimension::kGranularity));
  EXPECT_EQ(g, 2);
  ASSERT_OK_AND_ASSIGN(int r, t.Level(Dimension::kRetention));
  EXPECT_EQ(r, 3);
  EXPECT_TRUE(t.Level(Dimension::kPurpose).status().IsInvalidArgument());
}

TEST(PrivacyTupleTest, SetLevelByDimension) {
  PrivacyTuple t = PrivacyTuple::ZeroFor(0);
  ASSERT_OK(t.SetLevel(Dimension::kGranularity, 2));
  EXPECT_EQ(t.granularity, 2);
  EXPECT_TRUE(t.SetLevel(Dimension::kPurpose, 1).IsInvalidArgument());
}

TEST(PrivacyTupleTest, ZeroForHasAllZeroLevels) {
  PrivacyTuple t = PrivacyTuple::ZeroFor(7);
  EXPECT_EQ(t.purpose, 7);
  EXPECT_EQ(t.visibility, 0);
  EXPECT_EQ(t.granularity, 0);
  EXPECT_EQ(t.retention, 0);
}

TEST(PrivacyTupleTest, BoundedByIsGeometricContainment) {
  PrivacyTuple pref{0, 2, 2, 2};
  EXPECT_TRUE((PrivacyTuple{0, 1, 2, 0}).BoundedBy(pref));
  EXPECT_TRUE((PrivacyTuple{0, 2, 2, 2}).BoundedBy(pref));  // Equality: ok.
  EXPECT_FALSE((PrivacyTuple{0, 3, 0, 0}).BoundedBy(pref));
  EXPECT_FALSE((PrivacyTuple{0, 0, 0, 3}).BoundedBy(pref));
}

TEST(PrivacyTupleTest, DimensionsExceedingMatchesFig1) {
  PrivacyTuple pref{0, 2, 2, 2};
  // Fig. 1(a): policy inside the preference box — no violation.
  EXPECT_TRUE((PrivacyTuple{0, 1, 1, 1}).DimensionsExceeding(pref).empty());
  // Fig. 1(b): exceeds on exactly one dimension.
  auto one = (PrivacyTuple{0, 3, 1, 2}).DimensionsExceeding(pref);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0], Dimension::kVisibility);
  // Fig. 1(c): exceeds on two dimensions.
  auto two = (PrivacyTuple{0, 3, 3, 0}).DimensionsExceeding(pref);
  ASSERT_EQ(two.size(), 2u);
  EXPECT_EQ(two[0], Dimension::kVisibility);
  EXPECT_EQ(two[1], Dimension::kGranularity);
}

TEST(PrivacyTupleTest, BoundedByIffNoExceedingDimensions) {
  // Property link between the two predicates over a small grid.
  for (int v = 0; v <= 3; ++v) {
    for (int g = 0; g <= 3; ++g) {
      for (int r = 0; r <= 3; ++r) {
        PrivacyTuple policy{0, v, g, r};
        PrivacyTuple pref{0, 1, 2, 1};
        EXPECT_EQ(policy.BoundedBy(pref),
                  policy.DimensionsExceeding(pref).empty());
      }
    }
  }
}

TEST(PrivacyTupleTest, ValidateAgainstScales) {
  ScaleSet scales;  // 4, 4, 5 levels.
  EXPECT_OK((PrivacyTuple{0, 3, 3, 4}).ValidateAgainst(scales));
  EXPECT_TRUE(
      (PrivacyTuple{0, 4, 0, 0}).ValidateAgainst(scales).IsOutOfRange());
  EXPECT_TRUE(
      (PrivacyTuple{0, 0, -1, 0}).ValidateAgainst(scales).IsOutOfRange());
  EXPECT_TRUE(
      (PrivacyTuple{0, 0, 0, 5}).ValidateAgainst(scales).IsOutOfRange());
}

TEST(PrivacyTupleTest, ToStringWithContext) {
  PurposeRegistry purposes;
  PurposeId id = purposes.Register("marketing").value();
  ScaleSet scales;
  PrivacyTuple t{id, 1, 3, 3};
  EXPECT_EQ(t.ToString(purposes, scales),
            "(marketing, v=house, g=specific, r=year)");
}

TEST(PrivacyTupleTest, ToStringRaw) {
  EXPECT_EQ((PrivacyTuple{2, 1, 0, 3}).ToString(),
            "(pr=2, v=1, g=0, r=3)");
}

TEST(PrivacyTupleTest, Equality) {
  EXPECT_EQ((PrivacyTuple{1, 2, 3, 4}), (PrivacyTuple{1, 2, 3, 4}));
  EXPECT_FALSE((PrivacyTuple{1, 2, 3, 4}) == (PrivacyTuple{1, 2, 3, 0}));
  EXPECT_FALSE((PrivacyTuple{0, 2, 3, 4}) == (PrivacyTuple{1, 2, 3, 4}));
}

}  // namespace
}  // namespace ppdb::privacy

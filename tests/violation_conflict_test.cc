#include "violation/conflict.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace ppdb::violation {
namespace {

using privacy::Dimension;
using privacy::DimensionSensitivity;
using privacy::PolicyTuple;
using privacy::PreferenceTuple;
using privacy::PrivacyTuple;
using privacy::SensitivityModel;

TEST(LevelDiffTest, MatchesEq12) {
  // diff(p, P) = P - p when P > p, else 0.
  EXPECT_EQ(LevelDiff(1, 3), 2);
  EXPECT_EQ(LevelDiff(3, 3), 0);
  EXPECT_EQ(LevelDiff(3, 1), 0);
  EXPECT_EQ(LevelDiff(0, 0), 0);
  EXPECT_EQ(LevelDiff(0, 4), 4);
}

TEST(ComparableTest, MatchesEq13) {
  PreferenceTuple pref{1, "weight", PrivacyTuple{0, 1, 1, 1}};
  // Same attribute, same purpose: comparable.
  EXPECT_TRUE(Comparable(pref, PolicyTuple{"weight", PrivacyTuple{0, 3, 3, 3}}));
  // Different attribute: not comparable.
  EXPECT_FALSE(Comparable(pref, PolicyTuple{"age", PrivacyTuple{0, 3, 3, 3}}));
  // Different purpose: not comparable.
  EXPECT_FALSE(
      Comparable(pref, PolicyTuple{"weight", PrivacyTuple{1, 3, 3, 3}}));
}

TEST(ConflictTest, NonComparablePairIsZero) {
  SensitivityModel sens;
  PreferenceTuple pref{1, "weight", PrivacyTuple{0, 0, 0, 0}};
  PolicyTuple policy{"age", PrivacyTuple{0, 3, 3, 3}};
  ConflictBreakdown b = Conflict(pref, policy, sens);
  EXPECT_FALSE(b.comparable);
  EXPECT_DOUBLE_EQ(b.total, 0.0);
  EXPECT_FALSE(b.HasExceedance());
}

TEST(ConflictTest, NoExceedanceWhenPolicyBounded) {
  SensitivityModel sens;
  PreferenceTuple pref{1, "weight", PrivacyTuple{0, 2, 2, 2}};
  PolicyTuple policy{"weight", PrivacyTuple{0, 1, 2, 0}};
  ConflictBreakdown b = Conflict(pref, policy, sens);
  EXPECT_TRUE(b.comparable);
  EXPECT_DOUBLE_EQ(b.total, 0.0);
  EXPECT_FALSE(b.HasExceedance());
}

TEST(ConflictTest, UnitSensitivitiesGiveRawDiffs) {
  SensitivityModel sens;  // Everything defaults to 1.
  PreferenceTuple pref{1, "weight", PrivacyTuple{0, 1, 1, 1}};
  PolicyTuple policy{"weight", PrivacyTuple{0, 3, 2, 1}};
  ConflictBreakdown b = Conflict(pref, policy, sens);
  // diff_V = 2, diff_G = 1, diff_R = 0; all weights 1.
  EXPECT_DOUBLE_EQ(b.total, 3.0);
  EXPECT_EQ(b.per_dimension[0].dimension, Dimension::kVisibility);
  EXPECT_EQ(b.per_dimension[0].diff, 2);
  EXPECT_DOUBLE_EQ(b.per_dimension[0].weighted, 2.0);
  EXPECT_EQ(b.per_dimension[1].diff, 1);
  EXPECT_EQ(b.per_dimension[2].diff, 0);
  EXPECT_TRUE(b.HasExceedance());
}

TEST(ConflictTest, WeightsMultiplyPerEq14) {
  SensitivityModel sens;
  ASSERT_OK(sens.SetAttributeSensitivity("weight", 4.0));
  ASSERT_OK(sens.SetProviderSensitivity(
      1, "weight", DimensionSensitivity{3.0, 1.0, 5.0, 2.0}));
  PreferenceTuple pref{1, "weight", PrivacyTuple{0, 2, 1, 2}};
  PolicyTuple policy{"weight", PrivacyTuple{0, 2, 2, 2}};
  ConflictBreakdown b = Conflict(pref, policy, sens);
  // Only granularity exceeds: diff = 1, weighted = 1 * 4 * 3 * 5 = 60
  // (this is exactly Ted's conflict in the paper's Eq. 20).
  EXPECT_DOUBLE_EQ(b.total, 60.0);
  EXPECT_DOUBLE_EQ(b.per_dimension[1].weighted, 60.0);
}

TEST(ConflictTest, ViolationWithZeroSensitivityHasZeroSeverity) {
  SensitivityModel sens;
  ASSERT_OK(sens.SetProviderSensitivity(
      1, "weight", DimensionSensitivity{0.0, 1.0, 1.0, 1.0}));
  PreferenceTuple pref{1, "weight", PrivacyTuple{0, 0, 0, 0}};
  PolicyTuple policy{"weight", PrivacyTuple{0, 3, 3, 3}};
  ConflictBreakdown b = Conflict(pref, policy, sens);
  // Def. 1 violation exists (diffs > 0) but severity is zero.
  EXPECT_TRUE(b.HasExceedance());
  EXPECT_DOUBLE_EQ(b.total, 0.0);
}

TEST(ConflictTest, PurposeScopedSensitivitiesApply) {
  SensitivityModel sens;
  ASSERT_OK(sens.SetAttributeSensitivityForPurpose("weight", 1, 10.0));
  PreferenceTuple pref{1, "weight", PrivacyTuple{1, 0, 0, 0}};
  PolicyTuple policy{"weight", PrivacyTuple{1, 1, 0, 0}};
  ConflictBreakdown b = Conflict(pref, policy, sens);
  EXPECT_DOUBLE_EQ(b.total, 10.0);
}

TEST(ConflictTest, SensitivitiesLookedUpByPolicyPurpose) {
  SensitivityModel sens;
  ASSERT_OK(sens.SetAttributeSensitivityForPurpose("weight", 0, 2.0));
  ASSERT_OK(sens.SetAttributeSensitivityForPurpose("weight", 1, 100.0));
  PreferenceTuple pref{1, "weight", PrivacyTuple{0, 0, 0, 0}};
  PolicyTuple policy{"weight", PrivacyTuple{0, 1, 0, 0}};
  EXPECT_DOUBLE_EQ(Conflict(pref, policy, sens).total, 2.0);
}

// Property: conf is monotone in each policy dimension (widening the policy
// can only increase the conflict).
class ConflictMonotonicityTest
    : public ::testing::TestWithParam<privacy::Dimension> {};

TEST_P(ConflictMonotonicityTest, WideningNeverDecreasesConflict) {
  SensitivityModel sens;
  ASSERT_OK(sens.SetAttributeSensitivity("weight", 4.0));
  ASSERT_OK(sens.SetProviderSensitivity(
      1, "weight", DimensionSensitivity{2.0, 1.5, 3.0, 0.5}));
  for (int pref_level = 0; pref_level <= 3; ++pref_level) {
    PreferenceTuple pref{
        1, "weight", PrivacyTuple{0, pref_level, pref_level, pref_level}};
    double previous = -1.0;
    for (int policy_level = 0; policy_level <= 4; ++policy_level) {
      PrivacyTuple tuple{0, 1, 1, 1};
      ASSERT_OK(tuple.SetLevel(GetParam(), policy_level));
      double total = Conflict(pref, PolicyTuple{"weight", tuple}, sens).total;
      EXPECT_GE(total, previous)
          << "dimension " << privacy::DimensionName(GetParam())
          << " pref_level " << pref_level << " policy_level " << policy_level;
      previous = total;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllOrderedDimensions, ConflictMonotonicityTest,
    ::testing::Values(privacy::Dimension::kVisibility,
                      privacy::Dimension::kGranularity,
                      privacy::Dimension::kRetention),
    [](const ::testing::TestParamInfo<privacy::Dimension>& info) {
      return std::string(privacy::DimensionName(info.param));
    });

}  // namespace
}  // namespace ppdb::violation

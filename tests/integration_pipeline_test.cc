// End-to-end pipeline: CSV data -> catalog -> DSL privacy config ->
// violation detection -> defaults -> alpha-PPDB certification -> what-if
// expansion -> enforcement through the access monitor.
#include <gtest/gtest.h>

#include "audit/monitor.h"
#include "audit/retention_sweeper.h"
#include "privacy/policy_dsl.h"
#include "relational/csv.h"
#include "relational/query.h"
#include "tests/test_util.h"
#include "violation/default_model.h"
#include "violation/detector.h"
#include "violation/probability.h"
#include "violation/what_if.h"

namespace ppdb {
namespace {

constexpr char kDataCsv[] =
    "provider_id,age,weight\n"
    "1,34,81.5\n"
    "2,28,64.2\n"
    "3,45,92.1\n"
    "4,39,77.0\n"
    "5,51,88.8\n";

constexpr char kPrivacyDsl[] = R"(
purpose care
purpose marketing

policy age for care: visibility=house, granularity=specific, retention=year
policy weight for care: visibility=house, granularity=specific, retention=year
policy weight for marketing: visibility=third_party, granularity=partial, retention=month

# Providers 1-2 are permissive, 3 is average, 4-5 marketing-averse.
pref 1 age for care: visibility=world, granularity=specific, retention=indefinite
pref 1 weight for care: visibility=world, granularity=specific, retention=indefinite
pref 1 weight for marketing: visibility=world, granularity=specific, retention=indefinite
pref 2 age for care: visibility=third_party, granularity=specific, retention=year
pref 2 weight for care: visibility=third_party, granularity=specific, retention=year
pref 2 weight for marketing: visibility=third_party, granularity=partial, retention=month
pref 3 age for care: visibility=house, granularity=specific, retention=year
pref 3 weight for care: visibility=house, granularity=specific, retention=year
pref 3 weight for marketing: visibility=house, granularity=partial, retention=week
pref 4 age for care: visibility=house, granularity=specific, retention=year
pref 4 weight for care: visibility=house, granularity=specific, retention=year
pref 4 weight for marketing: visibility=none, granularity=none, retention=none
pref 5 age for care: visibility=house, granularity=specific, retention=year
pref 5 weight for care: visibility=house, granularity=partial, retention=month

attr_sensitivity age = 2
attr_sensitivity weight = 4
sensitivity 3 weight: value=2, visibility=3, granularity=1, retention=1
sensitivity 4 weight: value=2, visibility=2, granularity=2, retention=1
threshold 1 = 100
threshold 2 = 100
threshold 3 = 15
threshold 4 = 40
threshold 5 = 30
)";

class PipelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    rel::Schema schema =
        rel::Schema::Create({{"age", rel::DataType::kInt64, ""},
                             {"weight", rel::DataType::kDouble, ""}})
            .value();
    ASSERT_OK_AND_ASSIGN(rel::Table table,
                         rel::TableFromCsv("providers", schema, kDataCsv));
    ASSERT_OK(catalog_.AddTable(std::move(table)).status());
    ASSERT_OK_AND_ASSIGN(config_, privacy::ParsePrivacyConfig(kPrivacyDsl));
  }

  rel::Catalog catalog_;
  privacy::PrivacyConfig config_;
};

TEST_F(PipelineTest, ViolationAnalysisOverCsvPopulation) {
  ASSERT_OK_AND_ASSIGN(const rel::Table* table,
                       catalog_.GetTable("providers"));
  violation::ViolationDetector::Options options;
  options.data_table = table;
  violation::ViolationDetector detector(&config_, options);
  ASSERT_OK_AND_ASSIGN(violation::ViolationReport report, detector.Analyze());
  EXPECT_EQ(report.num_providers(), 5);

  // Providers 1-2 fully cover the policy: no violations.
  EXPECT_FALSE(report.Find(1)->violated);
  EXPECT_FALSE(report.Find(2)->violated);
  // Provider 3: marketing visibility third_party(2) > house(1) and
  // retention month(2) > week(1).
  ASSERT_TRUE(report.Find(3)->violated);
  // conf = (1 * 4 * 2 * 3) + (1 * 4 * 2 * 1) = 24 + 8 = 32.
  EXPECT_DOUBLE_EQ(report.Find(3)->total_severity, 32.0);
  // Provider 4: refused marketing entirely; policy exceeds on all three.
  ASSERT_TRUE(report.Find(4)->violated);
  // conf = v: 2*4*2*2=32, g: 2*4*2*2=32, r: 2*4*2*1=16 -> 80.
  EXPECT_DOUBLE_EQ(report.Find(4)->total_severity, 80.0);
  // Provider 5: stated nothing for marketing -> implicit zero tuple.
  ASSERT_TRUE(report.Find(5)->violated);
  EXPECT_TRUE(report.Find(5)->incidents[0].from_implicit_preference ||
              report.Find(5)->incidents.size() > 1);

  // P(W) = 3/5.
  EXPECT_DOUBLE_EQ(report.ProbabilityOfViolation(), 0.6);
}

TEST_F(PipelineTest, DefaultsAndCertification) {
  violation::ViolationDetector detector(&config_);
  ASSERT_OK_AND_ASSIGN(violation::ViolationReport report, detector.Analyze());
  violation::DefaultReport defaults =
      violation::ComputeDefaults(report, config_);
  // Provider 3: 32 > 15 defaults. Provider 4: 80 > 40 defaults.
  // Provider 5: care granularity+retention conf = 8, plus the implicit-zero
  // marketing violation conf = (2+2+2)*4 = 24; total 32 > 30 -> defaults.
  EXPECT_EQ(defaults.DefaultedProviders(),
            (std::vector<privacy::ProviderId>{3, 4, 5}));
  EXPECT_DOUBLE_EQ(defaults.ProbabilityOfDefault(), 0.6);

  ASSERT_OK_AND_ASSIGN(violation::AlphaCertification cert,
                       violation::CertifyAlphaPpdb(report, 0.6));
  EXPECT_TRUE(cert.certified);
  ASSERT_OK_AND_ASSIGN(violation::AlphaCertification strict,
                       violation::CertifyAlphaPpdb(report, 0.5));
  EXPECT_FALSE(strict.certified);
}

TEST_F(PipelineTest, WhatIfNarrowingRecoversProviders) {
  // Narrow the marketing policy instead of widening: defaults drop.
  violation::WhatIfAnalyzer analyzer(&config_, {});
  std::vector<violation::ExpansionStep> narrow = {
      violation::ExpansionStep{privacy::Dimension::kVisibility, -2, {}},
      violation::ExpansionStep{privacy::Dimension::kGranularity, -2, {}},
      violation::ExpansionStep{privacy::Dimension::kRetention, -2, {}},
  };
  ASSERT_OK_AND_ASSIGN(auto points, analyzer.RunSchedule(narrow));
  EXPECT_LT(points.back().p_violation, points.front().p_violation);
  EXPECT_LE(points.back().num_defaulted, points.front().num_defaulted);
}

TEST_F(PipelineTest, EnforcementProtectsTightProviders) {
  audit::GeneralizerRegistry generalizers;
  generalizers.Register("weight",
                        std::make_unique<audit::NumericRangeGeneralizer>(
                            std::vector<double>{0.0, 0.0, 10.0}));
  audit::AuditLog log;
  audit::AccessMonitor monitor(&catalog_, &config_, &generalizers, &log,
                               audit::EnforcementMode::kEnforce);

  ASSERT_OK_AND_ASSIGN(privacy::PurposeId marketing,
                       config_.purposes.Lookup("marketing"));
  audit::AccessRequest request;
  request.requester = "ad_partner";
  request.visibility_level = 2;  // third_party, as the policy declares.
  request.purpose = marketing;
  request.table = "providers";
  request.attributes = {"weight"};
  ASSERT_OK_AND_ASSIGN(rel::ResultSet rs, monitor.Execute(request));
  ASSERT_EQ(rs.num_rows(), 5);

  // Provider 1 (world-visibility consent): released at policy granularity
  // (partial -> decade bin).
  EXPECT_EQ(rs.rows[0].values[0], rel::Value::String("[80, 90)"));
  // Provider 4 (none): suppressed.
  EXPECT_TRUE(rs.rows[3].values[0].is_null());
  // Provider 3 allows house visibility only; request is third_party:
  // suppressed.
  EXPECT_TRUE(rs.rows[2].values[0].is_null());
  // Audit trail captured the suppressions.
  EXPECT_GE(log.CountByKind(audit::AuditEventKind::kCellSuppressed), 2);
}

TEST_F(PipelineTest, QueryEngineOverMonitorOutput) {
  // Downstream relational processing of an enforced result set.
  audit::GeneralizerRegistry generalizers;
  audit::AuditLog log;
  audit::AccessMonitor monitor(&catalog_, &config_, &generalizers, &log,
                               audit::EnforcementMode::kEnforce);
  ASSERT_OK_AND_ASSIGN(privacy::PurposeId care,
                       config_.purposes.Lookup("care"));
  audit::AccessRequest request;
  request.requester = "clinician";
  request.visibility_level = 1;
  request.purpose = care;
  request.table = "providers";
  request.attributes = {"age", "weight"};
  ASSERT_OK_AND_ASSIGN(rel::ResultSet rs, monitor.Execute(request));
  // Count non-null released weights with the query engine.
  ASSERT_OK_AND_ASSIGN(
      rel::ResultSet present,
      rel::Filter(rs, rel::Not(rel::IsNull(rel::Col("weight")))));
  // Everyone consented to care at >= policy levels: all 5 rows released.
  EXPECT_EQ(present.num_rows(), 5);
}

TEST_F(PipelineTest, SerializeParseStability) {
  // The parsed config survives a serialize/parse cycle and produces the
  // same violation analysis.
  std::string serialized = privacy::SerializePrivacyConfig(config_);
  ASSERT_OK_AND_ASSIGN(privacy::PrivacyConfig reparsed,
                       privacy::ParsePrivacyConfig(serialized));
  violation::ViolationDetector a(&config_), b(&reparsed);
  ASSERT_OK_AND_ASSIGN(violation::ViolationReport ra, a.Analyze());
  ASSERT_OK_AND_ASSIGN(violation::ViolationReport rb, b.Analyze());
  EXPECT_EQ(ra.num_violated, rb.num_violated);
  EXPECT_DOUBLE_EQ(ra.total_severity, rb.total_severity);
}

}  // namespace
}  // namespace ppdb

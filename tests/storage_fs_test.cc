#include "storage/fs.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <string>

#include "common/rng.h"
#include "tests/test_util.h"

namespace ppdb::storage {
namespace {

namespace stdfs = std::filesystem;

class FsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = stdfs::temp_directory_path() /
           ("ppdb_fs_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    stdfs::remove_all(dir_);
    stdfs::create_directories(dir_);
  }
  void TearDown() override { stdfs::remove_all(dir_); }

  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  stdfs::path dir_;
  RealFileSystem real_;
};

TEST_F(FsTest, RealWriteReadRoundTrip) {
  ASSERT_OK(real_.WriteFile(Path("a.txt"), "hello\n"));
  ASSERT_OK_AND_ASSIGN(std::string contents, real_.ReadFile(Path("a.txt")));
  EXPECT_EQ(contents, "hello\n");
  EXPECT_TRUE(real_.Exists(Path("a.txt")));
  EXPECT_FALSE(real_.IsDirectory(Path("a.txt")));
  EXPECT_TRUE(real_.IsDirectory(dir_.string()));
}

TEST_F(FsTest, RealWriteToUnwritablePathReportsErrno) {
  // Opening a directory path as a file fails at open and carries errno text.
  Status status = real_.WriteFile(dir_.string(), "x");
  EXPECT_TRUE(status.IsInternal());
  EXPECT_NE(status.message().find(dir_.string()), std::string::npos);
  // Some strerror text (not the bare "unknown error" fallback) is present.
  EXPECT_NE(status.message().find(": "), std::string::npos);
}

TEST_F(FsTest, RealWriteIntoMissingParentFails) {
  EXPECT_FALSE(real_.WriteFile(Path("nope/deep/a.txt"), "x").ok());
}

TEST_F(FsTest, RealRenameReplacesDestination) {
  ASSERT_OK(real_.WriteFile(Path("src"), "new"));
  ASSERT_OK(real_.WriteFile(Path("dst"), "old"));
  ASSERT_OK(real_.Rename(Path("src"), Path("dst")));
  ASSERT_OK_AND_ASSIGN(std::string contents, real_.ReadFile(Path("dst")));
  EXPECT_EQ(contents, "new");
  EXPECT_FALSE(real_.Exists(Path("src")));
}

TEST_F(FsTest, RealListDirectorySorted) {
  ASSERT_OK(real_.WriteFile(Path("b"), ""));
  ASSERT_OK(real_.WriteFile(Path("a"), ""));
  ASSERT_OK(real_.CreateDirectories(Path("c")));
  ASSERT_OK_AND_ASSIGN(auto names, real_.ListDirectory(dir_.string()));
  EXPECT_EQ(names, (std::vector<std::string>{"a", "b", "c"}));
}

TEST_F(FsTest, RealRemoveAllMissingIsOk) {
  ASSERT_OK(real_.RemoveAll(Path("never_existed")));
}

TEST_F(FsTest, FaultFailOpIsTransientAndCounted) {
  FaultInjectingFileSystem faulty(&real_, Rng(1));
  faulty.SetPlan({.fail_at_op = 1, .kind = FaultKind::kFailOp});
  ASSERT_OK(faulty.WriteFile(Path("w0"), "zero"));      // op 0
  Status status = faulty.WriteFile(Path("w1"), "one");  // op 1: faulted
  EXPECT_TRUE(status.IsUnavailable());
  EXPECT_FALSE(real_.Exists(Path("w1")));  // nothing reached the disk
  ASSERT_OK(faulty.WriteFile(Path("w2"), "two"));       // op 2: past it
  EXPECT_EQ(faulty.ops_seen(), 3);
  EXPECT_EQ(faulty.faults_injected(), 1);
  EXPECT_FALSE(faulty.crashed());
}

TEST_F(FsTest, FaultFailOpRepeatsForTransientFailures) {
  FaultInjectingFileSystem faulty(&real_, Rng(1));
  faulty.SetPlan({.fail_at_op = 0, .kind = FaultKind::kFailOp,
                  .transient_failures = 3});
  EXPECT_TRUE(faulty.WriteFile(Path("w"), "x").IsUnavailable());
  EXPECT_TRUE(faulty.WriteFile(Path("w"), "x").IsUnavailable());
  EXPECT_TRUE(faulty.WriteFile(Path("w"), "x").IsUnavailable());
  ASSERT_OK(faulty.WriteFile(Path("w"), "x"));  // fourth attempt lands
  EXPECT_EQ(faulty.faults_injected(), 3);
}

TEST_F(FsTest, TornWriteLeavesStrictPrefix) {
  const std::string payload = "0123456789abcdef0123456789abcdef";
  FaultInjectingFileSystem faulty(&real_, Rng(7));
  faulty.SetPlan({.fail_at_op = 0, .kind = FaultKind::kTornWrite});
  Status status = faulty.WriteFile(Path("torn"), payload);
  EXPECT_TRUE(status.IsUnavailable());
  ASSERT_OK_AND_ASSIGN(std::string on_disk, real_.ReadFile(Path("torn")));
  EXPECT_LT(on_disk.size(), payload.size());
  EXPECT_EQ(on_disk, payload.substr(0, on_disk.size()));
}

TEST_F(FsTest, TornWriteIsDeterministicPerSeed) {
  const std::string payload(64, 'x');
  auto torn_size = [&](uint64_t seed) {
    std::string path = Path("torn_" + std::to_string(seed));
    FaultInjectingFileSystem faulty(&real_, Rng(seed));
    faulty.SetPlan({.fail_at_op = 0, .kind = FaultKind::kTornWrite});
    EXPECT_FALSE(faulty.WriteFile(path, payload).ok());
    return real_.ReadFile(path)->size();
  };
  EXPECT_EQ(torn_size(3), torn_size(3));
}

TEST_F(FsTest, NoSpaceIsPermanentWithEnospcText) {
  FaultInjectingFileSystem faulty(&real_, Rng(1));
  faulty.SetPlan({.fail_at_op = 0, .kind = FaultKind::kNoSpace});
  Status status = faulty.WriteFile(Path("full"), "data");
  EXPECT_TRUE(status.IsOutOfRange());
  EXPECT_NE(status.message().find("no space left on device"),
            std::string::npos);
  // Not transient: a retry loop must not spin on it.
  ASSERT_OK(faulty.WriteFile(Path("later"), "x"));  // one-shot fault
}

TEST_F(FsTest, CrashStopsAllSubsequentMutations) {
  FaultInjectingFileSystem faulty(&real_, Rng(5));
  faulty.SetPlan({.fail_at_op = 0, .kind = FaultKind::kCrash});
  EXPECT_TRUE(faulty.WriteFile(Path("w"), "payload").IsInternal());
  EXPECT_TRUE(faulty.crashed());
  EXPECT_TRUE(faulty.WriteFile(Path("w2"), "x").IsInternal());
  EXPECT_TRUE(faulty.Rename(Path("a"), Path("b")).IsInternal());
  EXPECT_TRUE(faulty.CreateDirectories(Path("d")).IsInternal());
  EXPECT_TRUE(faulty.RemoveAll(Path("w")).IsInternal());
  EXPECT_FALSE(real_.Exists(Path("w2")));
  // Reads still work (the process inspecting the aftermath is a new one).
  ASSERT_OK(real_.WriteFile(Path("r"), "ok"));
  EXPECT_OK(faulty.ReadFile(Path("r")).status());
}

TEST_F(FsTest, RenameFaultLeavesDestinationUntouched) {
  ASSERT_OK(real_.WriteFile(Path("src"), "new"));
  ASSERT_OK(real_.WriteFile(Path("dst"), "old"));
  FaultInjectingFileSystem faulty(&real_, Rng(1));
  faulty.SetPlan({.fail_at_op = 0, .kind = FaultKind::kFailOp});
  EXPECT_TRUE(faulty.Rename(Path("src"), Path("dst")).IsUnavailable());
  ASSERT_OK_AND_ASSIGN(std::string contents, real_.ReadFile(Path("dst")));
  EXPECT_EQ(contents, "old");
  EXPECT_TRUE(real_.Exists(Path("src")));
}

TEST_F(FsTest, NoPlanNeverFaults) {
  FaultInjectingFileSystem faulty(&real_, Rng(1));
  for (int i = 0; i < 10; ++i) {
    ASSERT_OK(faulty.WriteFile(Path("f" + std::to_string(i)), "x"));
  }
  EXPECT_EQ(faulty.ops_seen(), 10);
  EXPECT_EQ(faulty.faults_injected(), 0);
}

}  // namespace
}  // namespace ppdb::storage

#!/usr/bin/env bash
# End-to-end test of ppdb_cli against the Section 8 demo database.
set -u
CLI="$1"
DIR="$(mktemp -d)"
trap 'rm -rf "$DIR"' EXIT
failures=0

check() {  # check <description> <expected-substring> <<< output
  local description="$1" expected="$2" output
  output="$(cat)"
  if ! grep -qF "$expected" <<< "$output"; then
    echo "FAIL: $description"
    echo "  expected substring: $expected"
    echo "  got: $output"
    failures=$((failures + 1))
  fi
}

"$CLI" demo "$DIR/db" | check "demo writes db" "written to"
test -f "$DIR/db/CURRENT" || { echo "FAIL: no CURRENT"; failures=$((failures+1)); }
GEN="$(cat "$DIR/db/CURRENT")"
test -f "$DIR/db/$GEN/MANIFEST" || { echo "FAIL: no MANIFEST in $GEN"; failures=$((failures+1)); }

"$CLI" report "$DIR/db" | check "report P(W)" "P(W)=0.6667"
"$CLI" report "$DIR/db" | check "report P(Default)" "P(Default)=0.3333"
"$CLI" report "$DIR/db" | check "Ted's severity" "provider 2: Violation_i=60.000"

"$CLI" certify "$DIR/db" 0.7 | check "certify passes at 0.7" "CERTIFIED"
if "$CLI" certify "$DIR/db" 0.5 >/dev/null 2>&1; then
  echo "FAIL: certify at 0.5 should exit non-zero"
  failures=$((failures + 1))
fi

"$CLI" statement "$DIR/db" 2 | check "statement names granularity" "granularity"
"$CLI" statement "$DIR/db" 1 | check "clean provider statement" "No violations"

"$CLI" sql "$DIR/db" "SELECT COUNT(*) AS n FROM providers" \
  | check "sql count" "[3]"
"$CLI" sql "$DIR/db" "SELECT Age FROM providers WHERE Weight > 90" \
  | check "sql filter" "[41]"
if "$CLI" sql "$DIR/db" "SELECT nope FROM providers" >/dev/null 2>&1; then
  echo "FAIL: bad sql should exit non-zero"
  failures=$((failures + 1))
fi

# Policy diff: a narrowed policy recovers Ted.
cat > "$DIR/narrow.ppdb" <<'EOF'
scale visibility: l0, l1, l2, l3, l4, l5, l6, l7
scale granularity: l0, l1, l2, l3, l4, l5, l6, l7
scale retention: l0, l1, l2, l3, l4, l5, l6, l7
purpose pr
policy Age for pr: visibility=0, granularity=0, retention=0
policy Weight for pr: visibility=1, granularity=1, retention=1
EOF
"$CLI" diff "$DIR/db" "$DIR/narrow.ppdb" | check "diff narrows" "narrowed"
"$CLI" diff "$DIR/db" "$DIR/narrow.ppdb" | check "diff recovers Ted" "1 recovered"

"$CLI" audit "$DIR/db" | check "audit empty" "(0 events total)"

# Recovery: a clean directory reports clean and exits 0.
"$CLI" recover "$DIR/db" > "$DIR/recover0.out"
rc=$?
check "recover clean" "clean: nothing discarded" < "$DIR/recover0.out"
if [ "$rc" -ne 0 ]; then
  echo "FAIL: recover of a clean db should exit 0, got $rc"
  failures=$((failures + 1))
fi
# Plant crash leftovers: an uncommitted staging dir from a torn save.
mkdir -p "$DIR/db/.staging-42/tables"
echo junk > "$DIR/db/.staging-42/MANIFEST"
"$CLI" recover "$DIR/db" > "$DIR/recover1.out"
rc=$?
check "recover discards staging" ".staging-42" < "$DIR/recover1.out"
if [ "$rc" -ne 4 ]; then
  echo "FAIL: recover with leftovers should exit 4, got $rc"
  failures=$((failures + 1))
fi
if [ -d "$DIR/db/.staging-42" ]; then
  echo "FAIL: recover left the staging dir behind"
  failures=$((failures + 1))
fi
"$CLI" report "$DIR/db" | check "report works after recover" "P(W)=0.6667"
if "$CLI" recover "$DIR/nonexistent" >/dev/null 2>&1; then
  echo "FAIL: recover of a missing dir should exit non-zero"
  failures=$((failures + 1))
fi

# Enforced read at house visibility (l1): Ted's and Bob's Weight come back
# clamped to their preferred granularity (l1 -> "*"), Alice suppressed? No:
# Alice prefers visibility l3 >= l1, granularity l3 > policy l2 -> released
# at policy granularity l2 via the decade generalizer.
"$CLI" enforce "$DIR/db" pr l1 providers Weight \
  | check "enforced read bins Alice" "[50, 60)"
"$CLI" enforce "$DIR/db" pr l1 providers Weight \
  | check "enforced read stars Ted" "*"

# Serving layer: a pipelined session through `serve` — events, queries,
# a deadline-tagged analyze, a parse error, and a graceful drain that
# takes a final checkpoint.
SERVE_OUT="$DIR/serve.out"
printf '%s\n' \
  "ping" \
  "# comments are free" \
  "event add 9 100" \
  "query pw" \
  "@60000 analyze" \
  "stats" \
  "warp 9" \
  "drain" \
  | "$CLI" serve "$DIR/db" > "$SERVE_OUT"
rc=$?
if [ "$rc" -ne 0 ]; then
  echo "FAIL: serve session should exit 0, got $rc"
  failures=$((failures + 1))
fi
check "serve answers ping" "1 ok pong" < "$SERVE_OUT"
check "serve admits the event" "2 ok" < "$SERVE_OUT"
check "serve updates pw live" "pw=0.75" < "$SERVE_OUT"
check "serve analyzes under a deadline" "4 ok" < "$SERVE_OUT"
check "serve merges broker stats" "shed=0" < "$SERVE_OUT"
check "serve rejects junk cleanly" "6 error invalid_argument" < "$SERVE_OUT"
check "serve drains and checkpoints" "drained=1 final_checkpoint=ok" < "$SERVE_OUT"
# The drained event survived the final checkpoint.
"$CLI" report "$DIR/db" | check "serve state persisted" "P(W)=0.7500"

# Observability: a Prometheus scrape arrives block-framed and covers all
# four instrumented layers; the trace command dumps the span ring as JSON.
METRICS_OUT="$DIR/metrics.out"
printf '%s\n' "analyze" "stats prometheus" "trace" \
  | "$CLI" serve "$DIR/db" > "$METRICS_OUT"
check "scrape is block-framed" "2 ok block lines=" < "$METRICS_OUT"
check "scrape has broker metrics" "ppdb_broker_submitted_total" < "$METRICS_OUT"
check "scrape has service metrics" "ppdb_service_requests_total" < "$METRICS_OUT"
check "scrape has storage metrics" "ppdb_storage_load_seconds" < "$METRICS_OUT"
check "scrape has violation metrics" "ppdb_violation_pw" < "$METRICS_OUT"
check "trace dump is a JSON array" "3 ok [" < "$METRICS_OUT"

"$CLI" trace "$DIR/db" | check "offline trace names its spans" '"name":"shard_fanout"'

# Recovery dry run: the report is identical but the directory is left
# untouched, so an operator can inspect before committing to the repair.
mkdir -p "$DIR/db/.staging-43/tables"
echo junk > "$DIR/db/.staging-43/MANIFEST"
"$CLI" recover "$DIR/db" --dry-run > "$DIR/dryrun.out"
rc=$?
check "dry run reports the leftover" ".staging-43" < "$DIR/dryrun.out"
check "dry run says it changed nothing" "dry run" < "$DIR/dryrun.out"
if [ "$rc" -ne 4 ]; then
  echo "FAIL: recover --dry-run with leftovers should exit 4, got $rc"
  failures=$((failures + 1))
fi
if [ ! -d "$DIR/db/.staging-43" ]; then
  echo "FAIL: recover --dry-run removed the staging dir"
  failures=$((failures + 1))
fi
"$CLI" recover "$DIR/db" > /dev/null
if [ -d "$DIR/db/.staging-43" ]; then
  echo "FAIL: real recover after dry run left the staging dir behind"
  failures=$((failures + 1))
fi

# Durability quickstart: an acknowledged event survives kill -9 — no drain,
# no checkpoint — because the ack only happens after the journal fsync.
FIFO="$DIR/serve.in"
mkfifo "$FIFO"
# Launched from a subshell so the parent is not its job-controller and bash
# never prints a "Killed" notice into the test output.
( "$CLI" serve "$DIR/db" < "$FIFO" > "$DIR/kill.out" 2> /dev/null &
  echo $! > "$DIR/serve.pid" )
SERVE_PID="$(cat "$DIR/serve.pid")"
exec 4> "$FIFO"
printf 'event add 12 100\n' >&4
acked=0
for _ in $(seq 1 100); do
  if grep -q '^1 ok' "$DIR/kill.out"; then acked=1; break; fi
  sleep 0.1
done
if [ "$acked" -ne 1 ]; then
  echo "FAIL: serve never acknowledged the event before kill -9"
  failures=$((failures + 1))
fi
kill -9 "$SERVE_PID" 2> /dev/null
while kill -0 "$SERVE_PID" 2> /dev/null; do sleep 0.05; done
exec 4>&-
rm -f "$FIFO"
"$CLI" recover "$DIR/db" > "$DIR/recover2.out"
rc=$?
check "recover replays the journal tail" "replayed" < "$DIR/recover2.out"
if [ "$rc" -ne 4 ]; then
  echo "FAIL: recover after kill -9 should exit 4, got $rc"
  failures=$((failures + 1))
fi
"$CLI" report "$DIR/db" | check "journaled event survived kill -9" "P(W)=0.8000"

# A final checkpoint that cannot commit: the session still serves and
# drains, the drain ack carries the failure, the process exits 5 — and the
# acknowledged event is still recoverable from the journal afterwards.
mkdir "$DIR/db/CURRENT.tmp"   # save's CURRENT staging write now fails
printf 'event add 13 100\ndrain\n' \
  | "$CLI" serve "$DIR/db" > "$DIR/exit5.out" 2> "$DIR/exit5.err"
rc=$?
if [ "$rc" -ne 5 ]; then
  echo "FAIL: serve with a failing final checkpoint should exit 5, got $rc"
  failures=$((failures + 1))
fi
check "event is acked despite doomed checkpoint" "1 ok" < "$DIR/exit5.out"
check "drain ack names the failed checkpoint" "drained=1 final_checkpoint=" < "$DIR/exit5.out"
if grep -qF "final_checkpoint=ok" "$DIR/exit5.out"; then
  echo "FAIL: drain ack claimed final_checkpoint=ok despite the fault"
  failures=$((failures + 1))
fi
check "stderr explains the exit code" "final checkpoint failed" < "$DIR/exit5.err"
rmdir "$DIR/db/CURRENT.tmp"
"$CLI" recover "$DIR/db" > "$DIR/recover3.out"
rc=$?
check "recover replays the stranded ack" "replayed" < "$DIR/recover3.out"
if [ "$rc" -ne 4 ]; then
  echo "FAIL: recover after the failed checkpoint should exit 4, got $rc"
  failures=$((failures + 1))
fi
"$CLI" report "$DIR/db" | check "stranded event re-committed" "P(W)=0.8333"

if [ "$failures" -ne 0 ]; then
  echo "$failures CLI end-to-end check(s) failed"
  exit 1
fi
echo "all CLI end-to-end checks passed"

#include "audit/dp_release.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/macros.h"
#include "tests/test_util.h"

namespace ppdb::audit {
namespace {

using rel::AggOp;
using rel::AggSpec;
using rel::DataType;
using rel::ResultSet;
using rel::Row;
using rel::Schema;
using rel::Value;

ResultSet MakeNumbers(int n) {
  Schema schema = Schema::Create({{"x", DataType::kDouble, ""}}).value();
  ResultSet rs{std::move(schema), {}};
  for (int i = 1; i <= n; ++i) {
    rs.rows.push_back(Row{i, {Value::Double(static_cast<double>(i))}});
  }
  return rs;
}

TEST(LaplaceTest, ZeroCenteredWithCorrectSpread) {
  Rng rng(17);
  const int n = 200000;
  double sum = 0, abs_sum = 0;
  for (int i = 0; i < n; ++i) {
    double v = rng.NextLaplace(2.0);
    sum += v;
    abs_sum += std::fabs(v);
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  // E|X| = b for Laplace(0, b).
  EXPECT_NEAR(abs_sum / n, 2.0, 0.05);
}

TEST(DpReleaseTest, NoiseScaleIsSensitivityOverEpsilon) {
  ResultSet rs = MakeNumbers(100);
  Rng rng(5);
  DpReleaseOptions options;
  options.epsilon = 0.5;
  options.sensitivity = 2.0;
  ASSERT_OK_AND_ASSIGN(
      auto released,
      ReleaseAggregates(rs, {{AggOp::kCount, "", "n"}}, options, rng));
  ASSERT_EQ(released.size(), 1u);
  EXPECT_DOUBLE_EQ(released[0].noise_scale, 4.0);
  EXPECT_DOUBLE_EQ(released[0].true_value, 100.0);
  EXPECT_NE(released[0].released_value, released[0].true_value);
}

TEST(DpReleaseTest, NoiseConcentratesWithLargeEpsilon) {
  ResultSet rs = MakeNumbers(1000);
  DpReleaseOptions loose;
  loose.epsilon = 100.0;
  double max_err = 0;
  for (uint64_t seed = 0; seed < 50; ++seed) {
    Rng rng(seed);
    ASSERT_OK_AND_ASSIGN(
        auto released,
        ReleaseAggregates(rs, {{AggOp::kCount, "", "n"}}, loose, rng));
    max_err = std::max(max_err, std::fabs(released[0].released_value -
                                          released[0].true_value));
  }
  // scale = 0.01; 50 draws stay well under 1.
  EXPECT_LT(max_err, 1.0);
}

TEST(DpReleaseTest, SumSupported) {
  ResultSet rs = MakeNumbers(10);  // Sum = 55.
  Rng rng(7);
  ASSERT_OK_AND_ASSIGN(
      auto released,
      ReleaseAggregates(rs, {{AggOp::kSum, "x", "total"}},
                        DpReleaseOptions{1.0, 10.0}, rng));
  EXPECT_DOUBLE_EQ(released[0].true_value, 55.0);
}

TEST(DpReleaseTest, RejectsUnboundedAggregates) {
  ResultSet rs = MakeNumbers(5);
  Rng rng(1);
  EXPECT_TRUE(ReleaseAggregates(rs, {{AggOp::kAvg, "x", "m"}},
                                DpReleaseOptions{}, rng)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(ReleaseAggregates(rs, {{AggOp::kMax, "x", "m"}},
                                DpReleaseOptions{}, rng)
                  .status()
                  .IsInvalidArgument());
}

TEST(DpReleaseTest, RejectsBadBudget) {
  ResultSet rs = MakeNumbers(5);
  Rng rng(1);
  EXPECT_TRUE(ReleaseAggregates(rs, {{AggOp::kCount, "", "n"}},
                                DpReleaseOptions{0.0, 1.0}, rng)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(ReleaseAggregates(rs, {{AggOp::kCount, "", "n"}},
                                DpReleaseOptions{1.0, -1.0}, rng)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(ReleaseAggregates(rs, {}, DpReleaseOptions{}, rng)
                  .status()
                  .IsInvalidArgument());
}

TEST(DpReleaseTest, DeterministicInSeed) {
  ResultSet rs = MakeNumbers(20);
  Rng a(9), b(9);
  ASSERT_OK_AND_ASSIGN(auto ra,
                       ReleaseAggregates(rs, {{AggOp::kCount, "", "n"}},
                                         DpReleaseOptions{}, a));
  ASSERT_OK_AND_ASSIGN(auto rb,
                       ReleaseAggregates(rs, {{AggOp::kCount, "", "n"}},
                                         DpReleaseOptions{}, b));
  EXPECT_DOUBLE_EQ(ra[0].released_value, rb[0].released_value);
}

}  // namespace
}  // namespace ppdb::audit

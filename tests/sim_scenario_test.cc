#include "sim/scenario.h"

#include <gtest/gtest.h>

#include <optional>

#include "tests/test_util.h"

namespace ppdb::sim {
namespace {

using violation::ExpansionStep;
using violation::WhatIfAnalyzer;

class ScenarioTest : public ::testing::Test {
 protected:
  void SetUp() override {
    PopulationConfig config;
    config.num_providers = 300;
    config.attributes = {{"weight", 4.0, 75.0, 12.0}};
    config.purposes = {"service"};
    config.seed = 2024;
    ASSERT_OK_AND_ASSIGN(Population generated,
                         PopulationGenerator(config).Generate());
    population_.emplace(std::move(generated));
    ASSERT_OK_AND_ASSIGN(
        population_->config.policy,
        MakeUniformPolicy(config.attributes, config.purposes, 0.0, 0.0, 0.0,
                          &population_->config));
  }

  std::optional<Population> population_;
};

TEST_F(ScenarioTest, ExpansionCurveShapes) {
  ScenarioRunner runner(&*population_);
  auto schedule = WhatIfAnalyzer::UniformSchedule(
      privacy::Dimension::kGranularity, 3);
  ASSERT_OK_AND_ASSIGN(auto points, runner.RunExpansion(schedule, 1.0, 0.2));
  ASSERT_EQ(points.size(), 4u);
  // Monotone pressure on the population.
  for (size_t k = 1; k < points.size(); ++k) {
    EXPECT_GE(points[k].p_default, points[k - 1].p_default);
  }
}

TEST_F(ScenarioTest, DefaultOnsetsAccountForEveryProvider) {
  ScenarioRunner runner(&*population_);
  std::vector<ExpansionStep> schedule;
  for (privacy::Dimension dim : privacy::kOrderedDimensions) {
    for (int i = 0; i < 4; ++i) schedule.push_back(ExpansionStep{dim, 1, {}});
  }
  ASSERT_OK_AND_ASSIGN(DefaultOnsetResult onsets,
                       runner.DefaultOnsets(schedule));
  EXPECT_EQ(onsets.num_providers, 300);
  EXPECT_EQ(onsets.onset_steps.count() + onsets.never_defaulted, 300);
  int64_t by_segment = onsets.defaulted_by_segment[0] +
                       onsets.defaulted_by_segment[1] +
                       onsets.defaulted_by_segment[2];
  EXPECT_EQ(by_segment, onsets.onset_steps.count());
}

TEST_F(ScenarioTest, OnsetCdfIsMonotone) {
  ScenarioRunner runner(&*population_);
  auto schedule = WhatIfAnalyzer::UniformSchedule(
      privacy::Dimension::kGranularity, 3);
  ASSERT_OK_AND_ASSIGN(DefaultOnsetResult onsets,
                       runner.DefaultOnsets(schedule));
  double prev = -1;
  for (int k = 0; k <= 3; ++k) {
    double f = onsets.FractionDefaultedBy(k);
    EXPECT_GE(f, prev);
    EXPECT_LE(f, 1.0);
    prev = f;
  }
}

TEST_F(ScenarioTest, FundamentalistsDefaultEarlierOnAverage) {
  ScenarioRunner runner(&*population_);
  std::vector<ExpansionStep> schedule;
  for (privacy::Dimension dim : privacy::kOrderedDimensions) {
    for (int i = 0; i < 4; ++i) schedule.push_back(ExpansionStep{dim, 1, {}});
  }
  ASSERT_OK_AND_ASSIGN(DefaultOnsetResult onsets,
                       runner.DefaultOnsets(schedule));
  const auto& fund = onsets.onset_by_segment[static_cast<size_t>(
      WestinSegment::kFundamentalist)];
  const auto& unconcerned = onsets.onset_by_segment[static_cast<size_t>(
      WestinSegment::kUnconcerned)];
  ASSERT_GT(fund.count(), 0);
  if (unconcerned.count() > 0) {
    ASSERT_OK_AND_ASSIGN(double fund_median, fund.Median());
    ASSERT_OK_AND_ASSIGN(double unc_median, unconcerned.Median());
    EXPECT_LE(fund_median, unc_median);
  }
  // More fundamentalists default than unconcerned (relative to segment
  // sizes this would need normalizing, but in absolute terms the pressure
  // ordering should already show at this mix).
  EXPECT_GT(onsets.defaulted_by_segment[0], 0);
}

TEST_F(ScenarioTest, CalibratedThresholdsHaveNoBaselineDefaults) {
  // Start from a mid-range (violating) policy.
  ASSERT_OK_AND_ASSIGN(
      population_->config.policy,
      MakeUniformPolicy({{"weight", 4.0, 75.0, 12.0}}, {"service"}, 0.6, 0.6,
                        0.6, &population_->config));
  ASSERT_OK(CalibrateThresholdsToPolicy(&*population_, 1.0, 0.5, 3));
  ScenarioRunner runner(&*population_);
  ASSERT_OK_AND_ASSIGN(DefaultOnsetResult baseline, runner.DefaultOnsets({}));
  EXPECT_EQ(baseline.onset_steps.count(), 0);
  EXPECT_EQ(baseline.never_defaulted, 300);
  // Widening still produces defaults eventually.
  ASSERT_OK_AND_ASSIGN(
      DefaultOnsetResult widened,
      runner.DefaultOnsets(WhatIfAnalyzer::UniformSchedule(
          privacy::Dimension::kGranularity, 3)));
  EXPECT_GT(widened.onset_steps.count(), 0);
}

TEST_F(ScenarioTest, EmptyScheduleOnlyBaseline) {
  ScenarioRunner runner(&*population_);
  ASSERT_OK_AND_ASSIGN(DefaultOnsetResult onsets, runner.DefaultOnsets({}));
  // Zero-wide policy at baseline: nobody defaults.
  EXPECT_EQ(onsets.onset_steps.count(), 0);
  EXPECT_EQ(onsets.never_defaulted, 300);
}

}  // namespace
}  // namespace ppdb::sim

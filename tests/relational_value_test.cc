#include "relational/value.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace ppdb::rel {
namespace {

TEST(DataTypeTest, NamesRoundTrip) {
  for (DataType t : {DataType::kNull, DataType::kBool, DataType::kInt64,
                     DataType::kDouble, DataType::kString}) {
    ASSERT_OK_AND_ASSIGN(DataType parsed,
                         DataTypeFromName(DataTypeName(t)));
    EXPECT_EQ(parsed, t);
  }
}

TEST(DataTypeTest, Aliases) {
  ASSERT_OK_AND_ASSIGN(DataType i, DataTypeFromName("int"));
  EXPECT_EQ(i, DataType::kInt64);
  ASSERT_OK_AND_ASSIGN(DataType f, DataTypeFromName("float"));
  EXPECT_EQ(f, DataType::kDouble);
  ASSERT_OK_AND_ASSIGN(DataType s, DataTypeFromName("text"));
  EXPECT_EQ(s, DataType::kString);
}

TEST(DataTypeTest, UnknownNameErrors) {
  EXPECT_TRUE(DataTypeFromName("varchar").status().IsParseError());
}

TEST(ValueTest, DefaultIsNull) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.type(), DataType::kNull);
  EXPECT_EQ(v.ToString(), "NULL");
}

TEST(ValueTest, TypedConstructionAndAccess) {
  ASSERT_OK_AND_ASSIGN(bool b, Value::Bool(true).AsBool());
  EXPECT_TRUE(b);
  ASSERT_OK_AND_ASSIGN(int64_t i, Value::Int64(-9).AsInt64());
  EXPECT_EQ(i, -9);
  ASSERT_OK_AND_ASSIGN(double d, Value::Double(2.5).AsDouble());
  EXPECT_DOUBLE_EQ(d, 2.5);
  ASSERT_OK_AND_ASSIGN(std::string s, Value::String("hi").AsString());
  EXPECT_EQ(s, "hi");
}

TEST(ValueTest, WrongTypeAccessErrors) {
  EXPECT_TRUE(Value::Int64(1).AsBool().status().IsFailedPrecondition());
  EXPECT_TRUE(Value::String("x").AsInt64().status().IsFailedPrecondition());
  EXPECT_TRUE(Value::Null().AsDouble().status().IsFailedPrecondition());
}

TEST(ValueTest, AsNumericWidensInt) {
  ASSERT_OK_AND_ASSIGN(double d, Value::Int64(7).AsNumeric());
  EXPECT_DOUBLE_EQ(d, 7.0);
  EXPECT_TRUE(Value::String("7").AsNumeric().status().IsFailedPrecondition());
  EXPECT_TRUE(Value::Bool(true).AsNumeric().status().IsFailedPrecondition());
}

TEST(ValueTest, ToStringRenderings) {
  EXPECT_EQ(Value::Bool(false).ToString(), "false");
  EXPECT_EQ(Value::Int64(42).ToString(), "42");
  EXPECT_EQ(Value::Double(2.5).ToString(), "2.5");
  EXPECT_EQ(Value::String("abc").ToString(), "abc");
}

TEST(ValueTest, ParseByType) {
  ASSERT_OK_AND_ASSIGN(Value b, Value::Parse("true", DataType::kBool));
  EXPECT_EQ(b, Value::Bool(true));
  ASSERT_OK_AND_ASSIGN(Value b0, Value::Parse("0", DataType::kBool));
  EXPECT_EQ(b0, Value::Bool(false));
  ASSERT_OK_AND_ASSIGN(Value i, Value::Parse("-5", DataType::kInt64));
  EXPECT_EQ(i, Value::Int64(-5));
  ASSERT_OK_AND_ASSIGN(Value d, Value::Parse("1.5", DataType::kDouble));
  EXPECT_EQ(d, Value::Double(1.5));
  ASSERT_OK_AND_ASSIGN(Value s, Value::Parse("text", DataType::kString));
  EXPECT_EQ(s, Value::String("text"));
}

TEST(ValueTest, ParseEmptyIsNull) {
  for (DataType t : {DataType::kBool, DataType::kInt64, DataType::kDouble,
                     DataType::kString}) {
    ASSERT_OK_AND_ASSIGN(Value v, Value::Parse("", t));
    EXPECT_TRUE(v.is_null());
  }
}

TEST(ValueTest, ParseErrors) {
  EXPECT_TRUE(Value::Parse("maybe", DataType::kBool).status().IsParseError());
  EXPECT_TRUE(Value::Parse("1.5", DataType::kInt64).status().IsParseError());
  EXPECT_TRUE(Value::Parse("abc", DataType::kDouble).status().IsParseError());
}

TEST(ValueTest, EqualityIsStructural) {
  EXPECT_EQ(Value::Int64(3), Value::Int64(3));
  EXPECT_NE(Value::Int64(3), Value::Int64(4));
  EXPECT_EQ(Value::Null(), Value::Null());
  // Same numeric value, different type: not structurally equal.
  EXPECT_NE(Value::Int64(3), Value::Double(3.0));
}

TEST(ValueCompareTest, NullSortsFirst) {
  ASSERT_OK_AND_ASSIGN(int c, Value::Null().Compare(Value::Int64(0)));
  EXPECT_LT(c, 0);
  ASSERT_OK_AND_ASSIGN(int c2, Value::Int64(0).Compare(Value::Null()));
  EXPECT_GT(c2, 0);
  ASSERT_OK_AND_ASSIGN(int c3, Value::Null().Compare(Value::Null()));
  EXPECT_EQ(c3, 0);
}

TEST(ValueCompareTest, NumericCrossTypeComparison) {
  ASSERT_OK_AND_ASSIGN(int c, Value::Int64(3).Compare(Value::Double(3.5)));
  EXPECT_LT(c, 0);
  ASSERT_OK_AND_ASSIGN(int c2, Value::Double(4.0).Compare(Value::Int64(4)));
  EXPECT_EQ(c2, 0);
}

TEST(ValueCompareTest, StringsLexicographic) {
  ASSERT_OK_AND_ASSIGN(int c, Value::String("abc").Compare(Value::String("abd")));
  EXPECT_LT(c, 0);
}

TEST(ValueCompareTest, BoolOrder) {
  ASSERT_OK_AND_ASSIGN(int c, Value::Bool(false).Compare(Value::Bool(true)));
  EXPECT_LT(c, 0);
}

TEST(ValueCompareTest, MixedNonNumericTypesIncomparable) {
  EXPECT_TRUE(Value::String("1")
                  .Compare(Value::Int64(1))
                  .status()
                  .IsIncomparable());
  EXPECT_TRUE(
      Value::Bool(true).Compare(Value::Double(1.0)).status().IsIncomparable());
}

}  // namespace
}  // namespace ppdb::rel

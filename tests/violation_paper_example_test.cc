// Reproduces the paper's Section 8 worked example (Table 1, Eqs. 19-24)
// end to end: Alice, Ted and Bob's conflicts, defaults, and P(Default).
#include <gtest/gtest.h>

#include "privacy/config.h"
#include "tests/test_util.h"
#include "violation/default_model.h"
#include "violation/detector.h"
#include "violation/probability.h"

namespace ppdb::violation {
namespace {

using privacy::DimensionSensitivity;
using privacy::OrderedScale;
using privacy::PrivacyTuple;
using privacy::PurposeId;

constexpr privacy::ProviderId kAlice = 1;
constexpr privacy::ProviderId kTed = 2;
constexpr privacy::ProviderId kBob = 3;

// The paper leaves the house tuple symbolic: HP^Weight = <Weight, pr, v, g,
// r> with preferences at offsets (v+2, g+1, r+3) etc. We instantiate
// v = 1, g = 2, r = 2 on 8-level scales so every offset stays on-scale.
class PaperExampleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    std::vector<std::string> levels;
    for (int i = 0; i < 8; ++i) levels.push_back("l" + std::to_string(i));
    config_.scales.visibility =
        OrderedScale::Create(privacy::Dimension::kVisibility, levels).value();
    config_.scales.granularity =
        OrderedScale::Create(privacy::Dimension::kGranularity, levels)
            .value();
    config_.scales.retention =
        OrderedScale::Create(privacy::Dimension::kRetention, levels).value();

    pr_ = config_.purposes.Register("pr").value();

    // House policy: Age never violates (all-zero tuple); Weight at
    // (v, g, r) = (1, 2, 2).
    ASSERT_OK(config_.policy.Add("Age", PrivacyTuple::ZeroFor(pr_)));
    ASSERT_OK(config_.policy.Add("Weight", PrivacyTuple{pr_, kV, kG, kR}));

    // Sigma^Weight = 4.
    ASSERT_OK(config_.sensitivities.SetAttributeSensitivity("Weight", 4.0));

    // Table 1. Alice: <Weight, pr, v+2, g+1, r+3>, sigma = <1,1,2,1>,
    // v_Alice = 10.
    ASSERT_OK(config_.preferences.ForProvider(kAlice).Add(
        "Weight", PrivacyTuple{pr_, kV + 2, kG + 1, kR + 3}));
    ASSERT_OK(config_.sensitivities.SetProviderSensitivity(
        kAlice, "Weight", DimensionSensitivity{1, 1, 2, 1}));
    config_.thresholds[kAlice] = 10;

    // Ted: <Weight, pr, v+2, g-1, r+2>, sigma = <3,1,5,2>, v_Ted = 50.
    ASSERT_OK(config_.preferences.ForProvider(kTed).Add(
        "Weight", PrivacyTuple{pr_, kV + 2, kG - 1, kR + 2}));
    ASSERT_OK(config_.sensitivities.SetProviderSensitivity(
        kTed, "Weight", DimensionSensitivity{3, 1, 5, 2}));
    config_.thresholds[kTed] = 50;

    // Bob: <Weight, pr, v, g-1, r-1>, sigma = <4,1,3,2>, v_Bob = 100.
    ASSERT_OK(config_.preferences.ForProvider(kBob).Add(
        "Weight", PrivacyTuple{pr_, kV, kG - 1, kR - 1}));
    ASSERT_OK(config_.sensitivities.SetProviderSensitivity(
        kBob, "Weight", DimensionSensitivity{4, 1, 3, 2}));
    config_.thresholds[kBob] = 100;

    // Everyone also states an Age preference that the zero policy cannot
    // violate ("the house's privacy tuple on Age does not violate anyone's
    // preferences").
    for (privacy::ProviderId who : {kAlice, kTed, kBob}) {
      ASSERT_OK(config_.preferences.ForProvider(who).Add(
          "Age", PrivacyTuple{pr_, 1, 1, 1}));
    }
  }

  static constexpr int kV = 1, kG = 2, kR = 2;
  privacy::PrivacyConfig config_;
  PurposeId pr_;
};

TEST_F(PaperExampleTest, Eq20ConflictValues) {
  ViolationDetector detector(&config_);
  ASSERT_OK_AND_ASSIGN(ViolationReport report, detector.Analyze());
  ASSERT_EQ(report.num_providers(), 3);

  // conf(Alice) = 0.
  const ProviderViolation* alice = report.Find(kAlice);
  ASSERT_NE(alice, nullptr);
  EXPECT_DOUBLE_EQ(alice->total_severity, 0.0);

  // conf(Ted) = 1 * 4 * 3 * 5 = 60.
  const ProviderViolation* ted = report.Find(kTed);
  ASSERT_NE(ted, nullptr);
  EXPECT_DOUBLE_EQ(ted->total_severity, 60.0);

  // conf(Bob) = 1*4*4*3 + 1*4*4*2 = 80.
  const ProviderViolation* bob = report.Find(kBob);
  ASSERT_NE(bob, nullptr);
  EXPECT_DOUBLE_EQ(bob->total_severity, 80.0);

  // Violations (Eq. 16) = 0 + 60 + 80.
  EXPECT_DOUBLE_EQ(report.total_severity, 140.0);
}

TEST_F(PaperExampleTest, Table1ViolationFlags) {
  ViolationDetector detector(&config_);
  ASSERT_OK_AND_ASSIGN(ViolationReport report, detector.Analyze());
  // w_Alice = 0, w_Ted = 1, w_Bob = 1.
  EXPECT_FALSE(report.Find(kAlice)->violated);
  EXPECT_TRUE(report.Find(kTed)->violated);
  EXPECT_TRUE(report.Find(kBob)->violated);
  EXPECT_EQ(report.num_violated, 2);
  EXPECT_DOUBLE_EQ(report.ProbabilityOfViolation(), 2.0 / 3.0);
}

TEST_F(PaperExampleTest, ViolatedDimensionsMatchProse) {
  ViolationDetector detector(&config_);
  ASSERT_OK_AND_ASSIGN(ViolationReport report, detector.Analyze());

  // "privacy of Ted is violated on attribute Weight along granularity".
  const ProviderViolation* ted = report.Find(kTed);
  ASSERT_EQ(ted->incidents.size(), 1u);
  EXPECT_EQ(ted->incidents[0].attribute, "Weight");
  EXPECT_EQ(ted->incidents[0].dimension, privacy::Dimension::kGranularity);
  EXPECT_EQ(ted->incidents[0].diff, 1);

  // "privacy of Bob is violated ... along both granularity and retention".
  const ProviderViolation* bob = report.Find(kBob);
  ASSERT_EQ(bob->incidents.size(), 2u);
  EXPECT_EQ(bob->incidents[0].dimension, privacy::Dimension::kGranularity);
  EXPECT_EQ(bob->incidents[1].dimension, privacy::Dimension::kRetention);
  EXPECT_EQ(bob->num_attributes_violated, 1);
}

TEST_F(PaperExampleTest, Eq21To23Defaults) {
  ViolationDetector detector(&config_);
  ASSERT_OK_AND_ASSIGN(ViolationReport report, detector.Analyze());
  DefaultReport defaults = ComputeDefaults(report, config_);

  // Violation_Alice = 0 < 10 => default 0.
  // Violation_Ted = 60 > 50 => default 1.
  // Violation_Bob = 80 < 100 => default 0.
  ASSERT_EQ(defaults.providers.size(), 3u);
  EXPECT_FALSE(defaults.providers[0].defaulted);
  EXPECT_TRUE(defaults.providers[1].defaulted);
  EXPECT_FALSE(defaults.providers[2].defaulted);
  EXPECT_EQ(defaults.DefaultedProviders(),
            (std::vector<privacy::ProviderId>{kTed}));
}

TEST_F(PaperExampleTest, Eq24ProbabilityOfDefault) {
  ViolationDetector detector(&config_);
  ASSERT_OK_AND_ASSIGN(ViolationReport report, detector.Analyze());
  DefaultReport defaults = ComputeDefaults(report, config_);
  // P(Default) = (0 + 1 + 0) / 3 = 1/3.
  EXPECT_DOUBLE_EQ(defaults.ProbabilityOfDefault(), 1.0 / 3.0);
}

TEST_F(PaperExampleTest, TrialEstimateConvergesToCensus) {
  ViolationDetector detector(&config_);
  ASSERT_OK_AND_ASSIGN(ViolationReport report, detector.Analyze());
  DefaultReport defaults = ComputeDefaults(report, config_);
  Rng rng(1234);
  ASSERT_OK_AND_ASSIGN(TrialEstimate estimate,
                       EstimateDefaultProbability(defaults, 200000, rng));
  EXPECT_DOUBLE_EQ(estimate.census, 1.0 / 3.0);
  EXPECT_NEAR(estimate.estimate, 1.0 / 3.0, 0.01);
  EXPECT_TRUE(estimate.ci95.Contains(1.0 / 3.0));
}

TEST_F(PaperExampleTest, BobsGreaterViolationDoesNotForceDefault) {
  // The paper's closing observation: Bob is violated on two dimensions yet
  // stays, while Ted, violated on one, leaves — thresholds and
  // sensitivities, not dimension counts, decide default.
  ViolationDetector detector(&config_);
  ASSERT_OK_AND_ASSIGN(ViolationReport report, detector.Analyze());
  const ProviderViolation* ted = report.Find(kTed);
  const ProviderViolation* bob = report.Find(kBob);
  EXPECT_GT(bob->incidents.size(), ted->incidents.size());
  EXPECT_GT(bob->total_severity, ted->total_severity);
  DefaultReport defaults = ComputeDefaults(report, config_);
  EXPECT_TRUE(defaults.providers[1].defaulted);   // Ted.
  EXPECT_FALSE(defaults.providers[2].defaulted);  // Bob.
}

}  // namespace
}  // namespace ppdb::violation

#include "sim/population.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"
#include "violation/default_model.h"
#include "violation/detector.h"

namespace ppdb::sim {
namespace {

PopulationConfig SmallConfig() {
  PopulationConfig config;
  config.num_providers = 200;
  config.attributes = {{"age", 2.0, 45.0, 15.0}, {"weight", 4.0, 75.0, 12.0}};
  config.purposes = {"service", "marketing"};
  config.seed = 99;
  return config;
}

TEST(WestinTest, SegmentNames) {
  EXPECT_EQ(WestinSegmentName(WestinSegment::kFundamentalist),
            "fundamentalist");
  EXPECT_EQ(WestinSegmentName(WestinSegment::kPragmatist), "pragmatist");
  EXPECT_EQ(WestinSegmentName(WestinSegment::kUnconcerned), "unconcerned");
}

TEST(WestinTest, DefaultProfilesAreOrdered) {
  SegmentProfile f = DefaultProfile(WestinSegment::kFundamentalist);
  SegmentProfile p = DefaultProfile(WestinSegment::kPragmatist);
  SegmentProfile u = DefaultProfile(WestinSegment::kUnconcerned);
  // Fundamentalists share least and tolerate least.
  EXPECT_LT(f.mean_level_fraction, p.mean_level_fraction);
  EXPECT_LT(p.mean_level_fraction, u.mean_level_fraction);
  EXPECT_LT(f.threshold_mu, p.threshold_mu);
  EXPECT_LT(p.threshold_mu, u.threshold_mu);
  EXPECT_GT(f.sensitivity_mu, p.sensitivity_mu);
  EXPECT_GT(p.sensitivity_mu, u.sensitivity_mu);
}

TEST(PopulationGeneratorTest, GeneratesRequestedShape) {
  ASSERT_OK_AND_ASSIGN(Population pop,
                       PopulationGenerator(SmallConfig()).Generate());
  EXPECT_EQ(pop.num_providers(), 200);
  EXPECT_EQ(pop.data.num_rows(), 200);
  EXPECT_EQ(pop.data.schema().num_attributes(), 2);
  EXPECT_EQ(pop.config.preferences.num_providers(), 200);
  EXPECT_EQ(pop.config.thresholds.size(), 200u);
  EXPECT_TRUE(pop.config.policy.empty());
  ASSERT_OK_AND_ASSIGN(WestinSegment s, pop.SegmentOf(1));
  (void)s;
  EXPECT_TRUE(pop.SegmentOf(0).status().IsOutOfRange());
  EXPECT_TRUE(pop.SegmentOf(201).status().IsOutOfRange());
}

TEST(PopulationGeneratorTest, DeterministicInSeed) {
  ASSERT_OK_AND_ASSIGN(Population a,
                       PopulationGenerator(SmallConfig()).Generate());
  ASSERT_OK_AND_ASSIGN(Population b,
                       PopulationGenerator(SmallConfig()).Generate());
  EXPECT_EQ(a.segments, b.segments);
  EXPECT_DOUBLE_EQ(a.config.ThresholdFor(7), b.config.ThresholdFor(7));
  ASSERT_OK_AND_ASSIGN(rel::Value va, a.data.GetCell(5, "weight"));
  ASSERT_OK_AND_ASSIGN(rel::Value vb, b.data.GetCell(5, "weight"));
  EXPECT_EQ(va, vb);

  PopulationConfig other = SmallConfig();
  other.seed = 100;
  ASSERT_OK_AND_ASSIGN(Population c, PopulationGenerator(other).Generate());
  EXPECT_NE(a.segments, c.segments);
}

TEST(PopulationGeneratorTest, SegmentMixApproximatelyRespected) {
  PopulationConfig config = SmallConfig();
  config.num_providers = 5000;
  ASSERT_OK_AND_ASSIGN(Population pop,
                       PopulationGenerator(config).Generate());
  std::array<int, 3> counts = {0, 0, 0};
  for (WestinSegment s : pop.segments) ++counts[static_cast<size_t>(s)];
  EXPECT_NEAR(counts[0] / 5000.0, 0.25, 0.03);
  EXPECT_NEAR(counts[1] / 5000.0, 0.57, 0.03);
  EXPECT_NEAR(counts[2] / 5000.0, 0.18, 0.03);
}

TEST(PopulationGeneratorTest, PreferencesOnScaleAndValidated) {
  ASSERT_OK_AND_ASSIGN(Population pop,
                       PopulationGenerator(SmallConfig()).Generate());
  EXPECT_OK(pop.config.Validate());
}

TEST(PopulationGeneratorTest, FundamentalistsTighterThanUnconcerned) {
  PopulationConfig config = SmallConfig();
  config.num_providers = 3000;
  ASSERT_OK_AND_ASSIGN(Population pop,
                       PopulationGenerator(config).Generate());
  double fund_sum = 0, unc_sum = 0;
  int64_t fund_n = 0, unc_n = 0;
  for (int64_t i = 1; i <= pop.num_providers(); ++i) {
    const privacy::ProviderPreferences* prefs =
        pop.config.preferences.Find(i).value();
    for (const privacy::PreferenceTuple& pt : prefs->tuples()) {
      double level_sum = pt.tuple.visibility + pt.tuple.granularity +
                         pt.tuple.retention;
      if (pop.segments[i - 1] == WestinSegment::kFundamentalist) {
        fund_sum += level_sum;
        ++fund_n;
      } else if (pop.segments[i - 1] == WestinSegment::kUnconcerned) {
        unc_sum += level_sum;
        ++unc_n;
      }
    }
  }
  ASSERT_GT(fund_n, 0);
  ASSERT_GT(unc_n, 0);
  EXPECT_LT(fund_sum / fund_n, unc_sum / unc_n);
}

TEST(PopulationGeneratorTest, RejectsDegenerateConfigs) {
  PopulationConfig config = SmallConfig();
  config.num_providers = 0;
  EXPECT_TRUE(
      PopulationGenerator(config).Generate().status().IsInvalidArgument());
  config = SmallConfig();
  config.attributes.clear();
  EXPECT_TRUE(
      PopulationGenerator(config).Generate().status().IsInvalidArgument());
  config = SmallConfig();
  config.purposes.clear();
  EXPECT_TRUE(
      PopulationGenerator(config).Generate().status().IsInvalidArgument());
}

TEST(MakeUniformPolicyTest, BuildsOneTuplePerAttributePurpose) {
  ASSERT_OK_AND_ASSIGN(Population pop,
                       PopulationGenerator(SmallConfig()).Generate());
  ASSERT_OK_AND_ASSIGN(
      privacy::HousePolicy policy,
      MakeUniformPolicy(SmallConfig().attributes, SmallConfig().purposes,
                        0.33, 0.67, 0.5, &pop.config));
  EXPECT_EQ(policy.size(), 4);  // 2 attributes x 2 purposes.
  ASSERT_OK_AND_ASSIGN(privacy::PurposeId service,
                       pop.config.purposes.Lookup("service"));
  ASSERT_OK_AND_ASSIGN(privacy::PrivacyTuple t,
                       policy.Find("weight", service));
  EXPECT_EQ(t.visibility, 1);   // round(0.33 * 3)
  EXPECT_EQ(t.granularity, 2);  // round(0.67 * 3)
  EXPECT_EQ(t.retention, 2);    // round(0.5 * 4)
  // Attribute sensitivity installed.
  EXPECT_DOUBLE_EQ(
      pop.config.sensitivities.AttributeSensitivity("weight", service), 4.0);
}

TEST(MakeUniformPolicyTest, FractionsClamped) {
  privacy::PrivacyConfig config;
  ASSERT_OK_AND_ASSIGN(
      privacy::HousePolicy policy,
      MakeUniformPolicy({{"a", 1.0, 0, 1}}, {"p"}, -1.0, 2.0, 1.0, &config));
  ASSERT_OK_AND_ASSIGN(privacy::PurposeId p, config.purposes.Lookup("p"));
  EXPECT_EQ(policy.Find("a", p)->visibility, 0);
  EXPECT_EQ(policy.Find("a", p)->granularity, 3);
  EXPECT_EQ(policy.Find("a", p)->retention, 4);
}

TEST(PopulationEndToEndTest, WideningIncreasesDefaults) {
  PopulationConfig config = SmallConfig();
  config.num_providers = 500;
  ASSERT_OK_AND_ASSIGN(Population pop,
                       PopulationGenerator(config).Generate());
  ASSERT_OK_AND_ASSIGN(
      pop.config.policy,
      MakeUniformPolicy(config.attributes, config.purposes, 0.0, 0.0, 0.0,
                        &pop.config));
  violation::ViolationDetector detector(&pop.config);
  ASSERT_OK_AND_ASSIGN(violation::ViolationReport narrow, detector.Analyze());
  violation::DefaultReport narrow_defaults =
      violation::ComputeDefaults(narrow, pop.config);

  privacy::PrivacyConfig wide = pop.config;
  ASSERT_OK_AND_ASSIGN(
      wide.policy,
      pop.config.policy.Widened(privacy::Dimension::kGranularity, 3,
                                pop.config.scales));
  violation::ViolationDetector wide_detector(&wide);
  ASSERT_OK_AND_ASSIGN(violation::ViolationReport wide_report,
                       wide_detector.Analyze());
  violation::DefaultReport wide_defaults =
      violation::ComputeDefaults(wide_report, wide);

  EXPECT_GT(wide_report.num_violated, narrow.num_violated);
  EXPECT_GE(wide_defaults.num_defaulted, narrow_defaults.num_defaulted);
}

}  // namespace
}  // namespace ppdb::sim

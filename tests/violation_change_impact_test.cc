#include "violation/change_impact.h"

#include <gtest/gtest.h>

#include "common/macros.h"
#include "tests/test_util.h"

namespace ppdb::violation {
namespace {

using privacy::Dimension;
using privacy::PrivacyTuple;
using privacy::PurposeId;

class ChangeImpactTest : public ::testing::Test {
 protected:
  void SetUp() override {
    purpose_ = config_.purposes.Register("ads").value();
    PPDB_CHECK_OK(config_.policy.Add("weight",
                                     PrivacyTuple{purpose_, 1, 1, 1}));
    // Bands: providers 1-3 accept level 0, 4-6 level 1, 7-9 level 2.
    for (int64_t i = 1; i <= 9; ++i) {
      int band = static_cast<int>((i - 1) / 3);
      config_.preferences.ForProvider(i).Set(
          "weight", PrivacyTuple{purpose_, band, band, band});
      config_.thresholds[i] = 2.0;
    }
  }

  privacy::PrivacyConfig config_;
  PurposeId purpose_;
};

TEST_F(ChangeImpactTest, WideningCreatesNewViolationsAndDefaults) {
  ASSERT_OK_AND_ASSIGN(
      privacy::HousePolicy wider,
      config_.policy.Widened(Dimension::kGranularity, 1, config_.scales));
  ASSERT_OK_AND_ASSIGN(ChangeImpact impact,
                       AssessPolicyChange(config_, wider));
  EXPECT_TRUE(impact.diff.Widens());
  EXPECT_GE(impact.p_violation_after, impact.p_violation_before);
  EXPECT_GE(impact.p_default_after, impact.p_default_before);
  // Band 1 (providers 4-6) was clean at (1,1,1); granularity 2 now exceeds
  // their level-1 preference.
  EXPECT_EQ(impact.newly_violated,
            (std::vector<privacy::ProviderId>{4, 5, 6}));
  EXPECT_TRUE(impact.no_longer_violated.empty());
  EXPECT_TRUE(impact.recovered.empty());
}

TEST_F(ChangeImpactTest, NarrowingRecoversProviders) {
  ASSERT_OK_AND_ASSIGN(
      privacy::HousePolicy narrower,
      config_.policy.Widened(Dimension::kGranularity, -1, config_.scales));
  // Narrow visibility and retention too so band 0 is fully cleared.
  ASSERT_OK_AND_ASSIGN(
      narrower, narrower.Widened(Dimension::kVisibility, -1, config_.scales));
  ASSERT_OK_AND_ASSIGN(
      narrower, narrower.Widened(Dimension::kRetention, -1, config_.scales));
  ASSERT_OK_AND_ASSIGN(ChangeImpact impact,
                       AssessPolicyChange(config_, narrower));
  EXPECT_TRUE(impact.diff.PurelyNarrowing());
  // Band 0 (1-3) was violated (severity 3 > 2, defaulted) and is now clean.
  EXPECT_EQ(impact.no_longer_violated,
            (std::vector<privacy::ProviderId>{1, 2, 3}));
  EXPECT_EQ(impact.recovered, (std::vector<privacy::ProviderId>{1, 2, 3}));
  EXPECT_TRUE(impact.newly_violated.empty());
  EXPECT_LT(impact.total_violations_after, impact.total_violations_before);
}

TEST_F(ChangeImpactTest, NoChangeIsNeutral) {
  ASSERT_OK_AND_ASSIGN(ChangeImpact impact,
                       AssessPolicyChange(config_, config_.policy));
  EXPECT_TRUE(impact.diff.Empty());
  EXPECT_DOUBLE_EQ(impact.p_violation_before, impact.p_violation_after);
  EXPECT_TRUE(impact.newly_violated.empty());
  EXPECT_TRUE(impact.newly_defaulted.empty());
}

TEST_F(ChangeImpactTest, AddedPurposeTriggersImplicitZeroViolations) {
  privacy::HousePolicy with_new_use = config_.policy;
  PurposeId resale = config_.purposes.Register("resale").value();
  PPDB_CHECK_OK(with_new_use.Add("weight", PrivacyTuple{resale, 2, 2, 2}));
  ASSERT_OK_AND_ASSIGN(ChangeImpact impact,
                       AssessPolicyChange(config_, with_new_use));
  ASSERT_EQ(impact.diff.added.size(), 1u);
  // Every provider has stated nothing about "resale": the implicit zero
  // tuple makes the new use a violation for everyone. Band 0 (1-3) was
  // already violated; the previously clean bands 1-2 flip.
  EXPECT_EQ(impact.newly_violated,
            (std::vector<privacy::ProviderId>{4, 5, 6, 7, 8, 9}));
  EXPECT_GT(impact.p_default_after, impact.p_default_before);
}

TEST_F(ChangeImpactTest, SummaryMentionsCounts) {
  ASSERT_OK_AND_ASSIGN(
      privacy::HousePolicy wider,
      config_.policy.Widened(Dimension::kGranularity, 1, config_.scales));
  ASSERT_OK_AND_ASSIGN(ChangeImpact impact,
                       AssessPolicyChange(config_, wider));
  std::string summary = impact.Summary();
  EXPECT_NE(summary.find("1 level move(s)"), std::string::npos);
  EXPECT_NE(summary.find("3 provider(s) newly violated"), std::string::npos);
}

}  // namespace
}  // namespace ppdb::violation

// Property-based tests: model invariants checked over randomized
// configurations, parameterized by seed (TEST_P / INSTANTIATE_TEST_SUITE_P).
#include <gtest/gtest.h>

#include <cmath>

#include "common/macros.h"
#include "common/rng.h"
#include "privacy/config.h"
#include "tests/test_util.h"
#include "violation/default_model.h"
#include "violation/detector.h"
#include "violation/probability.h"
#include "violation/utility.h"

namespace ppdb {
namespace {

using privacy::Dimension;
using privacy::DimensionSensitivity;
using privacy::PrivacyConfig;
using privacy::PrivacyTuple;
using privacy::PurposeId;
using violation::ComputeDefaults;
using violation::ViolationDetector;
using violation::ViolationReport;

// Draws a random-but-valid config: a handful of attributes/purposes, a
// random policy, random preferences for a small population, and strictly
// positive sensitivities unless `zero_sensitivities`.
PrivacyConfig RandomConfig(uint64_t seed, bool positive_sensitivities) {
  Rng rng(seed);
  PrivacyConfig config;
  std::vector<std::string> attributes;
  int num_attrs = static_cast<int>(rng.NextInt(1, 3));
  for (int a = 0; a < num_attrs; ++a) {
    attributes.push_back("attr" + std::to_string(a));
  }
  std::vector<PurposeId> purposes;
  int num_purposes = static_cast<int>(rng.NextInt(1, 3));
  for (int p = 0; p < num_purposes; ++p) {
    purposes.push_back(
        config.purposes.Register("purpose" + std::to_string(p)).value());
  }

  auto random_level = [&](const privacy::OrderedScale& scale) {
    return static_cast<int>(rng.NextInt(0, scale.max_level()));
  };
  auto random_tuple = [&](PurposeId purpose) {
    PrivacyTuple t = PrivacyTuple::ZeroFor(purpose);
    t.visibility = random_level(config.scales.visibility);
    t.granularity = random_level(config.scales.granularity);
    t.retention = random_level(config.scales.retention);
    return t;
  };
  auto random_sens = [&]() {
    if (positive_sensitivities) {
      return DimensionSensitivity{0.5 + rng.NextDouble() * 3,
                                  0.5 + rng.NextDouble() * 3,
                                  0.5 + rng.NextDouble() * 3,
                                  0.5 + rng.NextDouble() * 3};
    }
    return DimensionSensitivity{rng.NextDouble() * 2, rng.NextDouble() * 2,
                                rng.NextDouble() * 2, rng.NextDouble() * 2};
  };

  for (const std::string& attr : attributes) {
    PPDB_CHECK_OK(config.sensitivities.SetAttributeSensitivity(
        attr, positive_sensitivities ? 1.0 + rng.NextDouble() * 4
                                     : rng.NextDouble() * 4));
    for (PurposeId purpose : purposes) {
      if (rng.NextBool(0.8)) {
        PPDB_CHECK_OK(config.policy.Add(attr, random_tuple(purpose)));
      }
    }
  }
  int64_t population = rng.NextInt(3, 25);
  for (int64_t i = 1; i <= population; ++i) {
    auto& prefs = config.preferences.ForProvider(i);
    for (const std::string& attr : attributes) {
      PPDB_CHECK_OK(config.sensitivities.SetProviderSensitivity(
          i, attr, random_sens()));
      for (PurposeId purpose : purposes) {
        if (rng.NextBool(0.7)) {
          prefs.Set(attr, random_tuple(purpose));
        }
      }
    }
    config.thresholds[i] = rng.NextDouble() * 40.0;
  }
  return config;
}

class ModelPropertyTest : public ::testing::TestWithParam<uint64_t> {};

// Def. 1 <-> Eq. 15 link: with strictly positive sensitivities,
// w_i = 1 exactly when Violation_i > 0.
TEST_P(ModelPropertyTest, ViolatedIffPositiveSeverityUnderPositiveWeights) {
  PrivacyConfig config = RandomConfig(GetParam(), true);
  ViolationDetector detector(&config);
  ASSERT_OK_AND_ASSIGN(ViolationReport report, detector.Analyze());
  for (const violation::ProviderViolation& pv : report.providers) {
    EXPECT_EQ(pv.violated, pv.total_severity > 0.0)
        << "provider " << pv.provider;
    EXPECT_EQ(pv.violated, !pv.incidents.empty());
    EXPECT_GE(pv.total_severity, 0.0);
  }
}

// Severity decomposition: Violation_i equals the sum of its incidents'
// weighted severities (every non-incident summand of Eq. 14/15 is zero).
TEST_P(ModelPropertyTest, SeverityEqualsSumOfIncidents) {
  PrivacyConfig config = RandomConfig(GetParam() + 1000, false);
  ViolationDetector detector(&config);
  ASSERT_OK_AND_ASSIGN(ViolationReport report, detector.Analyze());
  double total = 0.0;
  for (const violation::ProviderViolation& pv : report.providers) {
    double incidents_sum = 0.0;
    for (const violation::ViolationIncident& incident : pv.incidents) {
      EXPECT_GT(incident.diff, 0);
      EXPECT_EQ(incident.diff,
                incident.policy_level - incident.preference_level);
      incidents_sum += incident.weighted_severity;
    }
    EXPECT_NEAR(pv.total_severity, incidents_sum, 1e-9);
    total += pv.total_severity;
  }
  EXPECT_NEAR(report.total_severity, total, 1e-9);
}

// Monotonicity (the engine behind §9): widening the policy along any
// dimension never decreases P(W), Violations, or defaults.
TEST_P(ModelPropertyTest, WideningIsMonotone) {
  PrivacyConfig config = RandomConfig(GetParam() + 2000, false);
  ViolationDetector detector(&config);
  ASSERT_OK_AND_ASSIGN(ViolationReport before, detector.Analyze());
  violation::DefaultReport defaults_before = ComputeDefaults(before, config);

  for (Dimension dim : privacy::kOrderedDimensions) {
    PrivacyConfig widened = config;
    ASSERT_OK_AND_ASSIGN(widened.policy,
                         config.policy.Widened(dim, 1, config.scales));
    ViolationDetector widened_detector(&widened);
    ASSERT_OK_AND_ASSIGN(ViolationReport after, widened_detector.Analyze());
    violation::DefaultReport defaults_after =
        ComputeDefaults(after, widened);
    EXPECT_GE(after.num_violated, before.num_violated);
    EXPECT_GE(after.total_severity, before.total_severity - 1e-9);
    EXPECT_GE(defaults_after.num_defaulted, defaults_before.num_defaulted);
  }
}

// Linearity in attribute sensitivity: doubling every Sigma^a doubles every
// Violation_i (Eq. 14 is a product).
TEST_P(ModelPropertyTest, SeverityLinearInAttributeSensitivity) {
  PrivacyConfig config = RandomConfig(GetParam() + 3000, true);
  ViolationDetector detector(&config);
  ASSERT_OK_AND_ASSIGN(ViolationReport base, detector.Analyze());

  PrivacyConfig doubled = config;
  for (const auto& [attr, value] :
       config.sensitivities.attribute_defaults()) {
    PPDB_CHECK_OK(
        doubled.sensitivities.SetAttributeSensitivity(attr, value * 2));
  }
  ViolationDetector doubled_detector(&doubled);
  ASSERT_OK_AND_ASSIGN(ViolationReport scaled, doubled_detector.Analyze());
  ASSERT_EQ(base.providers.size(), scaled.providers.size());
  for (size_t i = 0; i < base.providers.size(); ++i) {
    EXPECT_NEAR(scaled.providers[i].total_severity,
                2.0 * base.providers[i].total_severity, 1e-9);
    EXPECT_EQ(scaled.providers[i].violated, base.providers[i].violated);
  }
}

// A maximally tolerant population (preferences at scale top for every
// policy purpose) is never violated; the zero policy violates no one.
TEST_P(ModelPropertyTest, BoundaryPopulations) {
  PrivacyConfig config = RandomConfig(GetParam() + 4000, false);

  // Zero policy.
  PrivacyConfig zero = config;
  zero.policy = privacy::HousePolicy();
  for (const privacy::PolicyTuple& pt : config.policy.tuples()) {
    PPDB_CHECK_OK(
        zero.policy.Add(pt.attribute,
                        PrivacyTuple::ZeroFor(pt.tuple.purpose)));
  }
  ViolationDetector zero_detector(&zero);
  ASSERT_OK_AND_ASSIGN(ViolationReport zero_report, zero_detector.Analyze());
  EXPECT_EQ(zero_report.num_violated, 0);
  EXPECT_DOUBLE_EQ(zero_report.total_severity, 0.0);

  // Maximally tolerant preferences.
  PrivacyConfig tolerant = config;
  for (privacy::ProviderId id : config.preferences.ProviderIds()) {
    auto& prefs = tolerant.preferences.ForProvider(id);
    for (const privacy::PolicyTuple& pt : config.policy.tuples()) {
      PrivacyTuple top = PrivacyTuple::ZeroFor(pt.tuple.purpose);
      top.visibility = tolerant.scales.visibility.max_level();
      top.granularity = tolerant.scales.granularity.max_level();
      top.retention = tolerant.scales.retention.max_level();
      prefs.Set(pt.attribute, top);
    }
  }
  ViolationDetector tolerant_detector(&tolerant);
  ASSERT_OK_AND_ASSIGN(ViolationReport tolerant_report,
                       tolerant_detector.Analyze());
  EXPECT_EQ(tolerant_report.num_violated, 0);
}

// Trial-based estimation (Def. 2): the Wilson 95% interval covers the
// census value in the vast majority of runs.
TEST_P(ModelPropertyTest, EstimatorCiCoversCensus) {
  PrivacyConfig config = RandomConfig(GetParam() + 5000, false);
  ViolationDetector detector(&config);
  ASSERT_OK_AND_ASSIGN(ViolationReport report, detector.Analyze());
  int covered = 0;
  const int runs = 20;
  for (int r = 0; r < runs; ++r) {
    Rng rng(GetParam() * 1000 + static_cast<uint64_t>(r));
    ASSERT_OK_AND_ASSIGN(
        violation::TrialEstimate estimate,
        violation::EstimateViolationProbability(report, 400, rng));
    // Tolerance absorbs float rounding at the degenerate ends (at phat = 1
    // the Wilson upper bound is 1 mathematically but rounds just below).
    if (estimate.census >= estimate.ci95.lo - 1e-9 &&
        estimate.census <= estimate.ci95.hi + 1e-9) {
      ++covered;
    }
  }
  // 95% nominal coverage; demand >= 80% to keep the test robust.
  EXPECT_GE(covered, 16);
}

// Utility algebra: break-even T scales linearly with U (Eq. 31), and the
// justification predicate is monotone in T.
TEST_P(ModelPropertyTest, UtilityAlgebraInvariants) {
  Rng rng(GetParam() + 6000);
  for (int trial = 0; trial < 20; ++trial) {
    double u = 0.5 + rng.NextDouble() * 10;
    int64_t n = rng.NextInt(2, 1000);
    int64_t remaining = rng.NextInt(1, n);
    ASSERT_OK_AND_ASSIGN(auto model1, violation::UtilityModel::Create(u));
    ASSERT_OK_AND_ASSIGN(auto model2,
                         violation::UtilityModel::Create(2 * u));
    ASSERT_OK_AND_ASSIGN(double t1,
                         model1.BreakEvenExtraUtility(n, remaining));
    ASSERT_OK_AND_ASSIGN(double t2,
                         model2.BreakEvenExtraUtility(n, remaining));
    EXPECT_NEAR(t2, 2 * t1, 1e-9 * std::max(1.0, std::fabs(t2)));
    EXPECT_GE(t1, 0.0);
    // Monotone in T.
    EXPECT_TRUE(model1.ExpansionJustified(n, remaining, t1 + 1.0));
    if (t1 > 1e-6) {
      EXPECT_FALSE(model1.ExpansionJustified(n, remaining, t1 * 0.5));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ModelPropertyTest,
                         ::testing::Range<uint64_t>(0, 12));

}  // namespace
}  // namespace ppdb

#include "common/macros.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>

#include "common/result.h"
#include "common/status.h"

namespace ppdb {
namespace {

// PPDB_RETURN_NOT_OK success/early-return basics are covered in
// common_status_test.cc; this file covers the newer helpers and the
// move-only payload paths.

// --- PPDB_RETURN_NOT_OK_PREPEND ----------------------------------------------

Status PassThroughPrepend(const Status& inner) {
  PPDB_RETURN_NOT_OK_PREPEND(inner, "load manifest");
  return Status::OK();
}

TEST(MacrosTest, ReturnNotOkPrependAddsContextOnlyOnFailure) {
  EXPECT_TRUE(PassThroughPrepend(Status::OK()).ok());

  Status status = PassThroughPrepend(Status::Unavailable("disk gone"));
  EXPECT_TRUE(status.IsUnavailable());
  EXPECT_EQ(status.message(), "load manifest: disk gone");
}

// --- PPDB_ASSIGN_OR_RETURN ---------------------------------------------------

Result<std::unique_ptr<std::string>> MakeBoxed(bool succeed) {
  if (!succeed) return Status::InvalidArgument("no box");
  return std::make_unique<std::string>("payload");
}

Status UseBoxed(bool succeed, std::string* out) {
  // The bound value is move-only: the macro must move it out of the
  // Result, not copy.
  PPDB_ASSIGN_OR_RETURN(std::unique_ptr<std::string> boxed,
                        MakeBoxed(succeed));
  if (boxed == nullptr) return Status::Internal("macro bound a null box");
  *out = *boxed;
  return Status::OK();
}

TEST(MacrosTest, AssignOrReturnMovesMoveOnlyPayload) {
  std::string out;
  EXPECT_TRUE(UseBoxed(true, &out).ok());
  EXPECT_EQ(out, "payload");
}

TEST(MacrosTest, AssignOrReturnPropagatesErrorStatus) {
  std::string out = "untouched";
  Status status = UseBoxed(false, &out);
  EXPECT_TRUE(status.IsInvalidArgument());
  EXPECT_EQ(out, "untouched");
}

TEST(MacrosTest, AssignOrReturnExistingVariable) {
  // `lhs` may also be an already-declared variable, not a declaration.
  std::string first;
  std::string second;
  auto both = [&]() -> Status {
    PPDB_ASSIGN_OR_RETURN(std::unique_ptr<std::string> a, MakeBoxed(true));
    PPDB_ASSIGN_OR_RETURN(std::unique_ptr<std::string> b, MakeBoxed(true));
    first = *a;
    second = *b;
    return Status::OK();
  };
  ASSERT_TRUE(both().ok());  // two expansions in one scope must not collide
  EXPECT_EQ(first, "payload");
  EXPECT_EQ(second, "payload");
}

// --- PPDB_IGNORE_ERROR -------------------------------------------------------

TEST(MacrosTest, IgnoreErrorEvaluatesExactlyOnce) {
  int calls = 0;
  auto count_and_fail = [&calls]() -> Status {
    ++calls;
    return Status::Internal("recorded elsewhere");
  };
  PPDB_IGNORE_ERROR(count_and_fail());
  EXPECT_EQ(calls, 1);
}

TEST(MacrosTest, IgnoreErrorAcceptsResult) {
  PPDB_IGNORE_ERROR(MakeBoxed(false));  // must compile despite [[nodiscard]]
}

}  // namespace
}  // namespace ppdb

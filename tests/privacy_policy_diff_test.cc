#include "privacy/policy_diff.h"

#include <gtest/gtest.h>

#include "common/macros.h"
#include "tests/test_util.h"

namespace ppdb::privacy {
namespace {

class PolicyDiffTest : public ::testing::Test {
 protected:
  void SetUp() override {
    marketing_ = purposes_.Register("marketing").value();
    research_ = purposes_.Register("research").value();
    PPDB_CHECK_OK(before_.Add("weight", PrivacyTuple{marketing_, 1, 2, 2}));
    PPDB_CHECK_OK(before_.Add("age", PrivacyTuple{marketing_, 1, 1, 1}));
  }

  PurposeRegistry purposes_;
  ScaleSet scales_;
  PurposeId marketing_, research_;
  HousePolicy before_;
};

TEST_F(PolicyDiffTest, IdenticalPoliciesAreEmptyDiff) {
  PolicyDiff diff = DiffPolicies(before_, before_);
  EXPECT_TRUE(diff.Empty());
  EXPECT_TRUE(diff.PurelyNarrowing());
  EXPECT_FALSE(diff.Widens());
  EXPECT_EQ(diff.ToString(purposes_, scales_), "(no policy changes)\n");
}

TEST_F(PolicyDiffTest, DetectsAddedAndRemovedTuples) {
  HousePolicy after;
  PPDB_CHECK_OK(after.Add("weight", PrivacyTuple{marketing_, 1, 2, 2}));
  PPDB_CHECK_OK(after.Add("weight", PrivacyTuple{research_, 2, 2, 2}));
  // "age for marketing" dropped, "weight for research" added.
  PolicyDiff diff = DiffPolicies(before_, after);
  ASSERT_EQ(diff.added.size(), 1u);
  EXPECT_EQ(diff.added[0].tuple.purpose, research_);
  ASSERT_EQ(diff.removed.size(), 1u);
  EXPECT_EQ(diff.removed[0].attribute, "age");
  EXPECT_TRUE(diff.level_changes.empty());
  EXPECT_TRUE(diff.Widens());
  EXPECT_FALSE(diff.PurelyNarrowing());
}

TEST_F(PolicyDiffTest, DetectsLevelMoves) {
  ASSERT_OK_AND_ASSIGN(
      HousePolicy after,
      before_.WidenedForAttribute("weight", Dimension::kGranularity, 1,
                                  scales_));
  PolicyDiff diff = DiffPolicies(before_, after);
  ASSERT_EQ(diff.level_changes.size(), 1u);
  const PolicyLevelChange& change = diff.level_changes[0];
  EXPECT_EQ(change.attribute, "weight");
  EXPECT_EQ(change.dimension, Dimension::kGranularity);
  EXPECT_EQ(change.old_level, 2);
  EXPECT_EQ(change.new_level, 3);
  EXPECT_EQ(change.Delta(), 1);
  EXPECT_TRUE(diff.Widens());
}

TEST_F(PolicyDiffTest, PurelyNarrowingClassification) {
  ASSERT_OK_AND_ASSIGN(HousePolicy narrowed,
                       before_.Widened(Dimension::kVisibility, -1, scales_));
  PolicyDiff diff = DiffPolicies(before_, narrowed);
  EXPECT_TRUE(diff.PurelyNarrowing());
  EXPECT_FALSE(diff.Widens());

  // Adding an all-zero tuple exposes nothing: still purely narrowing.
  HousePolicy with_zero = narrowed;
  PPDB_CHECK_OK(with_zero.Add("age", PrivacyTuple::ZeroFor(research_)));
  EXPECT_TRUE(DiffPolicies(before_, with_zero).PurelyNarrowing());

  // Adding a positive tuple is not.
  HousePolicy with_positive = narrowed;
  PPDB_CHECK_OK(
      with_positive.Add("age", PrivacyTuple{research_, 1, 0, 0}));
  EXPECT_FALSE(DiffPolicies(before_, with_positive).PurelyNarrowing());
}

TEST_F(PolicyDiffTest, MixedChangesRenderReadably) {
  HousePolicy after;
  PPDB_CHECK_OK(after.Add("weight", PrivacyTuple{marketing_, 1, 3, 1}));
  PPDB_CHECK_OK(after.Add("email", PrivacyTuple{research_, 1, 1, 1}));
  PolicyDiff diff = DiffPolicies(before_, after);
  std::string rendered = diff.ToString(purposes_, scales_);
  EXPECT_NE(rendered.find("+ email for research"), std::string::npos);
  EXPECT_NE(rendered.find("- age for marketing"), std::string::npos);
  EXPECT_NE(rendered.find("widened"), std::string::npos);
  EXPECT_NE(rendered.find("narrowed"), std::string::npos);
  // Level names resolved: granularity 2 -> 3 is partial -> specific.
  EXPECT_NE(rendered.find("partial -> specific"), std::string::npos);
}

}  // namespace
}  // namespace ppdb::privacy

// Property tests for the serialization boundaries: random configurations
// and populations must survive DSL and on-disk round-trips with identical
// analysis results, and the SQL front-end must agree with hand-composed
// operators on random data.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>

#include "common/macros.h"
#include "common/rng.h"
#include "privacy/policy_dsl.h"
#include "relational/sql.h"
#include "sim/population.h"
#include "storage/database_io.h"
#include "tests/test_util.h"
#include "violation/default_model.h"
#include "violation/detector.h"

namespace ppdb {
namespace {

namespace fs = std::filesystem;

sim::Population RandomPopulation(uint64_t seed) {
  sim::PopulationConfig config;
  Rng rng(seed);
  config.num_providers = rng.NextInt(5, 60);
  int num_attrs = static_cast<int>(rng.NextInt(1, 3));
  for (int a = 0; a < num_attrs; ++a) {
    config.attributes.push_back({"attr" + std::to_string(a),
                                 0.5 + rng.NextDouble() * 4, 50.0, 10.0});
  }
  config.purposes = {"p0", "p1"};
  config.seed = seed * 977 + 3;
  auto population = sim::PopulationGenerator(config).Generate();
  PPDB_CHECK_OK(population.status());
  auto policy = sim::MakeUniformPolicy(config.attributes, config.purposes,
                                       rng.NextDouble(), rng.NextDouble(),
                                       rng.NextDouble(),
                                       &population.value().config);
  PPDB_CHECK_OK(policy.status());
  population.value().config.policy = std::move(policy).value();
  return std::move(population).value();
}

struct Analysis {
  int64_t violated;
  double severity;
  int64_t defaulted;
};

Analysis Analyze(const privacy::PrivacyConfig& config) {
  violation::ViolationDetector detector(&config);
  auto report = detector.Analyze();
  PPDB_CHECK_OK(report.status());
  violation::DefaultReport defaults =
      violation::ComputeDefaults(report.value(), config);
  return Analysis{report->num_violated, report->total_severity,
                  defaults.num_defaulted};
}

class RoundTripPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RoundTripPropertyTest, DslRoundTripPreservesAnalysis) {
  sim::Population population = RandomPopulation(GetParam());
  Analysis original = Analyze(population.config);

  std::string dsl = privacy::SerializePrivacyConfig(population.config);
  ASSERT_OK_AND_ASSIGN(privacy::PrivacyConfig reparsed,
                       privacy::ParsePrivacyConfig(dsl));
  Analysis after = Analyze(reparsed);
  EXPECT_EQ(after.violated, original.violated);
  EXPECT_NEAR(after.severity, original.severity, 1e-6);
  EXPECT_EQ(after.defaulted, original.defaulted);

  // Serialization is a fixed point: serialize(parse(serialize(x))) ==
  // serialize(x).
  EXPECT_EQ(privacy::SerializePrivacyConfig(reparsed), dsl);
}

TEST_P(RoundTripPropertyTest, StorageRoundTripPreservesEverything) {
  sim::Population population = RandomPopulation(GetParam() + 100);
  storage::Database database;
  database.config = population.config;
  int64_t rows = population.data.num_rows();
  PPDB_CHECK_OK(database.catalog.AddTable(std::move(population.data))
                    .status());
  database.ledger.RecordIngest("providers", 1, "attr0", 7);

  fs::path dir = fs::temp_directory_path() /
                 ("ppdb_prop_" + std::to_string(::getpid()) + "_" +
                  std::to_string(GetParam()));
  fs::remove_all(dir);
  ASSERT_OK(storage::SaveDatabase(dir.string(), database));
  ASSERT_OK_AND_ASSIGN(storage::Database loaded,
                       storage::LoadDatabase(dir.string()));
  fs::remove_all(dir);

  ASSERT_OK_AND_ASSIGN(const rel::Table* table,
                       loaded.catalog.GetTable("providers"));
  EXPECT_EQ(table->num_rows(), rows);

  Analysis original = Analyze(database.config);
  Analysis after = Analyze(loaded.config);
  EXPECT_EQ(after.violated, original.violated);
  EXPECT_NEAR(after.severity, original.severity, 1e-6);
  EXPECT_EQ(after.defaulted, original.defaulted);
}

TEST_P(RoundTripPropertyTest, SqlAgreesWithComposedOperators) {
  sim::Population population = RandomPopulation(GetParam() + 200);
  rel::Catalog catalog;
  PPDB_CHECK_OK(catalog.AddTable(std::move(population.data)).status());

  Rng rng(GetParam() + 55);
  double cut = 40.0 + rng.NextDouble() * 20.0;
  std::string cut_text = std::to_string(cut);

  ASSERT_OK_AND_ASSIGN(
      rel::ResultSet via_sql,
      rel::ExecuteSql(catalog, "SELECT attr0 FROM providers WHERE attr0 > " +
                                   cut_text + " ORDER BY attr0 LIMIT 10"));

  ASSERT_OK_AND_ASSIGN(const rel::Table* table,
                       catalog.GetTable("providers"));
  ASSERT_OK_AND_ASSIGN(
      rel::ResultSet filtered,
      rel::Filter(rel::Scan(*table),
                  rel::Gt(rel::Col("attr0"),
                          rel::Lit(rel::Value::Parse(cut_text,
                                                     rel::DataType::kDouble)
                                       .value()))));
  ASSERT_OK_AND_ASSIGN(rel::ResultSet projected,
                       rel::Project(filtered, {"attr0"}));
  ASSERT_OK_AND_ASSIGN(rel::ResultSet sorted,
                       rel::Sort(projected, "attr0", true));
  rel::ResultSet via_operators = rel::Limit(sorted, 10);

  ASSERT_EQ(via_sql.num_rows(), via_operators.num_rows());
  for (int64_t i = 0; i < via_sql.num_rows(); ++i) {
    EXPECT_EQ(via_sql.rows[static_cast<size_t>(i)].values[0],
              via_operators.rows[static_cast<size_t>(i)].values[0]);
    EXPECT_EQ(via_sql.rows[static_cast<size_t>(i)].provider,
              via_operators.rows[static_cast<size_t>(i)].provider);
  }
}

TEST_P(RoundTripPropertyTest, SqlAggregatesAgreeWithOperators) {
  sim::Population population = RandomPopulation(GetParam() + 300);
  rel::Catalog catalog;
  PPDB_CHECK_OK(catalog.AddTable(std::move(population.data)).status());

  ASSERT_OK_AND_ASSIGN(
      rel::ResultSet via_sql,
      rel::ExecuteSql(catalog,
                      "SELECT COUNT(*) AS n, SUM(attr0) AS s, "
                      "MIN(attr0) AS lo FROM providers"));
  ASSERT_OK_AND_ASSIGN(const rel::Table* table,
                       catalog.GetTable("providers"));
  ASSERT_OK_AND_ASSIGN(
      rel::ResultSet via_operators,
      rel::Aggregate(rel::Scan(*table), {},
                     {{rel::AggOp::kCount, "", "n"},
                      {rel::AggOp::kSum, "attr0", "s"},
                      {rel::AggOp::kMin, "attr0", "lo"}}));
  ASSERT_EQ(via_sql.num_rows(), 1);
  for (size_t c = 0; c < 3; ++c) {
    EXPECT_EQ(via_sql.rows[0].values[c], via_operators.rows[0].values[c]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundTripPropertyTest,
                         ::testing::Range<uint64_t>(0, 10));

}  // namespace
}  // namespace ppdb

#include "server/serve.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "privacy/policy_dsl.h"
#include "server/broker.h"
#include "server/service.h"
#include "storage/database_io.h"
#include "storage/fs.h"
#include "tests/test_util.h"

namespace ppdb::server {
namespace {

constexpr char kConfigDsl[] = R"(
scale visibility: l0, l1, l2, l3
scale granularity: l0, l1, l2, l3
scale retention: l0, l1, l2, l3
purpose pr
policy weight for pr: visibility=2, granularity=2, retention=2
pref 1 weight for pr: visibility=0, granularity=0, retention=0
pref 2 weight for pr: visibility=3, granularity=3, retention=3
attr_sensitivity weight = 2
threshold 1 = 3
threshold 2 = 3
)";

class ServeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("ppdb_serve_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(dir_);
    storage::Database database;
    ASSERT_OK_AND_ASSIGN(database.config,
                         privacy::ParsePrivacyConfig(kConfigDsl));
    ASSERT_OK(storage::SaveDatabase(dir_.string(), database));
  }

  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::unique_ptr<DatabaseService> MakeService(int checkpoint_every = 1000) {
    DatabaseService::Options options;
    options.checkpoint_every_events = checkpoint_every;
    options.num_threads = 1;
    Result<std::unique_ptr<DatabaseService>> service =
        DatabaseService::Create(dir_.string(), &storage::GetRealFileSystem(),
                                options);
    EXPECT_OK(service.status());
    return std::move(service).value();
  }

  /// Runs the serve loop over `input` and returns the response lines keyed
  /// by request id (responses may arrive out of order under the broker).
  std::map<int64_t, std::string> ServeAll(const std::string& input,
                                          DatabaseService& service,
                                          RequestBroker& broker,
                                          Status* final_status = nullptr) {
    std::istringstream in(input);
    std::ostringstream out;
    Status status = Serve(in, out, service, broker);
    if (final_status != nullptr) *final_status = status;

    std::map<int64_t, std::string> by_id;
    std::istringstream lines(out.str());
    std::string line;
    while (std::getline(lines, line)) {
      size_t space = line.find(' ');
      EXPECT_NE(space, std::string::npos) << line;
      int64_t id = std::stoll(line.substr(0, space));
      // Pipelining may reorder responses but never duplicates an id.
      EXPECT_EQ(by_id.count(id), 0u) << line;
      by_id[id] = line;
    }
    return by_id;
  }

  std::filesystem::path dir_;
};

TEST_F(ServeTest, AnswersEveryRequestByIdAndSkipsCommentLines) {
  std::unique_ptr<DatabaseService> service = MakeService();
  RequestBroker broker(RequestBroker::Options{});

  std::map<int64_t, std::string> responses = ServeAll(
      "ping\n"
      "\n"                     // blank: no id consumed
      "# comment, also free\n"
      "query pw\n"
      "warp 9\n"               // parse error, answered immediately
      "analyze\n",
      *service, broker);

  ASSERT_EQ(responses.size(), 4u);
  EXPECT_EQ(responses[1], "1 ok pong");
  EXPECT_EQ(responses[2], "2 ok pw=0.5");
  EXPECT_NE(responses[3].find("3 error invalid_argument"), std::string::npos);
  EXPECT_NE(responses[4].find("4 ok"), std::string::npos);
  EXPECT_NE(responses[4].find("violated=1"), std::string::npos);
}

TEST_F(ServeTest, StatsMergesServiceAndBrokerCounters) {
  std::unique_ptr<DatabaseService> service = MakeService();
  RequestBroker broker(RequestBroker::Options{});

  std::map<int64_t, std::string> responses =
      ServeAll("ping\nstats\n", *service, broker);
  ASSERT_EQ(responses.size(), 2u);
  EXPECT_NE(responses[2].find("breaker=closed"), std::string::npos);
  EXPECT_NE(responses[2].find("admitted="), std::string::npos);
  EXPECT_NE(responses[2].find("shed=0"), std::string::npos);
}

// The acceptance-criteria shutdown drill: a drain request under load stops
// admissions, completes every in-flight request, takes a final checkpoint,
// and the checkpoint reloads cleanly.
TEST_F(ServeTest, DrainUnderLoadCompletesEverythingAndCheckpoints) {
  // Large checkpoint interval: nothing persists unless the final
  // checkpoint actually runs.
  std::unique_ptr<DatabaseService> service = MakeService(
      /*checkpoint_every=*/1000);
  RequestBroker::Options options;
  options.num_workers = 2;
  RequestBroker broker(options);

  std::string input;
  constexpr int kEvents = 20;
  for (int i = 0; i < kEvents; ++i) {
    input += "event add " + std::to_string(100 + i) + " 7.5\n";
  }
  input += "analyze\n";
  input += "drain\n";
  input += "ping\n";  // after drain: never read, never answered

  Status final_status;
  std::map<int64_t, std::string> responses =
      ServeAll(input, *service, broker, &final_status);
  EXPECT_OK(final_status);

  // Every admitted request was answered; nothing silently dropped, and
  // nothing after the drain was served.
  ASSERT_EQ(responses.size(), static_cast<size_t>(kEvents) + 2);
  for (int id = 1; id <= kEvents; ++id) {
    EXPECT_NE(responses[id].find("ok"), std::string::npos) << responses[id];
  }
  const std::string& drain = responses[kEvents + 2];
  EXPECT_NE(drain.find("drained=1"), std::string::npos);
  EXPECT_NE(drain.find("final_checkpoint=ok"), std::string::npos);
  EXPECT_EQ(broker.Stats().in_flight, 0);

  // The final checkpoint reloads cleanly with all drained state in it.
  ASSERT_OK_AND_ASSIGN(storage::Database reloaded,
                       storage::LoadDatabase(dir_.string()));
  for (int i = 0; i < kEvents; ++i) {
    EXPECT_DOUBLE_EQ(reloaded.config.ThresholdFor(100 + i), 7.5) << i;
  }
}

TEST_F(ServeTest, EndOfInputAlsoDrainsAndCheckpoints) {
  std::unique_ptr<DatabaseService> service = MakeService(
      /*checkpoint_every=*/1000);
  RequestBroker broker(RequestBroker::Options{});

  Status final_status;
  std::map<int64_t, std::string> responses = ServeAll(
      "event threshold 1 9\n", *service, broker, &final_status);
  EXPECT_OK(final_status);
  ASSERT_EQ(responses.size(), 1u);

  // A client that hangs up without draining still gets durability.
  ASSERT_OK_AND_ASSIGN(storage::Database reloaded,
                       storage::LoadDatabase(dir_.string()));
  EXPECT_DOUBLE_EQ(reloaded.config.ThresholdFor(1), 9.0);
}

TEST_F(ServeTest, PerRequestDeadlinePrefixReachesTheEngine) {
  std::unique_ptr<DatabaseService> service = MakeService();
  RequestBroker broker(RequestBroker::Options{});

  // A generous deadline succeeds; the grammar is exercised end to end.
  std::map<int64_t, std::string> responses =
      ServeAll("@60000 analyze\n", *service, broker);
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_NE(responses[1].find("1 ok"), std::string::npos);
}

}  // namespace
}  // namespace ppdb::server

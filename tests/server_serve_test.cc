#include "server/serve.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <map>
#include <memory>
#include <regex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "privacy/policy_dsl.h"
#include "server/broker.h"
#include "server/serve_core.h"
#include "server/service.h"
#include "storage/database_io.h"
#include "storage/fs.h"
#include "tests/test_util.h"

namespace ppdb::server {
namespace {

constexpr char kConfigDsl[] = R"(
scale visibility: l0, l1, l2, l3
scale granularity: l0, l1, l2, l3
scale retention: l0, l1, l2, l3
purpose pr
policy weight for pr: visibility=2, granularity=2, retention=2
pref 1 weight for pr: visibility=0, granularity=0, retention=0
pref 2 weight for pr: visibility=3, granularity=3, retention=3
attr_sensitivity weight = 2
threshold 1 = 3
threshold 2 = 3
)";

class ServeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("ppdb_serve_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(dir_);
    storage::Database database;
    ASSERT_OK_AND_ASSIGN(database.config,
                         privacy::ParsePrivacyConfig(kConfigDsl));
    ASSERT_OK(storage::SaveDatabase(dir_.string(), database));
  }

  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::unique_ptr<DatabaseService> MakeService(int checkpoint_every = 1000) {
    DatabaseService::Options options;
    options.checkpoint_every_events = checkpoint_every;
    options.num_threads = 1;
    Result<std::unique_ptr<DatabaseService>> service =
        DatabaseService::Create(dir_.string(), &storage::GetRealFileSystem(),
                                options);
    EXPECT_OK(service.status());
    return std::move(service).value();
  }

  /// Runs the serve loop over `input` and returns the response lines keyed
  /// by request id (responses may arrive out of order under the broker).
  std::map<int64_t, std::string> ServeAll(const std::string& input,
                                          DatabaseService& service,
                                          RequestBroker& broker,
                                          Status* final_status = nullptr) {
    std::istringstream in(input);
    std::ostringstream out;
    Status status = Serve(in, out, service, broker);
    if (final_status != nullptr) *final_status = status;

    std::map<int64_t, std::string> by_id;
    std::istringstream lines(out.str());
    std::string line;
    while (std::getline(lines, line)) {
      size_t space = line.find(' ');
      EXPECT_NE(space, std::string::npos) << line;
      int64_t id = std::stoll(line.substr(0, space));
      // Pipelining may reorder responses but never duplicates an id.
      EXPECT_EQ(by_id.count(id), 0u) << line;
      by_id[id] = line;
    }
    return by_id;
  }

  /// Raw serve output, for block-framed (multi-line) responses that
  /// ServeAll's one-line-per-id parsing cannot key.
  std::string ServeRaw(const std::string& input, DatabaseService& service,
                       RequestBroker& broker) {
    std::istringstream in(input);
    std::ostringstream out;
    EXPECT_OK(Serve(in, out, service, broker));
    return out.str();
  }

  /// The body lines of the block response with request id `id`.
  static std::vector<std::string> BlockBody(const std::string& output,
                                            int64_t id) {
    std::vector<std::string> body;
    std::istringstream lines(output);
    std::string line;
    bool in_block = false;
    const std::string header_prefix =
        std::to_string(id) + " ok block lines=";
    const std::string footer = std::to_string(id) + " end";
    while (std::getline(lines, line)) {
      if (line.rfind(header_prefix, 0) == 0) {
        in_block = true;
        continue;
      }
      if (line == footer) break;
      if (in_block) body.push_back(line);
    }
    return body;
  }

  /// The value of `sample` (full name incl. labels) in a scrape, or -1.
  static double SampleValue(const std::vector<std::string>& scrape,
                            const std::string& sample) {
    for (const std::string& line : scrape) {
      if (line.rfind(sample + " ", 0) == 0) {
        return std::stod(line.substr(sample.size() + 1));
      }
    }
    return -1.0;
  }

  std::filesystem::path dir_;
};

TEST_F(ServeTest, AnswersEveryRequestByIdAndSkipsCommentLines) {
  std::unique_ptr<DatabaseService> service = MakeService();
  RequestBroker broker(RequestBroker::Options{});

  std::map<int64_t, std::string> responses = ServeAll(
      "ping\n"
      "\n"                     // blank: no id consumed
      "# comment, also free\n"
      "query pw\n"
      "warp 9\n"               // parse error, answered immediately
      "analyze\n",
      *service, broker);

  ASSERT_EQ(responses.size(), 4u);
  EXPECT_EQ(responses[1], "1 ok pong");
  EXPECT_EQ(responses[2], "2 ok pw=0.5");
  EXPECT_NE(responses[3].find("3 error invalid_argument"), std::string::npos);
  EXPECT_NE(responses[4].find("4 ok"), std::string::npos);
  EXPECT_NE(responses[4].find("violated=1"), std::string::npos);
}

TEST_F(ServeTest, StatsMergesServiceAndBrokerCounters) {
  std::unique_ptr<DatabaseService> service = MakeService();
  RequestBroker broker(RequestBroker::Options{});

  std::map<int64_t, std::string> responses =
      ServeAll("ping\nstats\n", *service, broker);
  ASSERT_EQ(responses.size(), 2u);
  EXPECT_NE(responses[2].find("breaker=closed"), std::string::npos);
  EXPECT_NE(responses[2].find("admitted="), std::string::npos);
  EXPECT_NE(responses[2].find("shed=0"), std::string::npos);
}

// The acceptance-criteria shutdown drill: a drain request under load stops
// admissions, completes every in-flight request, takes a final checkpoint,
// and the checkpoint reloads cleanly.
TEST_F(ServeTest, DrainUnderLoadCompletesEverythingAndCheckpoints) {
  // Large checkpoint interval: nothing persists unless the final
  // checkpoint actually runs.
  std::unique_ptr<DatabaseService> service = MakeService(
      /*checkpoint_every=*/1000);
  RequestBroker::Options options;
  options.num_workers = 2;
  RequestBroker broker(options);

  std::string input;
  constexpr int kEvents = 20;
  for (int i = 0; i < kEvents; ++i) {
    input += "event add " + std::to_string(100 + i) + " 7.5\n";
  }
  input += "analyze\n";
  input += "drain\n";
  input += "ping\n";  // after drain: never read, never answered

  Status final_status;
  std::map<int64_t, std::string> responses =
      ServeAll(input, *service, broker, &final_status);
  EXPECT_OK(final_status);

  // Every admitted request was answered; nothing silently dropped, and
  // nothing after the drain was served.
  ASSERT_EQ(responses.size(), static_cast<size_t>(kEvents) + 2);
  for (int id = 1; id <= kEvents; ++id) {
    EXPECT_NE(responses[id].find("ok"), std::string::npos) << responses[id];
  }
  const std::string& drain = responses[kEvents + 2];
  EXPECT_NE(drain.find("drained=1"), std::string::npos);
  EXPECT_NE(drain.find("final_checkpoint=ok"), std::string::npos);
  EXPECT_EQ(broker.Stats().in_flight, 0);

  // The final checkpoint reloads cleanly with all drained state in it.
  ASSERT_OK_AND_ASSIGN(storage::Database reloaded,
                       storage::LoadDatabase(dir_.string()));
  for (int i = 0; i < kEvents; ++i) {
    EXPECT_DOUBLE_EQ(reloaded.config.ThresholdFor(100 + i), 7.5) << i;
  }
}

TEST_F(ServeTest, EndOfInputAlsoDrainsAndCheckpoints) {
  std::unique_ptr<DatabaseService> service = MakeService(
      /*checkpoint_every=*/1000);
  RequestBroker broker(RequestBroker::Options{});

  Status final_status;
  std::map<int64_t, std::string> responses = ServeAll(
      "event threshold 1 9\n", *service, broker, &final_status);
  EXPECT_OK(final_status);
  ASSERT_EQ(responses.size(), 1u);

  // A client that hangs up without draining still gets durability.
  ASSERT_OK_AND_ASSIGN(storage::Database reloaded,
                       storage::LoadDatabase(dir_.string()));
  EXPECT_DOUBLE_EQ(reloaded.config.ThresholdFor(1), 9.0);
}

// Acceptance criterion: `stats prometheus` emits a well-formed Prometheus
// text exposition covering every instrumented layer, and counters are
// monotonic across two scrapes in one session.
TEST_F(ServeTest, PrometheusScrapeIsWellFormedAndMonotonic) {
  std::unique_ptr<DatabaseService> service = MakeService();
  RequestBroker broker(RequestBroker::Options{});

  // Three sessions so ordering is deterministic: each Serve drains its
  // broker before returning, and the registry is process-global, so the
  // second scrape must observe the analyze of the session before it.
  std::vector<std::string> first =
      BlockBody(ServeRaw("ping\nstats prometheus\n", *service, broker), 2);
  RequestBroker analyze_broker{RequestBroker::Options{}};
  ServeRaw("analyze\n", *service, analyze_broker);
  RequestBroker scrape_broker{RequestBroker::Options{}};
  std::vector<std::string> second =
      BlockBody(ServeRaw("metrics\n", *service, scrape_broker), 1);
  ASSERT_FALSE(first.empty());
  ASSERT_FALSE(second.empty());

  // Every line is a comment or a sample whose metric name matches the
  // Prometheus grammar and whose value parses as a number.
  const std::regex name_re("[a-zA-Z_:][a-zA-Z0-9_:]*");
  const std::regex sample_re(
      R"(([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^{}]*\})? (-?[0-9][0-9eE.+-]*|\+Inf|NaN))");
  for (const std::vector<std::string>* scrape : {&first, &second}) {
    for (const std::string& line : *scrape) {
      if (line.rfind("# HELP ", 0) == 0 || line.rfind("# TYPE ", 0) == 0) {
        std::istringstream tokens(line);
        std::string hash, keyword, name;
        tokens >> hash >> keyword >> name;
        EXPECT_TRUE(std::regex_match(name, name_re)) << line;
        continue;
      }
      EXPECT_TRUE(std::regex_match(line, sample_re)) << line;
    }
  }

  // One scrape covers all four instrumented layers.
  for (const char* name :
       {"ppdb_broker_submitted_total", "ppdb_service_requests_total",
        "ppdb_storage_load_seconds_count", "ppdb_violation_pw"}) {
    bool found = false;
    for (const std::string& line : first) {
      if (line.find(name) != std::string::npos) found = true;
    }
    EXPECT_TRUE(found) << name;
  }

  // Counters are monotonic: the analyze between the scrapes must show up.
  // (The registry is process-global, so assert deltas, not absolutes.)
  const std::string analyze_ok =
      "ppdb_violation_analyze_total{result=\"ok\"}";
  EXPECT_GE(SampleValue(first, analyze_ok), 0.0);
  EXPECT_GE(SampleValue(second, analyze_ok),
            SampleValue(first, analyze_ok) + 1.0);
  EXPECT_GE(SampleValue(second, "ppdb_broker_submitted_total"),
            SampleValue(first, "ppdb_broker_submitted_total"));
}

// The serve-mode `trace` command dumps the span ring as JSON; a served
// analyze leaves a trace whose id is derived from its broker request id.
TEST_F(ServeTest, TraceCommandDumpsSpanRingAsJson) {
  std::unique_ptr<DatabaseService> service = MakeService();
  RequestBroker broker(RequestBroker::Options{});

  // Two sessions: the first drains, so its analyze trace is committed to
  // the (process-global) ring before the second session dumps it. The dump
  // is one JSON line, so it arrives as a plain (non-block) response.
  ServeRaw("analyze\n", *service, broker);
  RequestBroker trace_broker{RequestBroker::Options{}};
  std::string output = ServeRaw("trace\n", *service, trace_broker);
  ASSERT_NE(output.find("1 ok ["), std::string::npos) << output;
  EXPECT_NE(output.find("\"trace_id\":\"ppdb-req-"), std::string::npos);
  EXPECT_NE(output.find("\"name\":\"shard_fanout\""), std::string::npos);
}

TEST_F(ServeTest, PerRequestDeadlinePrefixReachesTheEngine) {
  std::unique_ptr<DatabaseService> service = MakeService();
  RequestBroker broker(RequestBroker::Options{});

  // A generous deadline succeeds; the grammar is exercised end to end.
  std::map<int64_t, std::string> responses =
      ServeAll("@60000 analyze\n", *service, broker);
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_NE(responses[1].find("1 ok"), std::string::npos);
}

TEST_F(ServeTest, OversizedRequestLineIsRejectedWithoutDerailingTheStream) {
  std::unique_ptr<DatabaseService> service = MakeService();
  RequestBroker broker(RequestBroker::Options{});

  // A line past the cap must cost one clean error — never unbounded
  // memory, never desync of the ids that follow it.
  std::string input = "ping\n" + std::string(kMaxRequestLine + 100, 'x') +
                      "\nping\n";
  std::map<int64_t, std::string> responses =
      ServeAll(input, *service, broker);
  ASSERT_EQ(responses.size(), 3u);
  EXPECT_NE(responses[1].find("1 ok pong"), std::string::npos);
  EXPECT_NE(responses[2].find("2 error invalid_argument"),
            std::string::npos);
  EXPECT_NE(responses[2].find("line_too_long"), std::string::npos);
  EXPECT_NE(responses[3].find("3 ok pong"), std::string::npos);
}

TEST_F(ServeTest, ExactlyCapSizedRequestLineIsStillParsed) {
  std::unique_ptr<DatabaseService> service = MakeService();
  RequestBroker broker(RequestBroker::Options{});

  // "ping" padded with trailing spaces to exactly the cap: boundary-length
  // lines are legal and must reach the parser intact.
  std::string line = "ping" + std::string(kMaxRequestLine - 4, ' ');
  std::map<int64_t, std::string> responses =
      ServeAll(line + "\n", *service, broker);
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_NE(responses[1].find("1 ok pong"), std::string::npos);
}

// Satellite regression for the shared writer: concurrent Write() calls —
// the broker's workers plus the serve thread all funnel through one
// ResponseWriter — must never tear or interleave, even for multi-line
// block responses. Byte-exact check: the output must be a permutation of
// whole rendered responses.
TEST_F(ServeTest, ConcurrentResponseWritesAreNeverTorn) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 200;

  std::ostringstream out;
  ResponseWriter writer(out);

  auto make_response = [](int64_t id) {
    if (id % 3 == 0) {
      // Multi-line payload: rendered as a block, the hardest case to keep
      // atomic under concurrency.
      return Response{Status::OK(), "alpha " + std::to_string(id) +
                                        "\nbeta\ngamma"};
    }
    if (id % 3 == 1) {
      return Response{Status::OK(), "value=" + std::to_string(id)};
    }
    return Response{Status::InvalidArgument("bad request " +
                                            std::to_string(id)),
                    {}};
  };

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        int64_t id = static_cast<int64_t>(t) * kPerThread + i;
        writer.Write(id, make_response(id));
      }
    });
  }
  for (std::thread& t : threads) t.join();

  // Reassemble: walk the output and greedily match whole rendered
  // responses. Any torn or interleaved write breaks the match.
  std::string output = out.str();
  std::vector<bool> seen(kThreads * kPerThread, false);
  size_t at = 0;
  while (at < output.size()) {
    size_t space = output.find_first_of(" \n", at);
    ASSERT_NE(space, std::string::npos) << "trailing garbage at " << at;
    int64_t id = std::stoll(output.substr(at, space - at));
    ASSERT_GE(id, 0);
    ASSERT_LT(id, kThreads * kPerThread);
    ASSERT_FALSE(seen[id]) << "response " << id << " emitted twice";
    std::string expected = RenderResponse(id, make_response(id));
    ASSERT_EQ(output.compare(at, expected.size(), expected), 0)
        << "torn write at byte " << at << " (id " << id << ")";
    seen[id] = true;
    at += expected.size();
  }
  for (int id = 0; id < kThreads * kPerThread; ++id) {
    EXPECT_TRUE(seen[id]) << "response " << id << " missing";
  }
}

}  // namespace
}  // namespace ppdb::server

// Cross-module consistency: in observe mode, the access monitor releases
// data at policy levels and logs a kViolationObserved event for every
// exceedance it ships — those events must agree with what the offline
// ViolationDetector predicts for the same (policy, preferences) pair on
// the visibility and granularity dimensions. (Retention events depend on
// datum age, which the detector does not model.)
#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "audit/monitor.h"
#include "common/macros.h"
#include "common/rng.h"
#include "sim/population.h"
#include "tests/test_util.h"
#include "violation/detector.h"

namespace ppdb::audit {
namespace {

using ObservedKey =
    std::tuple<privacy::ProviderId, std::string, privacy::Dimension>;

class ObserveConsistencyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ObserveConsistencyTest, ObservedEventsMatchDetectorIncidents) {
  sim::PopulationConfig population_config;
  population_config.num_providers = 120;
  population_config.attributes = {{"a0", 2.0, 10, 3}, {"a1", 3.0, 20, 5}};
  population_config.purposes = {"research"};
  population_config.seed = GetParam() * 71 + 9;
  auto population_result =
      sim::PopulationGenerator(population_config).Generate();
  ASSERT_OK(population_result.status());
  sim::Population population = std::move(population_result).value();

  Rng rng(GetParam());
  auto policy = sim::MakeUniformPolicy(
      population_config.attributes, population_config.purposes,
      rng.NextDouble(), rng.NextDouble(), /*retention=*/1.0,
      &population.config);
  ASSERT_OK(policy.status());
  population.config.policy = std::move(policy).value();
  privacy::PurposeId research =
      population.config.purposes.Lookup("research").value();
  // Request visibility = the declared policy visibility (the widest the
  // gate admits).
  int request_visibility =
      population.config.policy.Find("a0", research)->visibility;

  // --- What the monitor observes at read time. ---------------------------
  rel::Catalog catalog;
  ASSERT_OK(catalog.AddTable(std::move(population.data)).status());
  GeneralizerRegistry generalizers;
  AuditLog log;
  // No ledger: retention is not enforced, matching the detector's
  // age-free view.
  AccessMonitor monitor(&catalog, &population.config, &generalizers, &log,
                        EnforcementMode::kObserve);
  AccessRequest request;
  request.requester = "observer";
  request.visibility_level = request_visibility;
  request.purpose = research;
  request.table = "providers";
  request.attributes = {"a0", "a1"};
  ASSERT_OK(monitor.Execute(request).status());

  std::set<ObservedKey> observed;
  for (const AuditEvent& event : log.events()) {
    if (event.kind != AuditEventKind::kViolationObserved) continue;
    ASSERT_TRUE(event.provider.has_value());
    ASSERT_TRUE(event.attribute.has_value());
    privacy::Dimension dim =
        event.detail.rfind("visibility", 0) == 0
            ? privacy::Dimension::kVisibility
            : privacy::Dimension::kGranularity;
    observed.insert({*event.provider, *event.attribute, dim});
  }

  // --- What the detector predicts offline. ------------------------------
  violation::ViolationDetector detector(&population.config);
  ASSERT_OK_AND_ASSIGN(violation::ViolationReport report, detector.Analyze());
  std::set<ObservedKey> predicted;
  for (const violation::ProviderViolation& pv : report.providers) {
    for (const violation::ViolationIncident& incident : pv.incidents) {
      if (incident.dimension == privacy::Dimension::kRetention) continue;
      if (incident.dimension == privacy::Dimension::kVisibility &&
          incident.policy_level != request_visibility) {
        // The monitor observes the *request's* visibility; only policy
        // tuples at that level surface as read-time events. MakeUniform
        // gives all tuples the same visibility, so this never skips.
        continue;
      }
      predicted.insert(
          {incident.provider, incident.attribute, incident.dimension});
    }
  }

  EXPECT_EQ(observed, predicted)
      << "observe-mode audit events diverge from detector incidents";
  // And there genuinely is something to compare on most seeds.
  if (report.num_violated > 0) {
    EXPECT_FALSE(predicted.empty());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ObserveConsistencyTest,
                         ::testing::Range<uint64_t>(0, 6));

}  // namespace
}  // namespace ppdb::audit

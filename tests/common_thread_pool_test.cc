#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

namespace ppdb {
namespace {

TEST(ThreadPoolTest, HardwareConcurrencyAtLeastOne) {
  EXPECT_GE(ThreadPool::HardwareConcurrency(), 1);
}

TEST(ThreadPoolTest, ResolveThreadCount) {
  EXPECT_EQ(ThreadPool::ResolveThreadCount(0),
            ThreadPool::HardwareConcurrency());
  EXPECT_EQ(ThreadPool::ResolveThreadCount(1), 1);
  EXPECT_EQ(ThreadPool::ResolveThreadCount(7), 7);
  EXPECT_EQ(ThreadPool::ResolveThreadCount(-3), 1);
}

TEST(ThreadPoolTest, NumShardsMatchesCeilDiv) {
  EXPECT_EQ(ThreadPool::NumShards(0, 0, 4), 0);
  EXPECT_EQ(ThreadPool::NumShards(5, 5, 4), 0);
  EXPECT_EQ(ThreadPool::NumShards(10, 5, 4), 0);
  EXPECT_EQ(ThreadPool::NumShards(0, 1, 4), 1);
  EXPECT_EQ(ThreadPool::NumShards(0, 4, 4), 1);
  EXPECT_EQ(ThreadPool::NumShards(0, 5, 4), 2);
  EXPECT_EQ(ThreadPool::NumShards(3, 11, 4), 2);
  // A non-positive grain behaves as grain 1.
  EXPECT_EQ(ThreadPool::NumShards(0, 5, 0), 5);
  EXPECT_EQ(ThreadPool::NumShards(0, 5, -2), 5);
}

TEST(ThreadPoolTest, SharedPoolIsASingletonSizedToHardware) {
  ThreadPool& a = ThreadPool::Shared();
  ThreadPool& b = ThreadPool::Shared();
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(a.num_threads(), ThreadPool::HardwareConcurrency());
}

TEST(ThreadPoolTest, ConstructorClampsToOneWorker) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1);
  ThreadPool negative(-5);
  EXPECT_EQ(negative.num_threads(), 1);
}

// Shards partition the range: every index is visited exactly once, shard
// indices are dense, and shard boundaries match begin + shard * grain.
void CheckCoverage(int64_t begin, int64_t end, int64_t grain,
                   int parallelism) {
  ThreadPool pool(4);
  const int64_t n = end > begin ? end - begin : 0;
  std::vector<int> visits(static_cast<size_t>(n), 0);
  std::vector<int> shard_seen(
      static_cast<size_t>(ThreadPool::NumShards(begin, end, grain)), 0);
  pool.ParallelRange(begin, end, grain, parallelism,
                     [&](int64_t shard, int64_t b, int64_t e) {
                       EXPECT_EQ(b, begin + shard * grain);
                       EXPECT_LE(e, end);
                       EXPECT_LT(b, e);
                       // Distinct shards touch disjoint slots, so these
                       // writes are race-free by construction.
                       shard_seen[static_cast<size_t>(shard)]++;
                       for (int64_t i = b; i < e; ++i) {
                         visits[static_cast<size_t>(i - begin)]++;
                       }
                     });
  for (int v : visits) EXPECT_EQ(v, 1);
  for (int s : shard_seen) EXPECT_EQ(s, 1);
}

TEST(ThreadPoolTest, ParallelRangeCoversEveryIndexOnce) {
  CheckCoverage(0, 1000, 7, 4);
  CheckCoverage(0, 1000, 7, 1);
  CheckCoverage(3, 11, 4, 2);
  CheckCoverage(0, 1, 100, 8);     // one shard, grain > range
  CheckCoverage(0, 64, 1, 16);     // grain 1, more shards than threads
  CheckCoverage(0, 5, 5, 3);       // exactly one shard
}

TEST(ThreadPoolTest, EmptyRangeInvokesNothing) {
  ThreadPool pool(2);
  int calls = 0;
  pool.ParallelRange(0, 0, 4, 2,
                     [&](int64_t, int64_t, int64_t) { ++calls; });
  pool.ParallelRange(10, 5, 4, 2,
                     [&](int64_t, int64_t, int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

// The determinism contract: a floating-point reduction is bitwise-identical
// at every parallelism, because shard boundaries and combine order depend
// only on (range, grain).
TEST(ThreadPoolTest, ParallelReduceBitwiseIdenticalAcrossParallelism) {
  ThreadPool pool(8);
  const auto reduce_with = [&](int parallelism) {
    return pool.ParallelReduce(
        0, 10000, 37, parallelism, 0.0,
        [](int64_t b, int64_t e) {
          double sum = 0.0;
          for (int64_t i = b; i < e; ++i) {
            sum += 1.0 / static_cast<double>(i + 1);
          }
          return sum;
        },
        [](double& acc, double partial) { acc += partial; });
  };
  const double serial = reduce_with(1);
  for (int parallelism : {2, 3, 8, 64}) {
    EXPECT_EQ(serial, reduce_with(parallelism)) << parallelism;
  }
}

TEST(ThreadPoolTest, ParallelReduceCombinesInShardOrder) {
  ThreadPool pool(4);
  for (int parallelism : {1, 4}) {
    std::string order = pool.ParallelReduce(
        0, 10, 2, parallelism, std::string(),
        [](int64_t b, int64_t) { return std::to_string(b / 2); },
        [](std::string& acc, std::string partial) {
          if (!acc.empty()) acc += "|";
          acc += partial;
        });
    EXPECT_EQ(order, "0|1|2|3|4") << parallelism;
  }
}

TEST(ThreadPoolTest, ParallelReduceEmptyRangeReturnsInit) {
  ThreadPool pool(2);
  int64_t result = pool.ParallelReduce(
      5, 5, 4, 2, int64_t{42}, [](int64_t, int64_t) { return int64_t{1}; },
      [](int64_t& acc, int64_t p) { acc += p; });
  EXPECT_EQ(result, 42);
}

// Nested parallel loops must complete even when every pool worker is busy
// with the outer loop: the calling thread always participates.
TEST(ThreadPoolTest, NestedParallelRangeDoesNotDeadlock) {
  ThreadPool& pool = ThreadPool::Shared();
  const int64_t outer = 8, inner = 16;
  std::vector<int64_t> inner_counts(static_cast<size_t>(outer), 0);
  pool.ParallelRange(0, outer, 1, pool.num_threads(),
                     [&](int64_t, int64_t b, int64_t e) {
                       for (int64_t o = b; o < e; ++o) {
                         int64_t count = pool.ParallelReduce(
                             0, inner, 3, pool.num_threads(), int64_t{0},
                             [](int64_t ib, int64_t ie) { return ie - ib; },
                             [](int64_t& acc, int64_t p) { acc += p; });
                         inner_counts[static_cast<size_t>(o)] = count;
                       }
                     });
  for (int64_t c : inner_counts) EXPECT_EQ(c, inner);
}

TEST(ThreadPoolTest, ManyConcurrentCallersShareOnePool) {
  // Distinct threads issuing ParallelRange against the same pool must not
  // interfere: each caller waits for exactly its own shards.
  ThreadPool pool(3);
  constexpr int kCallers = 6;
  std::vector<int64_t> sums(kCallers, 0);
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&pool, &sums, c] {
      sums[static_cast<size_t>(c)] = pool.ParallelReduce(
          0, 500, 11, 3, int64_t{0},
          [](int64_t b, int64_t e) {
            int64_t s = 0;
            for (int64_t i = b; i < e; ++i) s += i;
            return s;
          },
          [](int64_t& acc, int64_t p) { acc += p; });
    });
  }
  for (std::thread& t : callers) t.join();
  for (int64_t s : sums) EXPECT_EQ(s, 500 * 499 / 2);
}

}  // namespace
}  // namespace ppdb

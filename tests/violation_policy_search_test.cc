#include "violation/policy_search.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/macros.h"
#include "tests/test_util.h"
#include "violation/detector.h"

namespace ppdb::violation {
namespace {

using privacy::Dimension;
using privacy::PrivacyTuple;
using privacy::PurposeId;

// A 12-provider population in tolerance bands. Providers in band b accept
// level b on every dimension; their thresholds leave moderate headroom.
class PolicySearchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    purpose_ = config_.purposes.Register("service").value();
    ASSERT_OK(config_.policy.Add("weight",
                                 PrivacyTuple{purpose_, 1, 1, 1}));
    ASSERT_OK(config_.sensitivities.SetAttributeSensitivity("weight", 2.0));
    for (int64_t i = 1; i <= 12; ++i) {
      int band = static_cast<int>((i - 1) / 4);  // 0, 1, 2.
      config_.preferences.ForProvider(i).Set(
          "weight", PrivacyTuple{purpose_, band, band, band});
      config_.thresholds[i] = 6.0;
    }
  }

  privacy::PrivacyConfig config_;
  PurposeId purpose_;
};

TEST(LinearExposureValueTest, MonotoneInLevelsAndScale) {
  privacy::PrivacyConfig config;
  PurposeId p = config.purposes.Register("p").value();
  PPDB_CHECK_OK(config.sensitivities.SetAttributeSensitivity("a", 2.0));
  privacy::HousePolicy narrow, wide;
  PPDB_CHECK_OK(narrow.Add("a", PrivacyTuple{p, 1, 1, 1}));
  PPDB_CHECK_OK(wide.Add("a", PrivacyTuple{p, 3, 3, 4}));
  DataValueModel model = MakeLinearExposureValue(1.0);
  EXPECT_GT(model(wide, config), model(narrow, config));
  DataValueModel doubled = MakeLinearExposureValue(2.0);
  EXPECT_DOUBLE_EQ(doubled(narrow, config), 2.0 * model(narrow, config));
  // Full exposure of a single sensitivity-2 attribute = 2 * scale.
  privacy::HousePolicy maxed;
  PPDB_CHECK_OK(maxed.Add("a", PrivacyTuple{p, 3, 3, 4}));
  EXPECT_DOUBLE_EQ(model(maxed, config), 2.0);
}

TEST_F(PolicySearchTest, RejectsBadOptions) {
  SearchOptions options;
  options.value_model = MakeLinearExposureValue(1.0);
  options.utility_per_provider = 0.0;
  EXPECT_TRUE(
      GreedyPolicySearch(config_, options).status().IsInvalidArgument());
  options.utility_per_provider = 1.0;
  options.value_model = nullptr;
  EXPECT_TRUE(
      GreedyPolicySearch(config_, options).status().IsInvalidArgument());
  privacy::PrivacyConfig empty;
  options.value_model = MakeLinearExposureValue(1.0);
  EXPECT_TRUE(
      GreedyPolicySearch(empty, options).status().IsFailedPrecondition());
}

TEST_F(PolicySearchTest, ZeroValueModelNarrowsToStopViolations) {
  // If exposure is worth nothing, the optimal policy keeps every provider:
  // the search narrows until nobody defaults.
  SearchOptions options;
  options.utility_per_provider = 1.0;
  options.value_model = MakeLinearExposureValue(0.0);
  ASSERT_OK_AND_ASSIGN(SearchResult result,
                       GreedyPolicySearch(config_, options));
  EXPECT_GE(result.best_utility, result.baseline_utility);
  // All 12 providers retained at the optimum.
  EXPECT_EQ(result.trajectory.empty() ? 12
                                      : result.trajectory.back().n_remaining,
            12);
}

TEST_F(PolicySearchTest, HighValueModelWidens) {
  // If exposure is worth a lot relative to the per-provider base utility,
  // the search widens even at the cost of defaults.
  SearchOptions options;
  options.utility_per_provider = 0.1;
  options.value_model = MakeLinearExposureValue(10.0);
  ASSERT_OK_AND_ASSIGN(SearchResult result,
                       GreedyPolicySearch(config_, options));
  EXPECT_GT(result.best_utility, result.baseline_utility);
  // The found policy is wider than the start on at least one dimension.
  PrivacyTuple best = result.best_policy.Find("weight", purpose_).value();
  EXPECT_GT(best.visibility + best.granularity + best.retention, 3);
}

TEST_F(PolicySearchTest, TrajectoryUtilitiesStrictlyImprove) {
  SearchOptions options;
  options.utility_per_provider = 1.0;
  options.value_model = MakeLinearExposureValue(3.0);
  ASSERT_OK_AND_ASSIGN(SearchResult result,
                       GreedyPolicySearch(config_, options));
  double previous = result.baseline_utility;
  for (const SearchStep& step : result.trajectory) {
    EXPECT_GT(step.utility, previous);
    previous = step.utility;
  }
  EXPECT_DOUBLE_EQ(result.best_utility,
                   result.trajectory.empty()
                       ? result.baseline_utility
                       : result.trajectory.back().utility);
}

TEST_F(PolicySearchTest, NarrowingDisabledNeverNarrows) {
  SearchOptions options;
  options.utility_per_provider = 1.0;
  options.value_model = MakeLinearExposureValue(0.0);
  options.allow_narrowing = false;
  ASSERT_OK_AND_ASSIGN(SearchResult result,
                       GreedyPolicySearch(config_, options));
  for (const SearchStep& step : result.trajectory) {
    EXPECT_EQ(step.delta, 1);
  }
}

TEST_F(PolicySearchTest, MaxStepsBoundsSearch) {
  SearchOptions options;
  options.utility_per_provider = 0.1;
  options.value_model = MakeLinearExposureValue(10.0);
  options.max_steps = 2;
  ASSERT_OK_AND_ASSIGN(SearchResult result,
                       GreedyPolicySearch(config_, options));
  EXPECT_LE(result.trajectory.size(), 2u);
}

TEST_F(PolicySearchTest, InputConfigUnchanged) {
  PrivacyTuple before = config_.policy.Find("weight", purpose_).value();
  SearchOptions options;
  options.utility_per_provider = 0.1;
  options.value_model = MakeLinearExposureValue(10.0);
  ASSERT_OK(GreedyPolicySearch(config_, options).status());
  EXPECT_EQ(config_.policy.Find("weight", purpose_).value(), before);
}

TEST_F(PolicySearchTest, BestExpansionPrefixFindsInteriorPeak) {
  auto schedule =
      WhatIfAnalyzer::UniformSchedule(Dimension::kGranularity, 3);
  // T grows fast then saturates; the crowd thins with each step.
  auto extra = [](int k) {
    return 2.0 * (1.0 - std::exp(-static_cast<double>(k)));
  };
  ASSERT_OK_AND_ASSIGN(
      PrefixResult result,
      BestExpansionPrefix(config_, schedule, 1.0, extra));
  ASSERT_EQ(result.utilities.size(), 4u);
  EXPECT_GE(result.best_prefix, 0);
  EXPECT_LE(result.best_prefix, 3);
  EXPECT_DOUBLE_EQ(
      result.best_utility,
      result.utilities[static_cast<size_t>(result.best_prefix)]);
  for (double utility : result.utilities) {
    EXPECT_LE(utility, result.best_utility);
  }
}

TEST_F(PolicySearchTest, BestExpansionPrefixValidation) {
  auto schedule =
      WhatIfAnalyzer::UniformSchedule(Dimension::kGranularity, 1);
  EXPECT_TRUE(BestExpansionPrefix(config_, schedule, 0.0, [](int) {
                return 0.0;
              }).status().IsInvalidArgument());
  EXPECT_TRUE(BestExpansionPrefix(config_, schedule, 1.0, nullptr)
                  .status()
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace ppdb::violation

#include "server/net/transport.h"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <string>

#include "common/rng.h"
#include "tests/test_util.h"

namespace ppdb::server::net {
namespace {

/// Blocking loopback client socket for driving the non-blocking server
/// side. Closes on destruction.
class ClientSocket {
 public:
  explicit ClientSocket(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    connected_ = ::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                           sizeof(addr)) == 0;
  }
  ~ClientSocket() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool connected() const { return connected_; }
  int fd() const { return fd_; }

  void Close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
};

/// Waits (bounded) until `fd` is readable.
bool WaitReadable(int fd, int timeout_ms = 2000) {
  pollfd p{fd, POLLIN, 0};
  return ::poll(&p, 1, timeout_ms) == 1;
}

TEST(RealTransportTest, ListenOnEphemeralPortAndRoundtrip) {
  RealTransport& transport = GetRealTransport();
  ASSERT_OK_AND_ASSIGN(int listen_fd,
                       transport.Listen("localhost", 0, /*backlog=*/8));
  ASSERT_OK_AND_ASSIGN(uint16_t port, transport.BoundPort(listen_fd));
  ASSERT_GT(port, 0);

  // No pending connection yet: non-blocking accept must not hang.
  EXPECT_EQ(transport.Accept(listen_fd).kind,
            AcceptResult::Kind::kWouldBlock);

  ClientSocket client(port);
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(WaitReadable(listen_fd));
  AcceptResult accepted = transport.Accept(listen_fd);
  ASSERT_EQ(accepted.kind, AcceptResult::Kind::kAccepted) << accepted.detail;

  // Client → server.
  ASSERT_EQ(::send(client.fd(), "hello", 5, 0), 5);
  ASSERT_TRUE(WaitReadable(accepted.fd));
  char buffer[16];
  IoResult read = transport.Read(accepted.fd, buffer, sizeof(buffer));
  ASSERT_EQ(read.kind, IoResult::Kind::kOk) << read.detail;
  EXPECT_EQ(std::string(buffer, read.bytes), "hello");

  // Empty socket: reads report would-block, not an error.
  EXPECT_EQ(transport.Read(accepted.fd, buffer, sizeof(buffer)).kind,
            IoResult::Kind::kWouldBlock);

  // Server → client.
  IoResult written = transport.Write(accepted.fd, "world", 5);
  ASSERT_EQ(written.kind, IoResult::Kind::kOk) << written.detail;
  EXPECT_EQ(written.bytes, 5u);
  ASSERT_TRUE(WaitReadable(client.fd()));
  EXPECT_EQ(::recv(client.fd(), buffer, sizeof(buffer), 0), 5);

  // Orderly shutdown surfaces as EOF.
  client.Close();
  ASSERT_TRUE(WaitReadable(accepted.fd));
  EXPECT_EQ(transport.Read(accepted.fd, buffer, sizeof(buffer)).kind,
            IoResult::Kind::kEof);

  transport.Close(accepted.fd);
  transport.Close(listen_fd);
}

TEST(RealTransportTest, WriteToHungUpPeerIsBrokenPipeNotSigpipe) {
  RealTransport& transport = GetRealTransport();
  ASSERT_OK_AND_ASSIGN(int listen_fd, transport.Listen("127.0.0.1", 0, 8));
  ASSERT_OK_AND_ASSIGN(uint16_t port, transport.BoundPort(listen_fd));

  ClientSocket client(port);
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(WaitReadable(listen_fd));
  AcceptResult accepted = transport.Accept(listen_fd);
  ASSERT_EQ(accepted.kind, AcceptResult::Kind::kAccepted);

  client.Close();
  // The first write after the hangup may still land in the kernel buffer;
  // keep writing until the failure surfaces. If MSG_NOSIGNAL were missing
  // this would SIGPIPE-kill the whole test binary, so merely reaching the
  // assertion is the point.
  IoResult last;
  for (int i = 0; i < 64; ++i) {
    last = transport.Write(accepted.fd, "x", 1);
    if (last.kind != IoResult::Kind::kOk) break;
  }
  EXPECT_TRUE(last.kind == IoResult::Kind::kBrokenPipe ||
              last.kind == IoResult::Kind::kReset)
      << IoResultKindName(last.kind);

  transport.Close(accepted.fd);
  transport.Close(listen_fd);
}

TEST(RealTransportTest, RejectsUnparseableListenAddress) {
  RealTransport& transport = GetRealTransport();
  Result<int> listening = transport.Listen("not-an-address", 0, 8);
  ASSERT_FALSE(listening.ok());
  EXPECT_EQ(listening.status().code(), StatusCode::kInvalidArgument);
}

TEST(FaultInjectingTransportTest, InjectsEveryFaultKindDeterministically) {
  // A null base is never reached when every probability is 1.0.
  TransportFaultOptions always;
  always.reset_read = 1.0;
  always.epipe_write = 1.0;
  always.accept_error = 1.0;
  FaultInjectingTransport faulty(&GetRealTransport(), Rng(7), always);

  char buffer[8];
  EXPECT_EQ(faulty.Read(-1, buffer, sizeof(buffer)).kind,
            IoResult::Kind::kReset);
  EXPECT_EQ(faulty.Write(-1, "x", 1).kind, IoResult::Kind::kBrokenPipe);
  EXPECT_EQ(faulty.Accept(-1).kind, AcceptResult::Kind::kSoftError);
  EXPECT_EQ(faulty.counters().resets, 1);
  EXPECT_EQ(faulty.counters().epipes, 1);
  EXPECT_EQ(faulty.counters().accept_errors, 1);
}

TEST(FaultInjectingTransportTest, SameSeedSameFaultSequence) {
  TransportFaultOptions options;
  options.eagain_read = 0.5;
  auto run = [&](uint64_t seed) {
    FaultInjectingTransport faulty(&GetRealTransport(), Rng(seed), options);
    std::string pattern;
    char buffer[1];
    for (int i = 0; i < 64; ++i) {
      // Injected EAGAINs never touch the (invalid) fd; real calls on fd -1
      // report kError, which distinguishes the two outcomes.
      IoResult io = faulty.Read(-1, buffer, 1);
      pattern += io.kind == IoResult::Kind::kWouldBlock ? 'W' : 'E';
    }
    return pattern;
  };
  EXPECT_EQ(run(42), run(42));
  EXPECT_NE(run(42), run(43));  // astronomically unlikely to collide
}

TEST(FaultInjectingTransportTest, ShortReadsAndWritesTruncateToOneByte) {
  RealTransport& real = GetRealTransport();
  TransportFaultOptions options;
  options.short_read = 1.0;
  options.short_write = 1.0;
  FaultInjectingTransport faulty(&real, Rng(1), options);

  ASSERT_OK_AND_ASSIGN(int listen_fd, faulty.Listen("127.0.0.1", 0, 8));
  ASSERT_OK_AND_ASSIGN(uint16_t port, faulty.BoundPort(listen_fd));
  ClientSocket client(port);
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(WaitReadable(listen_fd));
  AcceptResult accepted = faulty.Accept(listen_fd);
  ASSERT_EQ(accepted.kind, AcceptResult::Kind::kAccepted);

  ASSERT_EQ(::send(client.fd(), "abc", 3, 0), 3);
  ASSERT_TRUE(WaitReadable(accepted.fd));
  char buffer[8];
  IoResult read = faulty.Read(accepted.fd, buffer, sizeof(buffer));
  ASSERT_EQ(read.kind, IoResult::Kind::kOk);
  EXPECT_EQ(read.bytes, 1u);  // truncated: the rest stays in the kernel
  EXPECT_EQ(buffer[0], 'a');

  IoResult written = faulty.Write(accepted.fd, "xyz", 3);
  ASSERT_EQ(written.kind, IoResult::Kind::kOk);
  EXPECT_EQ(written.bytes, 1u);
  EXPECT_GE(faulty.counters().short_reads, 1);
  EXPECT_GE(faulty.counters().short_writes, 1);

  faulty.Close(accepted.fd);
  faulty.Close(listen_fd);
  EXPECT_EQ(faulty.open_fds(), 0);
}

TEST(FaultInjectingTransportTest, OpenFdAccountingTracksEveryPath) {
  FaultInjectingTransport faulty(&GetRealTransport(), Rng(1), {});
  EXPECT_EQ(faulty.open_fds(), 0);

  ASSERT_OK_AND_ASSIGN(int listen_fd, faulty.Listen("127.0.0.1", 0, 8));
  EXPECT_EQ(faulty.open_fds(), 1);

  ASSERT_OK_AND_ASSIGN(uint16_t port, faulty.BoundPort(listen_fd));
  ClientSocket client(port);
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(WaitReadable(listen_fd));
  AcceptResult accepted = faulty.Accept(listen_fd);
  ASSERT_EQ(accepted.kind, AcceptResult::Kind::kAccepted);
  EXPECT_EQ(faulty.open_fds(), 2);

  faulty.Close(accepted.fd);
  faulty.Close(listen_fd);
  EXPECT_EQ(faulty.open_fds(), 0);
}

}  // namespace
}  // namespace ppdb::server::net

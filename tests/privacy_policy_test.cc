#include <gtest/gtest.h>

#include "privacy/house_policy.h"
#include "privacy/provider_prefs.h"
#include "privacy/sensitivity.h"
#include "tests/test_util.h"

namespace ppdb::privacy {
namespace {

// --- HousePolicy --------------------------------------------------------------

class HousePolicyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    marketing_ = purposes_.Register("marketing").value();
    research_ = purposes_.Register("research").value();
  }

  ScaleSet scales_;
  PurposeRegistry purposes_;
  PurposeId marketing_, research_;
};

TEST_F(HousePolicyTest, AddAndFind) {
  HousePolicy hp;
  ASSERT_OK(hp.Add("weight", PrivacyTuple{marketing_, 1, 3, 3}));
  ASSERT_OK(hp.Add("weight", PrivacyTuple{research_, 2, 2, 4}));
  ASSERT_OK(hp.Add("age", PrivacyTuple{marketing_, 1, 2, 2}));
  EXPECT_EQ(hp.size(), 3);
  ASSERT_OK_AND_ASSIGN(PrivacyTuple t, hp.Find("weight", research_));
  EXPECT_EQ(t.retention, 4);
  EXPECT_TRUE(hp.Find("weight", 99).status().IsNotFound());
  EXPECT_TRUE(hp.Find("height", marketing_).status().IsNotFound());
}

TEST_F(HousePolicyTest, RejectsDuplicateAttributePurposePair) {
  HousePolicy hp;
  ASSERT_OK(hp.Add("weight", PrivacyTuple{marketing_, 1, 3, 3}));
  EXPECT_TRUE(hp.Add("weight", PrivacyTuple{marketing_, 0, 0, 0})
                  .IsAlreadyExists());
}

TEST_F(HousePolicyTest, RemoveTuple) {
  HousePolicy hp;
  ASSERT_OK(hp.Add("weight", PrivacyTuple{marketing_, 1, 3, 3}));
  ASSERT_OK(hp.Remove("weight", marketing_));
  EXPECT_TRUE(hp.empty());
  EXPECT_TRUE(hp.Remove("weight", marketing_).IsNotFound());
}

TEST_F(HousePolicyTest, ForAttributeSelectsAll) {
  HousePolicy hp;
  ASSERT_OK(hp.Add("weight", PrivacyTuple{marketing_, 1, 3, 3}));
  ASSERT_OK(hp.Add("weight", PrivacyTuple{research_, 2, 2, 4}));
  ASSERT_OK(hp.Add("age", PrivacyTuple{marketing_, 1, 2, 2}));
  EXPECT_EQ(hp.ForAttribute("weight").size(), 2u);
  EXPECT_EQ(hp.ForAttribute("age").size(), 1u);
  EXPECT_TRUE(hp.ForAttribute("height").empty());
}

TEST_F(HousePolicyTest, AttributesAndPurposesDeduplicated) {
  HousePolicy hp;
  ASSERT_OK(hp.Add("weight", PrivacyTuple{marketing_, 1, 3, 3}));
  ASSERT_OK(hp.Add("weight", PrivacyTuple{research_, 2, 2, 4}));
  ASSERT_OK(hp.Add("age", PrivacyTuple{marketing_, 1, 2, 2}));
  EXPECT_EQ(hp.Attributes(), (std::vector<std::string>{"weight", "age"}));
  EXPECT_EQ(hp.Purposes(), (std::vector<PurposeId>{marketing_, research_}));
}

TEST_F(HousePolicyTest, ValidateAgainstScales) {
  HousePolicy hp;
  ASSERT_OK(hp.Add("weight", PrivacyTuple{marketing_, 1, 3, 3}));
  EXPECT_OK(hp.ValidateAgainst(scales_));
  ASSERT_OK(hp.Add("age", PrivacyTuple{marketing_, 9, 0, 0}));
  EXPECT_TRUE(hp.ValidateAgainst(scales_).IsOutOfRange());
}

TEST_F(HousePolicyTest, WidenedClampsAtScaleTop) {
  HousePolicy hp;
  ASSERT_OK(hp.Add("weight", PrivacyTuple{marketing_, 1, 3, 3}));
  ASSERT_OK(hp.Add("age", PrivacyTuple{marketing_, 3, 2, 2}));
  ASSERT_OK_AND_ASSIGN(HousePolicy wider,
                       hp.Widened(Dimension::kVisibility, 1, scales_));
  EXPECT_EQ(wider.Find("weight", marketing_)->visibility, 2);
  // Already at max 3: stays clamped.
  EXPECT_EQ(wider.Find("age", marketing_)->visibility, 3);
  // Original untouched (value semantics).
  EXPECT_EQ(hp.Find("weight", marketing_)->visibility, 1);
}

TEST_F(HousePolicyTest, WidenedNegativeDeltaNarrowsAndClampsAtZero) {
  HousePolicy hp;
  ASSERT_OK(hp.Add("weight", PrivacyTuple{marketing_, 1, 3, 3}));
  ASSERT_OK_AND_ASSIGN(HousePolicy narrower,
                       hp.Widened(Dimension::kVisibility, -5, scales_));
  EXPECT_EQ(narrower.Find("weight", marketing_)->visibility, 0);
}

TEST_F(HousePolicyTest, WidenedForAttributeTouchesOnlyThatAttribute) {
  HousePolicy hp;
  ASSERT_OK(hp.Add("weight", PrivacyTuple{marketing_, 1, 1, 1}));
  ASSERT_OK(hp.Add("age", PrivacyTuple{marketing_, 1, 1, 1}));
  ASSERT_OK_AND_ASSIGN(
      HousePolicy wider,
      hp.WidenedForAttribute("weight", Dimension::kGranularity, 2, scales_));
  EXPECT_EQ(wider.Find("weight", marketing_)->granularity, 3);
  EXPECT_EQ(wider.Find("age", marketing_)->granularity, 1);
  EXPECT_TRUE(
      hp.WidenedForAttribute("height", Dimension::kGranularity, 1, scales_)
          .status()
          .IsNotFound());
}

TEST_F(HousePolicyTest, WidenedRejectsPurposeDimension) {
  HousePolicy hp;
  ASSERT_OK(hp.Add("weight", PrivacyTuple{marketing_, 1, 1, 1}));
  EXPECT_TRUE(hp.Widened(Dimension::kPurpose, 1, scales_)
                  .status()
                  .IsInvalidArgument());
}

// --- ProviderPreferences -------------------------------------------------------

TEST(ProviderPreferencesTest, AddFindRemove) {
  ProviderPreferences prefs(42);
  EXPECT_EQ(prefs.provider(), 42);
  ASSERT_OK(prefs.Add("weight", PrivacyTuple{0, 1, 2, 3}));
  ASSERT_OK_AND_ASSIGN(PrivacyTuple t, prefs.Find("weight", 0));
  EXPECT_EQ(t.granularity, 2);
  EXPECT_TRUE(prefs.Add("weight", PrivacyTuple{0, 0, 0, 0}).IsAlreadyExists());
  ASSERT_OK(prefs.Remove("weight", 0));
  EXPECT_TRUE(prefs.empty());
  EXPECT_TRUE(prefs.Remove("weight", 0).IsNotFound());
}

TEST(ProviderPreferencesTest, SetUpserts) {
  ProviderPreferences prefs(1);
  prefs.Set("weight", PrivacyTuple{0, 1, 1, 1});
  prefs.Set("weight", PrivacyTuple{0, 2, 2, 2});
  EXPECT_EQ(prefs.size(), 1);
  EXPECT_EQ(prefs.Find("weight", 0)->visibility, 2);
}

TEST(ProviderPreferencesTest, EffectivePreferenceDefImplicitZero) {
  ProviderPreferences prefs(1);
  ASSERT_OK(prefs.Add("weight", PrivacyTuple{0, 2, 2, 2}));
  // Stated purpose: the stated tuple.
  EXPECT_EQ(prefs.EffectivePreference("weight", 0).visibility, 2);
  // Unstated purpose 1: Def. 1's implicit <i, a, pr, 0, 0, 0>.
  PrivacyTuple implicit = prefs.EffectivePreference("weight", 1);
  EXPECT_EQ(implicit, PrivacyTuple::ZeroFor(1));
  // Unstated attribute: also implicit zero.
  EXPECT_EQ(prefs.EffectivePreference("age", 0), PrivacyTuple::ZeroFor(0));
}

TEST(ProviderPreferencesTest, ForAttribute) {
  ProviderPreferences prefs(1);
  ASSERT_OK(prefs.Add("weight", PrivacyTuple{0, 1, 1, 1}));
  ASSERT_OK(prefs.Add("weight", PrivacyTuple{1, 2, 2, 2}));
  ASSERT_OK(prefs.Add("age", PrivacyTuple{0, 1, 1, 1}));
  EXPECT_EQ(prefs.ForAttribute("weight").size(), 2u);
}

TEST(ProviderPreferencesTest, ValidateAgainstScales) {
  ScaleSet scales;
  ProviderPreferences prefs(1);
  ASSERT_OK(prefs.Add("weight", PrivacyTuple{0, 1, 1, 1}));
  EXPECT_OK(prefs.ValidateAgainst(scales));
  ASSERT_OK(prefs.Add("age", PrivacyTuple{0, 0, 7, 0}));
  EXPECT_TRUE(prefs.ValidateAgainst(scales).IsOutOfRange());
}

// --- PreferenceStore ------------------------------------------------------------

TEST(PreferenceStoreTest, ForProviderCreatesOnDemand) {
  PreferenceStore store;
  EXPECT_FALSE(store.Contains(5));
  ProviderPreferences& prefs = store.ForProvider(5);
  EXPECT_EQ(prefs.provider(), 5);
  EXPECT_TRUE(store.Contains(5));
  EXPECT_EQ(store.num_providers(), 1);
}

TEST(PreferenceStoreTest, FindIsReadOnly) {
  PreferenceStore store;
  EXPECT_TRUE(store.Find(5).status().IsNotFound());
  store.ForProvider(5).Set("weight", PrivacyTuple{0, 1, 1, 1});
  ASSERT_OK_AND_ASSIGN(const ProviderPreferences* prefs, store.Find(5));
  EXPECT_EQ(prefs->size(), 1);
}

TEST(PreferenceStoreTest, EraseProvider) {
  PreferenceStore store;
  store.ForProvider(5);
  ASSERT_OK(store.Erase(5));
  EXPECT_FALSE(store.Contains(5));
  EXPECT_TRUE(store.Erase(5).IsNotFound());
}

TEST(PreferenceStoreTest, ProviderIdsAscending) {
  PreferenceStore store;
  store.ForProvider(9);
  store.ForProvider(3);
  store.ForProvider(7);
  EXPECT_EQ(store.ProviderIds(), (std::vector<ProviderId>{3, 7, 9}));
}

// --- SensitivityModel -------------------------------------------------------------

TEST(DimensionSensitivityTest, ForDimensionAndValidate) {
  DimensionSensitivity s{2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(s.ForDimension(Dimension::kVisibility).value(), 3.0);
  EXPECT_DOUBLE_EQ(s.ForDimension(Dimension::kGranularity).value(), 4.0);
  EXPECT_DOUBLE_EQ(s.ForDimension(Dimension::kRetention).value(), 5.0);
  EXPECT_TRUE(
      s.ForDimension(Dimension::kPurpose).status().IsInvalidArgument());
  EXPECT_OK(s.Validate());
  DimensionSensitivity bad{-1.0, 1.0, 1.0, 1.0};
  EXPECT_TRUE(bad.Validate().IsInvalidArgument());
}

TEST(SensitivityModelTest, DefaultsToOne) {
  SensitivityModel model;
  EXPECT_DOUBLE_EQ(model.AttributeSensitivity("weight", 0), 1.0);
  DimensionSensitivity s = model.ProviderSensitivity(1, "weight", 0);
  EXPECT_DOUBLE_EQ(s.value, 1.0);
  EXPECT_DOUBLE_EQ(s.granularity, 1.0);
}

TEST(SensitivityModelTest, AttributeDefaultsAndOverrides) {
  SensitivityModel model;
  ASSERT_OK(model.SetAttributeSensitivity("weight", 4.0));
  EXPECT_DOUBLE_EQ(model.AttributeSensitivity("weight", 0), 4.0);
  EXPECT_DOUBLE_EQ(model.AttributeSensitivity("weight", 1), 4.0);
  ASSERT_OK(model.SetAttributeSensitivityForPurpose("weight", 1, 9.0));
  EXPECT_DOUBLE_EQ(model.AttributeSensitivity("weight", 1), 9.0);
  EXPECT_DOUBLE_EQ(model.AttributeSensitivity("weight", 0), 4.0);
}

TEST(SensitivityModelTest, ProviderDefaultsAndOverrides) {
  SensitivityModel model;
  ASSERT_OK(model.SetProviderSensitivity(1, "weight",
                                         DimensionSensitivity{3, 1, 5, 2}));
  EXPECT_DOUBLE_EQ(model.ProviderSensitivity(1, "weight", 0).granularity,
                   5.0);
  ASSERT_OK(model.SetProviderSensitivityForPurpose(
      1, "weight", 1, DimensionSensitivity{1, 1, 1, 1}));
  EXPECT_DOUBLE_EQ(model.ProviderSensitivity(1, "weight", 1).granularity,
                   1.0);
  EXPECT_DOUBLE_EQ(model.ProviderSensitivity(1, "weight", 0).granularity,
                   5.0);
  // Unknown provider: all ones.
  EXPECT_DOUBLE_EQ(model.ProviderSensitivity(2, "weight", 0).value, 1.0);
}

TEST(SensitivityModelTest, RejectsNegative) {
  SensitivityModel model;
  EXPECT_TRUE(
      model.SetAttributeSensitivity("weight", -1.0).IsInvalidArgument());
  EXPECT_TRUE(model
                  .SetProviderSensitivity(
                      1, "weight", DimensionSensitivity{1, -2, 1, 1})
                  .IsInvalidArgument());
}

TEST(SensitivityModelTest, IterationViewsExposeExplicitEntries) {
  SensitivityModel model;
  ASSERT_OK(model.SetAttributeSensitivity("weight", 4.0));
  ASSERT_OK(model.SetProviderSensitivity(1, "weight",
                                         DimensionSensitivity{}));
  EXPECT_EQ(model.attribute_defaults().size(), 1u);
  EXPECT_EQ(model.provider_defaults().size(), 1u);
  EXPECT_TRUE(model.attribute_overrides().empty());
  EXPECT_TRUE(model.provider_overrides().empty());
}

}  // namespace
}  // namespace ppdb::privacy

#include "violation/what_if.h"

#include <gtest/gtest.h>

#include <cmath>

#include "tests/test_util.h"

namespace ppdb::violation {
namespace {

using privacy::Dimension;
using privacy::PrivacyTuple;
using privacy::PurposeId;

// Ten providers with ascending tolerance: provider i prefers level i/3 on
// each dimension and has threshold i*2, so widening the policy peels them
// off one band at a time.
class WhatIfTest : public ::testing::Test {
 protected:
  void SetUp() override {
    purpose_ = config_.purposes.Register("service").value();
    ASSERT_OK(config_.policy.Add("weight", PrivacyTuple::ZeroFor(purpose_)));
    for (int64_t i = 1; i <= 10; ++i) {
      int level = static_cast<int>(i / 3);
      config_.preferences.ForProvider(i).Set(
          "weight", PrivacyTuple{purpose_, level, level, level});
      config_.thresholds[i] = static_cast<double>(i) * 2.0;
    }
  }

  privacy::PrivacyConfig config_;
  PurposeId purpose_;
};

TEST_F(WhatIfTest, BaselineHasNoViolations) {
  WhatIfAnalyzer analyzer(&config_, {});
  ASSERT_OK_AND_ASSIGN(auto points, analyzer.RunSchedule({}));
  ASSERT_EQ(points.size(), 1u);
  EXPECT_EQ(points[0].step_index, 0);
  EXPECT_DOUBLE_EQ(points[0].p_violation, 0.0);
  EXPECT_DOUBLE_EQ(points[0].p_default, 0.0);
  EXPECT_EQ(points[0].n_remaining, 10);
}

TEST_F(WhatIfTest, UniformScheduleBuilds) {
  auto steps =
      WhatIfAnalyzer::UniformSchedule(Dimension::kGranularity, 3);
  ASSERT_EQ(steps.size(), 3u);
  EXPECT_EQ(steps[0].dimension, Dimension::kGranularity);
  EXPECT_EQ(steps[0].delta, 1);
  EXPECT_FALSE(steps[0].attribute.has_value());
}

TEST_F(WhatIfTest, ViolationAndDefaultMonotoneUnderWidening) {
  WhatIfAnalyzer::Options options;
  options.utility_per_provider = 1.0;
  WhatIfAnalyzer analyzer(&config_, options);
  ASSERT_OK_AND_ASSIGN(
      auto points,
      analyzer.RunSchedule(
          WhatIfAnalyzer::UniformSchedule(Dimension::kGranularity, 3)));
  ASSERT_EQ(points.size(), 4u);
  for (size_t k = 1; k < points.size(); ++k) {
    EXPECT_GE(points[k].p_violation, points[k - 1].p_violation);
    EXPECT_GE(points[k].total_violations, points[k - 1].total_violations);
    EXPECT_GE(points[k].p_default, points[k - 1].p_default);
    EXPECT_LE(points[k].n_remaining, points[k - 1].n_remaining);
  }
  // Widening to the top of every dimension violates the tight providers.
  EXPECT_GT(points.back().p_violation, 0.0);
}

TEST_F(WhatIfTest, UtilityAccountingConsistent) {
  WhatIfAnalyzer::Options options;
  options.utility_per_provider = 2.0;
  options.extra_utility_per_step = 0.5;
  WhatIfAnalyzer analyzer(&config_, options);
  ASSERT_OK_AND_ASSIGN(
      auto points,
      analyzer.RunSchedule(
          WhatIfAnalyzer::UniformSchedule(Dimension::kVisibility, 2)));
  for (const ExpansionPoint& p : points) {
    EXPECT_DOUBLE_EQ(p.utility_current, 10 * 2.0);
    EXPECT_DOUBLE_EQ(p.extra_utility, 0.5 * p.step_index);
    EXPECT_DOUBLE_EQ(
        p.utility_future,
        static_cast<double>(p.n_remaining) * (2.0 + p.extra_utility));
    EXPECT_EQ(p.justified, p.utility_future > p.utility_current);
    EXPECT_EQ(p.n_remaining, 10 - p.num_defaulted);
  }
}

TEST_F(WhatIfTest, BreakEvenMatchesEq31) {
  WhatIfAnalyzer::Options options;
  options.utility_per_provider = 3.0;
  WhatIfAnalyzer analyzer(&config_, options);
  ASSERT_OK_AND_ASSIGN(
      auto points,
      analyzer.RunSchedule(
          WhatIfAnalyzer::UniformSchedule(Dimension::kGranularity, 3)));
  for (const ExpansionPoint& p : points) {
    if (p.n_remaining > 0) {
      EXPECT_DOUBLE_EQ(p.break_even_extra_utility,
                       3.0 * (10.0 / p.n_remaining - 1.0));
    } else {
      EXPECT_TRUE(std::isinf(p.break_even_extra_utility));
    }
  }
}

TEST_F(WhatIfTest, AttributeScopedStepOnlyTouchesThatAttribute) {
  ASSERT_OK(config_.policy.Add("age", PrivacyTuple::ZeroFor(purpose_)));
  WhatIfAnalyzer analyzer(&config_, {});
  std::vector<ExpansionStep> steps = {
      ExpansionStep{Dimension::kVisibility, 2, "age"}};
  ASSERT_OK_AND_ASSIGN(auto points, analyzer.RunSchedule(steps));
  ASSERT_EQ(points.size(), 2u);
  EXPECT_EQ(points[1].policy.Find("age", purpose_)->visibility, 2);
  EXPECT_EQ(points[1].policy.Find("weight", purpose_)->visibility, 0);
}

TEST_F(WhatIfTest, UnknownAttributeStepErrors) {
  WhatIfAnalyzer analyzer(&config_, {});
  std::vector<ExpansionStep> steps = {
      ExpansionStep{Dimension::kVisibility, 1, "height"}};
  EXPECT_TRUE(analyzer.RunSchedule(steps).status().IsNotFound());
}

TEST_F(WhatIfTest, OriginalConfigNeverMutated) {
  WhatIfAnalyzer analyzer(&config_, {});
  ASSERT_OK(analyzer
                .RunSchedule(WhatIfAnalyzer::UniformSchedule(
                    Dimension::kGranularity, 3))
                .status());
  EXPECT_EQ(config_.policy.Find("weight", purpose_)->granularity, 0);
}

TEST_F(WhatIfTest, DetrimentalEffectAppearsWhenTGainTooSmall) {
  // The paper's headline: with insufficient T per step, utility_future
  // eventually drops below utility_current.
  WhatIfAnalyzer::Options options;
  options.utility_per_provider = 1.0;
  options.extra_utility_per_step = 0.01;  // Tiny gain per widening step.
  WhatIfAnalyzer analyzer(&config_, options);
  ASSERT_OK_AND_ASSIGN(
      auto points,
      analyzer.RunSchedule(
          WhatIfAnalyzer::UniformSchedule(Dimension::kGranularity, 3)));
  EXPECT_FALSE(points.back().justified);
  EXPECT_LT(points.back().utility_future, points.back().utility_current);
}

}  // namespace
}  // namespace ppdb::violation

// Bitwise equivalence of the batched severity kernel across dispatch
// targets: every compiled SIMD path must produce diffs and conf values
// bit-for-bit identical to the scalar reference — at the kernel level
// (random SoA batches, including remainder tails and inactive lanes),
// against the pair-at-a-time `Conflict()` oracle, and end-to-end through
// `ViolationDetector::Analyze` at several thread counts. Also covers the
// dispatch controls: ForceTarget, ClearForcedTarget and the
// PPDB_KERNEL_DISPATCH environment override.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/rng.h"
#include "privacy/config.h"
#include "sim/population.h"
#include "tests/test_util.h"
#include "violation/conflict.h"
#include "violation/detector.h"
#include "violation/kernel/severity_kernel.h"

namespace ppdb::violation {
namespace {

using kernel::ConfInput;
using kernel::ConfOutput;
using kernel::Target;
using privacy::PrivacyTuple;

/// Supported non-scalar targets compiled into this binary.
std::vector<Target> SimdTargets() {
  std::vector<Target> out;
  for (Target t : kernel::CompiledTargets()) {
    if (t != Target::kScalar && kernel::TargetSupported(t)) out.push_back(t);
  }
  return out;
}

bool RunDirect(Target target, const ConfInput& in, const ConfOutput& out,
               size_t n) {
  switch (target) {
    case Target::kScalar:
      return kernel::ConfKernelScalar(in, out, n);
#if PPDB_KERNEL_HAVE_AVX2
    case Target::kAvx2:
      return kernel::ConfKernelAvx2(in, out, n);
#endif
#if PPDB_KERNEL_HAVE_NEON
    case Target::kNeon:
      return kernel::ConfKernelNeon(in, out, n);
#endif
    default:
      ADD_FAILURE() << "target not compiled in";
      return false;
  }
}

/// One owned SoA batch plus views into it.
struct Batch {
  std::vector<int32_t> pref_v, pref_g, pref_r;
  std::vector<int32_t> pol_v, pol_g, pol_r;
  std::vector<double> attr_sens, sens_val, sens_v, sens_g, sens_r;
  std::vector<int32_t> active;
  kernel::RowScratch scratch;

  ConfInput In() const {
    ConfInput in;
    in.pref_v = pref_v.data();
    in.pref_g = pref_g.data();
    in.pref_r = pref_r.data();
    in.pol_v = pol_v.data();
    in.pol_g = pol_g.data();
    in.pol_r = pol_r.data();
    in.attr_sens = attr_sens.data();
    in.sens_val = sens_val.data();
    in.sens_v = sens_v.data();
    in.sens_g = sens_g.data();
    in.sens_r = sens_r.data();
    in.active = active.data();
    return in;
  }
};

/// A random batch: small non-negative levels, sensitivities drawn from a
/// mix of zero, fractional, unit and large values, and (optionally) a
/// fraction of inactive lanes.
Batch MakeBatch(Rng& rng, size_t n, double inactive_fraction) {
  Batch b;
  const auto level = [&] { return static_cast<int32_t>(rng.NextInt(0, 6)); };
  const auto sens = [&] {
    constexpr double kValues[] = {0.0, 0.25, 0.5, 1.0, 1.5, 3.0, 100.0};
    return kValues[rng.NextBounded(std::size(kValues))];
  };
  for (size_t j = 0; j < n; ++j) {
    b.pref_v.push_back(level());
    b.pref_g.push_back(level());
    b.pref_r.push_back(level());
    b.pol_v.push_back(level());
    b.pol_g.push_back(level());
    b.pol_r.push_back(level());
    b.attr_sens.push_back(sens());
    b.sens_val.push_back(sens());
    b.sens_v.push_back(sens());
    b.sens_g.push_back(sens());
    b.sens_r.push_back(sens());
    b.active.push_back(rng.NextBool(inactive_fraction) ? 0 : -1);
  }
  b.scratch.Resize(n);
  return b;
}

/// Bit-pattern equality: catches +0.0 vs -0.0, which EXPECT_EQ on doubles
/// would miss.
void ExpectSameBits(double a, double b, size_t j) {
  EXPECT_EQ(std::bit_cast<uint64_t>(a), std::bit_cast<uint64_t>(b))
      << "lane " << j << ": " << a << " vs " << b;
}

TEST(SeverityKernelTest, ScalarMatchesConflictOracle) {
  // The scalar kernel is the reference every SIMD path is compared to, so
  // it must itself reproduce the pair-at-a-time Conflict() bit-for-bit.
  privacy::SensitivityModel sensitivities;
  ASSERT_OK(sensitivities.SetAttributeSensitivity("a", 2.5));
  ASSERT_OK(sensitivities.SetProviderSensitivity(
      /*provider=*/7, "a", {0.5, 1.0, 3.0, 0.25}));
  Rng rng(42);
  for (int trial = 0; trial < 200; ++trial) {
    const privacy::PurposeId purpose = 1;
    PrivacyTuple pref_tuple{purpose, static_cast<int>(rng.NextInt(0, 6)),
                            static_cast<int>(rng.NextInt(0, 6)),
                            static_cast<int>(rng.NextInt(0, 6))};
    PrivacyTuple pol_tuple{purpose, static_cast<int>(rng.NextInt(0, 6)),
                           static_cast<int>(rng.NextInt(0, 6)),
                           static_cast<int>(rng.NextInt(0, 6))};
    privacy::PreferenceTuple pref{7, "a", pref_tuple};
    privacy::PolicyTuple policy{"a", pol_tuple};
    ConflictBreakdown oracle = Conflict(pref, policy, sensitivities);

    Batch b = MakeBatch(rng, 1, 0.0);
    b.pref_v[0] = pref_tuple.visibility;
    b.pref_g[0] = pref_tuple.granularity;
    b.pref_r[0] = pref_tuple.retention;
    b.pol_v[0] = pol_tuple.visibility;
    b.pol_g[0] = pol_tuple.granularity;
    b.pol_r[0] = pol_tuple.retention;
    b.attr_sens[0] = sensitivities.AttributeSensitivity("a", purpose);
    const privacy::DimensionSensitivity s =
        sensitivities.ProviderSensitivity(7, "a", purpose);
    b.sens_val[0] = s.value;
    b.sens_v[0] = s.visibility;
    b.sens_g[0] = s.granularity;
    b.sens_r[0] = s.retention;
    b.active[0] = -1;

    kernel::ConfKernelScalar(b.In(), b.scratch.Output(), 1);
    EXPECT_EQ(b.scratch.diff_v[0], oracle.per_dimension[0].diff);
    EXPECT_EQ(b.scratch.diff_g[0], oracle.per_dimension[1].diff);
    EXPECT_EQ(b.scratch.diff_r[0], oracle.per_dimension[2].diff);
    ExpectSameBits(b.scratch.conf[0], oracle.total, 0);
  }
}

TEST(SeverityKernelTest, SimdTargetsMatchScalarBitwise) {
  Rng rng(1234);
  // Sizes straddle the vector widths so both full iterations and scalar
  // remainder tails (n mod 4/8) are exercised.
  const size_t sizes[] = {0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 31, 64, 1000};
  for (Target target : SimdTargets()) {
    for (size_t n : sizes) {
      for (double inactive : {0.0, 0.3, 1.0}) {
        SCOPED_TRACE(std::string(kernel::TargetName(target)) + " n=" +
                     std::to_string(n) + " inactive=" +
                     std::to_string(inactive));
        Batch b = MakeBatch(rng, n, inactive);
        kernel::RowScratch simd_out;
        simd_out.Resize(n);
        const bool scalar_any =
            kernel::ConfKernelScalar(b.In(), b.scratch.Output(), n);
        const bool simd_any = RunDirect(target, b.In(), simd_out.Output(), n);
        EXPECT_EQ(scalar_any, simd_any);
        for (size_t j = 0; j < n; ++j) {
          EXPECT_EQ(b.scratch.diff_v[j], simd_out.diff_v[j]) << "lane " << j;
          EXPECT_EQ(b.scratch.diff_g[j], simd_out.diff_g[j]) << "lane " << j;
          EXPECT_EQ(b.scratch.diff_r[j], simd_out.diff_r[j]) << "lane " << j;
          ExpectSameBits(b.scratch.conf[j], simd_out.conf[j], j);
        }
      }
    }
  }
}

TEST(SeverityKernelTest, InactiveLanesProducePositiveZero) {
  // Inactive lanes must yield exactly +0.0 even when the sensitivities
  // would make 0 × sens ill-defined (the mask is applied after the
  // arithmetic in the SIMD paths).
  Rng rng(5);
  Batch b = MakeBatch(rng, 8, 0.0);
  for (size_t j = 0; j < 8; ++j) b.active[j] = 0;
  for (Target target : kernel::CompiledTargets()) {
    if (!kernel::TargetSupported(target)) continue;
    const bool any = RunDirect(target, b.In(), b.scratch.Output(), 8);
    EXPECT_FALSE(any);
    for (size_t j = 0; j < 8; ++j) {
      EXPECT_EQ(b.scratch.diff_v[j], 0);
      EXPECT_EQ(b.scratch.diff_g[j], 0);
      EXPECT_EQ(b.scratch.diff_r[j], 0);
      EXPECT_EQ(std::bit_cast<uint64_t>(b.scratch.conf[j]), 0u)
          << "lane " << j;
    }
  }
}

TEST(SeverityKernelTest, DiffKernelMatchesScalar) {
  Rng rng(77);
  for (Target target : SimdTargets()) {
    for (size_t n : {0ul, 3ul, 8ul, 13ul, 257ul}) {
      std::vector<int32_t> pref(n), policy(n), scalar(n), simd(n);
      for (size_t j = 0; j < n; ++j) {
        pref[j] = static_cast<int32_t>(rng.NextInt(0, 9));
        policy[j] = static_cast<int32_t>(rng.NextInt(0, 9));
      }
      kernel::DiffKernelScalar(pref.data(), policy.data(), scalar.data(), n);
      switch (target) {
#if PPDB_KERNEL_HAVE_AVX2
        case Target::kAvx2:
          kernel::DiffKernelAvx2(pref.data(), policy.data(), simd.data(), n);
          break;
#endif
#if PPDB_KERNEL_HAVE_NEON
        case Target::kNeon:
          kernel::DiffKernelNeon(pref.data(), policy.data(), simd.data(), n);
          break;
#endif
        default:
          continue;
      }
      EXPECT_EQ(scalar, simd) << kernel::TargetName(target) << " n=" << n;
    }
  }
}

/// Dispatch-control tests restore auto selection on exit so the order of
/// tests in this binary cannot leak a forced target.
class KernelDispatchTest : public ::testing::Test {
 protected:
  void TearDown() override {
    kernel::ClearForcedTarget();
    ::unsetenv("PPDB_KERNEL_DISPATCH");
    kernel::ReloadEnvForTest();
  }
};

TEST_F(KernelDispatchTest, CompiledTargetsStartWithScalar) {
  const std::vector<Target> targets = kernel::CompiledTargets();
  ASSERT_FALSE(targets.empty());
  EXPECT_EQ(targets[0], Target::kScalar);
  EXPECT_TRUE(kernel::TargetSupported(Target::kScalar));
}

TEST_F(KernelDispatchTest, ForceTargetPinsSelection) {
  ASSERT_OK(kernel::ForceTarget(Target::kScalar));
  EXPECT_EQ(kernel::SelectedTarget(), Target::kScalar);
  for (Target t : SimdTargets()) {
    ASSERT_OK(kernel::ForceTarget(t));
    EXPECT_EQ(kernel::SelectedTarget(), t);
  }
  kernel::ClearForcedTarget();
  EXPECT_TRUE(kernel::TargetSupported(kernel::SelectedTarget()));
}

TEST_F(KernelDispatchTest, ForceTargetRejectsUnsupported) {
  for (Target t : {Target::kAvx2, Target::kNeon}) {
    if (kernel::TargetSupported(t)) continue;
    EXPECT_FALSE(kernel::ForceTarget(t).ok());
  }
  // x86-64 and aarch64 are mutually exclusive, so at least one SIMD target
  // is always unsupported and the rejection path always runs.
  EXPECT_FALSE(kernel::TargetSupported(Target::kAvx2) &&
               kernel::TargetSupported(Target::kNeon));
}

TEST_F(KernelDispatchTest, EnvVarSelectsTarget) {
  ASSERT_EQ(::setenv("PPDB_KERNEL_DISPATCH", "scalar", 1), 0);
  kernel::ReloadEnvForTest();
  EXPECT_EQ(kernel::SelectedTarget(), Target::kScalar);
  // A forced target outranks the environment.
  for (Target t : SimdTargets()) {
    ASSERT_OK(kernel::ForceTarget(t));
    EXPECT_EQ(kernel::SelectedTarget(), t);
  }
  kernel::ClearForcedTarget();
  EXPECT_EQ(kernel::SelectedTarget(), Target::kScalar);
}

TEST_F(KernelDispatchTest, BogusEnvValueFallsBackToAuto) {
  ASSERT_EQ(::setenv("PPDB_KERNEL_DISPATCH", "avx512-typo", 1), 0);
  kernel::ReloadEnvForTest();
  const Target selected = kernel::SelectedTarget();
  EXPECT_TRUE(kernel::TargetSupported(selected));
  ::unsetenv("PPDB_KERNEL_DISPATCH");
  kernel::ReloadEnvForTest();
  EXPECT_EQ(kernel::SelectedTarget(), selected);
}

/// End-to-end: full Analyze reports must be identical whichever kernel
/// target dispatch selects, at every thread count. Configs are randomized
/// per trial: purpose counts, level ranges, preference coverage (stated,
/// unstated, non-policy attributes), provider σ entries for a subset of
/// providers, and providers absent from the preference store.
class KernelAnalyzeEquivalenceTest : public ::testing::TestWithParam<int> {
 protected:
  void TearDown() override { kernel::ClearForcedTarget(); }

  static privacy::PrivacyConfig MakeRandomConfig(uint64_t seed,
                                                 int64_t providers) {
    Rng rng(seed);
    privacy::PrivacyConfig config;
    const int num_purposes = static_cast<int>(rng.NextInt(1, 3));
    std::vector<privacy::PurposeId> purposes;
    for (int p = 0; p < num_purposes; ++p) {
      purposes.push_back(
          config.purposes.Register("purpose" + std::to_string(p)).value());
    }
    const int num_attrs = static_cast<int>(rng.NextInt(3, 7));
    std::vector<std::string> attrs;
    for (int a = 0; a < num_attrs; ++a) {
      attrs.push_back("attr" + std::to_string(a));
    }
    const auto tuple = [&](privacy::PurposeId purpose) {
      return PrivacyTuple{purpose, static_cast<int>(rng.NextInt(0, 5)),
                          static_cast<int>(rng.NextInt(0, 5)),
                          static_cast<int>(rng.NextInt(0, 5))};
    };
    for (const std::string& attr : attrs) {
      for (privacy::PurposeId purpose : purposes) {
        if (rng.NextBool(0.8)) {
          PPDB_CHECK_OK(config.policy.Add(attr, tuple(purpose)));
        }
      }
      if (rng.NextBool(0.7)) {
        PPDB_CHECK_OK(config.sensitivities.SetAttributeSensitivity(
            attr, rng.NextDouble() * 4.0));
      }
      if (rng.NextBool(0.3)) {
        PPDB_CHECK_OK(config.sensitivities.SetAttributeSensitivityForPurpose(
            attr, purposes[0], rng.NextDouble() * 4.0));
      }
    }
    for (int64_t i = 1; i <= providers; ++i) {
      if (rng.NextBool(0.1)) continue;  // Absent from the store entirely.
      auto& prefs = config.preferences.ForProvider(i);
      for (const std::string& attr : attrs) {
        for (privacy::PurposeId purpose : purposes) {
          if (rng.NextBool(0.6)) prefs.Set(attr, tuple(purpose));
        }
      }
      // Preferences for an attribute the policy never mentions: never
      // comparable (Eq. 13), must contribute nothing.
      if (rng.NextBool(0.2)) prefs.Set("unmentioned", tuple(purposes[0]));
      // Explicit σ entries for ~1/4 of providers, zeros included, so both
      // the shared all-ones and the per-provider fill paths run.
      if (rng.NextBool(0.25)) {
        PPDB_CHECK_OK(config.sensitivities.SetProviderSensitivity(
            i, attrs[rng.NextBounded(attrs.size())],
            {rng.NextDouble() * 2.0, rng.NextDouble() * 2.0,
             rng.NextBool(0.2) ? 0.0 : rng.NextDouble() * 2.0,
             rng.NextDouble() * 2.0}));
      }
    }
    return config;
  }

  static void ExpectIdentical(const ViolationReport& a,
                              const ViolationReport& b) {
    EXPECT_EQ(std::bit_cast<uint64_t>(a.total_severity),
              std::bit_cast<uint64_t>(b.total_severity));
    EXPECT_EQ(a.num_violated, b.num_violated);
    ASSERT_EQ(a.providers.size(), b.providers.size());
    for (size_t i = 0; i < a.providers.size(); ++i) {
      const ProviderViolation& x = a.providers[i];
      const ProviderViolation& y = b.providers[i];
      EXPECT_EQ(x.provider, y.provider);
      EXPECT_EQ(x.violated, y.violated);
      EXPECT_EQ(std::bit_cast<uint64_t>(x.total_severity),
                std::bit_cast<uint64_t>(y.total_severity));
      EXPECT_EQ(x.num_attributes_violated, y.num_attributes_violated);
      EXPECT_EQ(std::bit_cast<uint64_t>(x.max_incident_severity),
                std::bit_cast<uint64_t>(y.max_incident_severity));
      ASSERT_EQ(x.incidents.size(), y.incidents.size());
      for (size_t k = 0; k < x.incidents.size(); ++k) {
        EXPECT_EQ(x.incidents[k].attribute, y.incidents[k].attribute);
        EXPECT_EQ(x.incidents[k].purpose, y.incidents[k].purpose);
        EXPECT_EQ(x.incidents[k].dimension, y.incidents[k].dimension);
        EXPECT_EQ(x.incidents[k].preference_level,
                  y.incidents[k].preference_level);
        EXPECT_EQ(x.incidents[k].policy_level, y.incidents[k].policy_level);
        EXPECT_EQ(x.incidents[k].diff, y.incidents[k].diff);
        EXPECT_EQ(std::bit_cast<uint64_t>(x.incidents[k].weighted_severity),
                  std::bit_cast<uint64_t>(y.incidents[k].weighted_severity));
        EXPECT_EQ(x.incidents[k].from_implicit_preference,
                  y.incidents[k].from_implicit_preference);
      }
    }
  }
};

INSTANTIATE_TEST_SUITE_P(ThreadCounts, KernelAnalyzeEquivalenceTest,
                         ::testing::Values(1, 2, 8, 0),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return info.param == 0
                                      ? std::string("hw")
                                      : std::to_string(info.param) +
                                            "threads";
                         });

TEST_P(KernelAnalyzeEquivalenceTest, RandomConfigsMatchAcrossTargets) {
  for (uint64_t seed : {11u, 23u, 47u}) {
    // 700 providers spans two shards of the detector's provider grain.
    privacy::PrivacyConfig config = MakeRandomConfig(seed, /*providers=*/700);
    for (bool implicit_zero : {true, false}) {
      ViolationDetector::Options options;
      options.implicit_zero_preferences = implicit_zero;
      options.num_threads = 1;
      ViolationDetector serial(&config, options);
      // Includes providers the store has never seen (1200-1205).
      std::vector<privacy::ProviderId> ids;
      for (int64_t i = 1; i <= 700; ++i) ids.push_back(i);
      for (int64_t i = 1200; i <= 1205; ++i) ids.push_back(i);

      ASSERT_OK(kernel::ForceTarget(Target::kScalar));
      ASSERT_OK_AND_ASSIGN(ViolationReport baseline,
                           serial.AnalyzeProviders(ids));
      for (Target target : SimdTargets()) {
        SCOPED_TRACE(std::string(kernel::TargetName(target)) + " seed=" +
                     std::to_string(seed) + " implicit_zero=" +
                     std::to_string(implicit_zero));
        ASSERT_OK(kernel::ForceTarget(target));
        options.num_threads = GetParam();
        ViolationDetector parallel(&config, options);
        ASSERT_OK_AND_ASSIGN(ViolationReport report,
                             parallel.AnalyzeProviders(ids));
        ExpectIdentical(baseline, report);
      }
      kernel::ClearForcedTarget();
    }
  }
}

TEST_P(KernelAnalyzeEquivalenceTest, PopulationWithDataTableAndHierarchy) {
  sim::PopulationConfig pop_config;
  pop_config.num_providers = 900;
  for (int a = 0; a < 5; ++a) {
    pop_config.attributes.push_back(
        {"attr" + std::to_string(a), 1.0 + a, 50.0, 10.0});
  }
  pop_config.purposes = {"service", "analytics"};
  pop_config.seed = 99;
  ASSERT_OK_AND_ASSIGN(sim::Population population,
                       sim::PopulationGenerator(pop_config).Generate());
  ASSERT_OK_AND_ASSIGN(
      privacy::HousePolicy policy,
      sim::MakeUniformPolicy(pop_config.attributes, pop_config.purposes, 0.6,
                             0.6, 0.6, &population.config));
  population.config.policy = std::move(policy);
  privacy::PurposeHierarchy hierarchy;
  ASSERT_OK(hierarchy.AddEdge(
      population.config.purposes.Lookup("analytics").value(),
      population.config.purposes.Lookup("service").value(),
      population.config.purposes));

  ViolationDetector::Options options;
  options.data_table = &population.data;
  options.purpose_hierarchy = &hierarchy;
  options.num_threads = 1;

  ASSERT_OK(kernel::ForceTarget(Target::kScalar));
  ViolationDetector serial(&population.config, options);
  ASSERT_OK_AND_ASSIGN(ViolationReport baseline, serial.Analyze());
  ASSERT_GT(baseline.num_violated, 0);  // A trivial population proves nothing.
  for (Target target : SimdTargets()) {
    SCOPED_TRACE(kernel::TargetName(target));
    ASSERT_OK(kernel::ForceTarget(target));
    options.num_threads = GetParam();
    ViolationDetector parallel(&population.config, options);
    ASSERT_OK_AND_ASSIGN(ViolationReport report, parallel.Analyze());
    ExpectIdentical(baseline, report);
  }
}

}  // namespace
}  // namespace ppdb::violation

// Crash matrix for the write-ahead journal: a full serving session is run
// once with a fault-counting filesystem to enumerate every journal I/O
// (open, header write, record append, fsync, truncate, rotation), then for
// every site × every fault kind × several seeds the same session is run
// with that one op faulted and the directory re-loaded as a fresh process
// would. The oracle is the durability contract: *no acknowledged event is
// ever lost, and no unacknowledged event is ever applied* — with the one
// principled exception that the single in-flight event whose append/fsync
// faulted may surface after recovery when its frame reached the disk
// before the failure (classic WAL gray zone: durable but unacknowledged).
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/rng.h"
#include "privacy/policy_dsl.h"
#include "server/request.h"
#include "server/service.h"
#include "storage/database_io.h"
#include "storage/fs.h"
#include "storage/journal.h"
#include "tests/test_util.h"

namespace ppdb::server {
namespace {

namespace stdfs = std::filesystem;

constexpr char kConfigDsl[] = R"(
scale visibility: l0, l1, l2, l3
scale granularity: l0, l1, l2, l3
scale retention: l0, l1, l2, l3
purpose pr
policy weight for pr: visibility=2, granularity=2, retention=2
pref 1 weight for pr: visibility=0, granularity=0, retention=0
threshold 1 = 3
)";

// The scripted session. Every line is valid when the whole prefix before
// it was applied; a line whose prerequisite event was dropped by a fault
// simply fails validation (never acknowledged, never journaled), which the
// oracle accounts for.
const std::vector<std::string>& Script() {
  static const std::vector<std::string> script = {
      "event add 9 10",
      "event pref 9 weight pr 1 1 1",
      "event threshold 9 20",
      "event add 10 5",
      "event pref 10 weight pr 2 2 2",
      "event unpref 10 weight pr",
      "event remove 9",
      "event add 11 7",
      "event threshold 11 3",
      "event remove 10",
  };
  return script;
}

class JournalCrashMatrixTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  void SetUp() override {
    root_ = stdfs::temp_directory_path() /
            ("ppdb_journal_crash_" + std::to_string(::getpid()) + "_seed" +
             std::to_string(GetParam()));
    stdfs::remove_all(root_);
  }
  void TearDown() override { stdfs::remove_all(root_); }

  static void SeedDirectory(const std::string& dir) {
    storage::Database database;
    ASSERT_OK_AND_ASSIGN(database.config,
                         privacy::ParsePrivacyConfig(kConfigDsl));
    ASSERT_OK(storage::SaveDatabase(dir, database));
  }

  static DatabaseService::Options ServiceOptions() {
    DatabaseService::Options options;
    // A mid-script periodic checkpoint exercises pruning + rotation as
    // injection sites alongside the appends.
    options.checkpoint_every_events = 4;
    options.num_threads = 1;
    options.save_retry.max_attempts = 1;
    // Keep the breaker out of the way: the matrix is about durability,
    // and the read-only drill has its own tests.
    options.breaker.failure_threshold = 1000;
    return options;
  }

  /// Runs the script, applying every *acknowledged* event to `model` in
  /// order, and records the one event whose journal append faulted (the
  /// only event that can be durable-but-unacknowledged).
  static void RunScript(DatabaseService& service,
                        privacy::PrivacyConfig& model,
                        std::string* faulted_payload) {
    for (const std::string& line : Script()) {
      Result<Request> request = ParseRequest(line);
      ASSERT_OK(request.status()) << line;
      Response response = service.Execute(request.value(), Deadline());
      const std::string payload = line.substr(std::string("event ").size());
      if (response.status.ok()) {
        ASSERT_OK_AND_ASSIGN(storage::JournalEvent event,
                             storage::JournalEvent::Decode(payload));
        ASSERT_OK(event.Apply(model)) << line;
      } else if (response.status.message().find("not durable") !=
                 std::string::npos) {
        // The append itself faulted: its frame may or may not be durable.
        *faulted_payload = payload;
      }
    }
  }

  stdfs::path root_;
  storage::RealFileSystem real_;
};

TEST_P(JournalCrashMatrixTest, NoAckedEventLostNoUnackedEventApplied) {
  const uint64_t seed = GetParam();

  // Pass 1: count the journal I/O sites of one full session.
  const std::string count_dir = (root_ / "count").string();
  SeedDirectory(count_dir);
  storage::FaultInjectingFileSystem counting(&real_, Rng(seed));
  counting.SetPlan({.fail_at_op = -1, .path_filter = "journal-"});
  {
    ASSERT_OK_AND_ASSIGN(std::unique_ptr<DatabaseService> service,
                         DatabaseService::Create(count_dir, &counting,
                                                 ServiceOptions()));
    privacy::PrivacyConfig model;
    ASSERT_OK_AND_ASSIGN(model, privacy::ParsePrivacyConfig(kConfigDsl));
    std::string faulted;
    RunScript(*service, model, &faulted);
    EXPECT_TRUE(faulted.empty());
  }
  const int64_t total_ops = counting.ops_seen();
  ASSERT_GE(total_ops, 25) << "journal I/O shrank below the fault matrix";

  const storage::FaultKind kinds[] = {
      storage::FaultKind::kFailOp, storage::FaultKind::kTornWrite,
      storage::FaultKind::kNoSpace, storage::FaultKind::kCrash};
  for (storage::FaultKind kind : kinds) {
    for (int64_t op = 0; op < total_ops; ++op) {
      SCOPED_TRACE("seed " + std::to_string(seed) + ", kind " +
                   std::string(storage::FaultKindName(kind)) +
                   ", fault at journal op " + std::to_string(op));
      const std::string dir =
          (root_ / (std::string(storage::FaultKindName(kind)) + "_" +
                    std::to_string(op)))
              .string();
      SeedDirectory(dir);
      privacy::PrivacyConfig model;
      ASSERT_OK_AND_ASSIGN(model, privacy::ParsePrivacyConfig(kConfigDsl));

      storage::FaultInjectingFileSystem faulty(&real_,
                                               Rng(seed * 1000003 + op));
      faulty.SetPlan(
          {.fail_at_op = op, .kind = kind, .path_filter = "journal-"});
      std::string faulted_payload;
      {
        Result<std::unique_ptr<DatabaseService>> service =
            DatabaseService::Create(dir, &faulty, ServiceOptions());
        if (service.ok()) {
          RunScript(*service.value(), model, &faulted_payload);
        }
        // else: the fault hit the journal open inside Create — nothing was
        // ever acknowledged, so the model stays the seeded config.
        // The service is dropped here without FinalCheckpoint: a kill -9.
      }

      storage::RecoveryReport report;
      Result<storage::Database> loaded =
          storage::LoadDatabase(dir, real_, &report);
      ASSERT_OK(loaded.status()) << report.ToString();

      const std::string got =
          privacy::SerializePrivacyConfig(loaded->config);
      const std::string acked = privacy::SerializePrivacyConfig(model);
      // The gray zone: the faulted event's frame may have become durable
      // before the failure. It is the last record the journal can hold, so
      // at most one extra state is acceptable.
      std::string acked_plus_faulted = acked;
      if (!faulted_payload.empty()) {
        ASSERT_OK_AND_ASSIGN(
            storage::JournalEvent event,
            storage::JournalEvent::Decode(faulted_payload));
        privacy::PrivacyConfig gray = model;
        if (event.Apply(gray).ok()) {
          acked_plus_faulted = privacy::SerializePrivacyConfig(gray);
        }
      }
      EXPECT_TRUE(got == acked || got == acked_plus_faulted)
          << "recovered state matches neither the acknowledged history nor "
             "acknowledged+in-flight\nrecovery: "
          << report.ToString();

      // A later healthy recover absorbs whatever the crash left behind.
      ASSERT_OK(storage::SaveDatabase(dir, loaded.value()));
      storage::RecoveryReport clean_report;
      ASSERT_OK_AND_ASSIGN(storage::Database again,
                           storage::LoadDatabase(dir, real_, &clean_report));
      EXPECT_TRUE(clean_report.clean()) << clean_report.ToString();
      EXPECT_EQ(privacy::SerializePrivacyConfig(again.config), got);
      stdfs::remove_all(dir);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JournalCrashMatrixTest,
                         ::testing::Values<uint64_t>(1, 2, 3));

}  // namespace
}  // namespace ppdb::server

#include "violation/incremental.h"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/rng.h"
#include "relational/table.h"
#include "tests/test_util.h"
#include "violation/default_model.h"
#include "violation/detector.h"
#include "violation/kernel/severity_kernel.h"
#include "violation/utility.h"

namespace ppdb::violation {
namespace {

using privacy::PrivacyTuple;
using privacy::ProviderId;
using privacy::PurposeId;

uint64_t Bits(double v) { return std::bit_cast<uint64_t>(v); }

/// The drift-oracle contract, asserted from the outside: every maintained
/// quantity must equal a from-scratch batch analysis *bitwise* — not
/// within a tolerance.
void ExpectBitwiseEqualToFull(const ViolationView& view,
                              const privacy::PrivacyConfig& config,
                              ViolationDetector::Options options,
                              const std::string& context) {
  ViolationDetector detector(&config, options);
  ASSERT_OK_AND_ASSIGN(ViolationReport report, detector.Analyze());
  DefaultReport defaults = ComputeDefaults(report, config);
  ASSERT_EQ(view.num_providers(), report.num_providers()) << context;
  EXPECT_EQ(view.num_violated(), report.num_violated) << context;
  EXPECT_EQ(view.num_defaulted(), defaults.num_defaulted) << context;
  EXPECT_EQ(Bits(view.TotalViolations()), Bits(report.total_severity))
      << context << ": total " << view.TotalViolations() << " vs "
      << report.total_severity;
  for (size_t i = 0; i < report.providers.size(); ++i) {
    const ProviderViolation& expected = report.providers[i];
    ASSERT_OK_AND_ASSIGN(double severity,
                         view.SeverityFor(expected.provider));
    ASSERT_OK_AND_ASSIGN(bool violated, view.IsViolated(expected.provider));
    ASSERT_OK_AND_ASSIGN(bool defaulted,
                         view.IsDefaulted(expected.provider));
    EXPECT_EQ(Bits(severity), Bits(expected.total_severity))
        << context << ": provider " << expected.provider;
    EXPECT_EQ(violated, expected.violated)
        << context << ": provider " << expected.provider;
    EXPECT_EQ(defaulted, defaults.providers[i].defaulted)
        << context << ": provider " << expected.provider;
  }
}

class ViolationViewTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ads_ = config_.purposes.Register("ads").value();
    research_ = config_.purposes.Register("research").value();
    PPDB_CHECK_OK(config_.policy.Add("weight", PrivacyTuple{ads_, 2, 2, 2}));
    PPDB_CHECK_OK(config_.policy.Add("weight",
                                     PrivacyTuple{research_, 1, 1, 1}));
    PPDB_CHECK_OK(config_.policy.Add("age", PrivacyTuple{ads_, 3, 1, 2}));
    for (int64_t i = 1; i <= 6; ++i) {
      int level = static_cast<int>(i % 4);
      config_.preferences.ForProvider(i).Set(
          "weight", PrivacyTuple{ads_, level, level, level});
      config_.thresholds[i] = 4.0;
    }
  }

  privacy::PrivacyConfig config_;
  PurposeId ads_;
  PurposeId research_;
};

TEST_F(ViolationViewTest, CreateMatchesFullAnalysisBitwise) {
  ASSERT_OK_AND_ASSIGN(ViolationView view,
                       ViolationView::Create(&config_));
  ExpectBitwiseEqualToFull(view, config_, {}, "after create");
  // Construction is not an applied event.
  EXPECT_EQ(view.delta_events(), 0);
  EXPECT_EQ(view.rebuild_events(), 0);
  EXPECT_EQ(view.policy_tuples(), 3);
  EXPECT_EQ(view.total_cells(), 6 * 3);
}

TEST_F(ViolationViewTest, PreferenceEventRecomputesOnlyMatchingCells) {
  ASSERT_OK_AND_ASSIGN(ViolationView view,
                       ViolationView::Create(&config_));
  // "weight" for ads matches exactly one of the three policy cells.
  config_.preferences.ForProvider(2).Set("weight",
                                         PrivacyTuple{ads_, 3, 3, 3});
  ASSERT_OK(view.OnPreferenceChanged(2, "weight", ads_));
  EXPECT_EQ(view.last_delta_cells(), 1);
  EXPECT_EQ(view.delta_events(), 1);
  EXPECT_EQ(view.rebuild_events(), 0);
  ExpectBitwiseEqualToFull(view, config_, {}, "after pref event");

  // An attribute the policy does not mention touches nothing.
  config_.preferences.ForProvider(2).Set("shoe_size",
                                         PrivacyTuple{ads_, 1, 1, 1});
  ASSERT_OK(view.OnPreferenceChanged(2, "shoe_size", ads_));
  EXPECT_EQ(view.last_delta_cells(), 0);
  ExpectBitwiseEqualToFull(view, config_, {}, "after unrelated pref");
}

TEST_F(ViolationViewTest, ThresholdEventTouchesNoCells) {
  ASSERT_OK_AND_ASSIGN(ViolationView view,
                       ViolationView::Create(&config_));
  int64_t defaulted_before = view.num_defaulted();
  config_.thresholds[1] = 0.0;  // Severity now exceeds v_1.
  ASSERT_OK(view.OnThresholdChanged(1));
  EXPECT_EQ(view.last_delta_cells(), 0);
  EXPECT_GE(view.num_defaulted(), defaulted_before);
  ExpectBitwiseEqualToFull(view, config_, {}, "after threshold event");
}

TEST_F(ViolationViewTest, MembershipEventsInsertAndEraseRows) {
  ASSERT_OK_AND_ASSIGN(ViolationView view,
                       ViolationView::Create(&config_));
  config_.preferences.ForProvider(42);  // Empty entry: implicit zeros.
  config_.thresholds[42] = 1.0;
  ASSERT_OK(view.OnProviderAdded(42));
  EXPECT_TRUE(view.Contains(42));
  ExpectBitwiseEqualToFull(view, config_, {}, "after add");

  ASSERT_OK(config_.preferences.Erase(42));
  config_.thresholds.erase(42);
  ASSERT_OK(view.OnProviderRemoved(42));
  EXPECT_FALSE(view.Contains(42));
  ExpectBitwiseEqualToFull(view, config_, {}, "after remove");
  EXPECT_TRUE(view.SeverityFor(42).status().IsNotFound());
}

TEST_F(ViolationViewTest, SameShapePolicyChangeStaysOnDeltaPath) {
  ASSERT_OK_AND_ASSIGN(ViolationView view,
                       ViolationView::Create(&config_));
  // Move one cell's levels; shape (attribute, purpose sequence) unchanged.
  privacy::HousePolicy moved;
  ASSERT_OK(moved.Add("weight", PrivacyTuple{ads_, 0, 0, 0}));  // changed
  ASSERT_OK(moved.Add("weight", PrivacyTuple{research_, 1, 1, 1}));
  ASSERT_OK(moved.Add("age", PrivacyTuple{ads_, 3, 1, 2}));
  config_.policy = std::move(moved);
  ASSERT_OK(view.OnPolicyChanged());
  EXPECT_EQ(view.rebuild_events(), 0);
  // One changed column across six providers.
  EXPECT_EQ(view.last_delta_cells(), 6);
  ExpectBitwiseEqualToFull(view, config_, {}, "after level-only policy");
}

TEST_F(ViolationViewTest, ShapeChangingPolicyFallsBackToRebuild) {
  ASSERT_OK_AND_ASSIGN(ViolationView view,
                       ViolationView::Create(&config_));
  ASSERT_OK(config_.policy.Add("height", PrivacyTuple{ads_, 1, 1, 1}));
  ASSERT_OK(view.OnPolicyChanged());
  EXPECT_EQ(view.rebuild_events(), 1);
  EXPECT_EQ(view.policy_tuples(), 4);
  ExpectBitwiseEqualToFull(view, config_, {}, "after shape change");
}

TEST_F(ViolationViewTest, DatumEventsTrackTableMembershipAndCells) {
  rel::Schema schema =
      rel::Schema::Create({{"weight", rel::DataType::kDouble, ""}}).value();
  ASSERT_OK_AND_ASSIGN(rel::Table table, rel::Table::Create("t", schema));
  ASSERT_OK(table.Insert(1, {rel::Value::Double(80)}));
  ViolationDetector::Options options;
  options.data_table = &table;
  ASSERT_OK_AND_ASSIGN(ViolationView view,
                       ViolationView::Create(&config_, options));
  ExpectBitwiseEqualToFull(view, config_, options, "table at create");

  // A provider known only through the table joins the population.
  ASSERT_OK(table.Insert(77, {rel::Value::Double(70)}));
  ASSERT_OK(view.OnDatumChanged(77, "weight"));
  EXPECT_TRUE(view.Contains(77));
  ExpectBitwiseEqualToFull(view, config_, options, "after table insert");

  // Dropping the datum removes the table-only provider again.
  ASSERT_OK(table.EraseProvider(77));
  ASSERT_OK(view.OnDatumChanged(77, "weight"));
  EXPECT_FALSE(view.Contains(77));
  ExpectBitwiseEqualToFull(view, config_, options, "after table erase");

  // For a preference-store provider the datum only flips the data-scoping
  // mask of that attribute's cells.
  ASSERT_OK(table.EraseProvider(1));
  ASSERT_OK(view.OnDatumChanged(1, "weight"));
  EXPECT_TRUE(view.Contains(1));
  ExpectBitwiseEqualToFull(view, config_, options, "after datum drop");
}

TEST_F(ViolationViewTest, ExpansionCheckMatchesUtilityModel) {
  ASSERT_OK_AND_ASSIGN(ViolationView view,
                       ViolationView::Create(&config_));
  ASSERT_OK_AND_ASSIGN(ViolationView::ExpansionCheck check,
                       view.CheckExpansion(10.0, 2.0));
  EXPECT_EQ(check.n_current, view.num_providers());
  EXPECT_EQ(check.n_defaulted, view.num_defaulted());
  EXPECT_EQ(check.n_future, check.n_current - check.n_defaulted);

  ASSERT_OK_AND_ASSIGN(UtilityModel model, UtilityModel::Create(10.0));
  EXPECT_DOUBLE_EQ(check.utility_current,
                   model.CurrentUtility(check.n_current));
  EXPECT_DOUBLE_EQ(check.utility_future,
                   model.FutureUtility(check.n_future, 2.0));
  EXPECT_EQ(check.justified,
            model.ExpansionJustified(check.n_current, check.n_future, 2.0));
  if (check.has_break_even) {
    ASSERT_OK_AND_ASSIGN(
        double t, model.BreakEvenExtraUtility(check.n_current,
                                              check.n_future));
    EXPECT_DOUBLE_EQ(check.break_even_extra_utility, t);
  }
  // The Eq. 31 algebra divides by U.
  EXPECT_TRUE(view.CheckExpansion(0.0, 1.0).status().IsInvalidArgument());
  EXPECT_TRUE(view.CheckExpansion(-1.0, 1.0).status().IsInvalidArgument());
}

TEST_F(ViolationViewTest, DriftOracleCatchesOutOfBandMutation) {
  ASSERT_OK_AND_ASSIGN(ViolationView view,
                       ViolationView::Create(&config_));
  ASSERT_OK_AND_ASSIGN(ViolationView::DriftReport clean, view.CheckDrift());
  EXPECT_TRUE(clean.clean) << clean.detail;
  EXPECT_EQ(view.drift_checks_clean(), 1);

  // Mutate the config behind the view's back: the maintained state is now
  // stale and the oracle must say so.
  config_.preferences.ForProvider(1).Set("weight",
                                         PrivacyTuple{ads_, 3, 3, 3});
  ASSERT_OK_AND_ASSIGN(ViolationView::DriftReport drifted,
                       view.CheckDrift());
  EXPECT_FALSE(drifted.clean);
  EXPECT_GE(drifted.mismatched_providers, 1);
  EXPECT_FALSE(drifted.detail.empty());
  EXPECT_EQ(view.drift_checks_failed(), 1);

  // RebuildAll is the documented recovery action.
  ASSERT_OK(view.RebuildAll());
  ASSERT_OK_AND_ASSIGN(ViolationView::DriftReport recovered,
                       view.CheckDrift());
  EXPECT_TRUE(recovered.clean) << recovered.detail;
  ExpectBitwiseEqualToFull(view, config_, {}, "after rebuild recovery");
}

TEST_F(ViolationViewTest, MaterializeProviderMatchesBatchIncidents) {
  ASSERT_OK_AND_ASSIGN(ViolationView view,
                       ViolationView::Create(&config_));
  ViolationDetector detector(&config_);
  ASSERT_OK_AND_ASSIGN(ViolationReport report, detector.Analyze());
  for (const ProviderViolation& expected : report.providers) {
    ASSERT_OK_AND_ASSIGN(ProviderViolation got,
                         view.MaterializeProvider(expected.provider));
    EXPECT_EQ(got.violated, expected.violated);
    EXPECT_EQ(Bits(got.total_severity), Bits(expected.total_severity));
    ASSERT_EQ(got.incidents.size(), expected.incidents.size());
    for (size_t i = 0; i < got.incidents.size(); ++i) {
      EXPECT_EQ(got.incidents[i].attribute, expected.incidents[i].attribute);
      EXPECT_EQ(Bits(got.incidents[i].weighted_severity),
                Bits(expected.incidents[i].weighted_severity));
    }
  }
  EXPECT_TRUE(view.MaterializeProvider(999).status().IsNotFound());
}

// --- the change-impact O(Δ) regression ----------------------------------

// A single-provider what-if must not scale with house size: the view
// answers it from the provider's row, recomputing only the cells whose
// policy levels moved.
TEST(ViolationViewImpactTest, ProviderWhatIfIndependentOfHouseSize) {
  auto build = [](int64_t n) {
    privacy::PrivacyConfig config;
    PurposeId p = config.purposes.Register("p").value();
    PPDB_CHECK_OK(config.policy.Add("a", PrivacyTuple{p, 1, 1, 1}));
    PPDB_CHECK_OK(config.policy.Add("b", PrivacyTuple{p, 2, 2, 2}));
    PPDB_CHECK_OK(config.policy.Add("c", PrivacyTuple{p, 0, 1, 0}));
    for (int64_t i = 1; i <= n; ++i) {
      config.preferences.ForProvider(i).Set(
          "a", PrivacyTuple{p, static_cast<int>(i % 3),
                            static_cast<int>(i % 3),
                            static_cast<int>(i % 3)});
      config.thresholds[i] = 2.0;
    }
    return config;
  };

  int64_t cells_small = 0;
  int64_t cells_large = 0;
  for (int64_t n : {8, 600}) {
    privacy::PrivacyConfig config = build(n);
    ASSERT_OK_AND_ASSIGN(ViolationView view,
                         ViolationView::Create(&config));
    PurposeId p = config.purposes.Lookup("p").value();
    privacy::HousePolicy wider;
    ASSERT_OK(wider.Add("a", PrivacyTuple{p, 2, 2, 2}));  // moved column
    ASSERT_OK(wider.Add("b", PrivacyTuple{p, 2, 2, 2}));
    ASSERT_OK(wider.Add("c", PrivacyTuple{p, 0, 1, 0}));
    ASSERT_OK_AND_ASSIGN(ViolationView::ProviderImpact impact,
                         view.AssessPolicyChangeForProvider(5, wider));
    EXPECT_EQ(impact.provider, 5);
    // One of three policy cells moved.
    (n == 8 ? cells_small : cells_large) = impact.cells_recomputed;

    // The answer itself agrees with a full before/after analysis.
    ViolationDetector before(&config);
    ASSERT_OK_AND_ASSIGN(ViolationReport before_report, before.Analyze());
    ViolationDetector::Options after_options;
    after_options.policy_override = &wider;
    ViolationDetector after(&config, after_options);
    ASSERT_OK_AND_ASSIGN(ViolationReport after_report, after.Analyze());
    EXPECT_EQ(Bits(impact.severity_before),
              Bits(before_report.Find(5)->total_severity));
    EXPECT_EQ(Bits(impact.severity_after),
              Bits(after_report.Find(5)->total_severity));
    EXPECT_EQ(impact.violated_before, before_report.Find(5)->violated);
    EXPECT_EQ(impact.violated_after, after_report.Find(5)->violated);
  }
  EXPECT_EQ(cells_small, 1);
  // The regression this guards: before the view, a single-provider
  // what-if recomputed the whole house.
  EXPECT_EQ(cells_large, cells_small);
}

// --- randomized equivalence across dispatch targets × thread counts -----

class ViolationViewFuzzTest : public ::testing::TestWithParam<uint64_t> {};

// N random preference / threshold / membership / policy events through
// the delta path; after every event the maintained view must be
// bitwise-identical to a full re-analysis — at every compiled dispatch
// target and across oracle thread counts.
TEST_P(ViolationViewFuzzTest, BitwiseEquivalentToFullAfterEveryEvent) {
  for (kernel::Target target : kernel::CompiledTargets()) {
    if (!kernel::TargetSupported(target)) continue;
    ASSERT_OK(kernel::ForceTarget(target));

    privacy::PrivacyConfig config;
    PurposeId p = config.purposes.Register("p").value();
    PPDB_CHECK_OK(config.policy.Add("a", PrivacyTuple{p, 1, 1, 1}));
    PPDB_CHECK_OK(config.policy.Add("b", PrivacyTuple{p, 2, 0, 1}));
    PPDB_CHECK_OK(config.policy.Add("c", PrivacyTuple{p, 0, 2, 2}));
    ASSERT_OK_AND_ASSIGN(ViolationView view, ViolationView::Create(&config));

    Rng rng(GetParam() * 7919 + static_cast<uint64_t>(target));
    std::vector<ProviderId> known;
    for (int event = 0; event < 60; ++event) {
      double roll = rng.NextDouble();
      if (roll < 0.3 || known.empty()) {
        ProviderId id = rng.NextInt(1, 100000);
        if (!config.preferences.Contains(id)) {
          config.preferences.ForProvider(id);
          config.thresholds[id] = rng.NextDouble() * 8;
          ASSERT_OK(view.OnProviderAdded(id));
          known.push_back(id);
        }
      } else if (roll < 0.6) {
        ProviderId id = known[rng.NextBounded(known.size())];
        const char* attr = rng.NextBool(0.5) ? "a" : "b";
        PrivacyTuple tuple{p, static_cast<int>(rng.NextInt(0, 3)),
                           static_cast<int>(rng.NextInt(0, 3)),
                           static_cast<int>(rng.NextInt(0, 3))};
        config.preferences.ForProvider(id).Set(attr, tuple);
        ASSERT_OK(view.OnPreferenceChanged(id, attr, p));
      } else if (roll < 0.75) {
        ProviderId id = known[rng.NextBounded(known.size())];
        config.thresholds[id] = rng.NextDouble() * 8;
        ASSERT_OK(view.OnThresholdChanged(id));
      } else if (roll < 0.85) {
        size_t pick = rng.NextBounded(known.size());
        ASSERT_OK(config.preferences.Erase(known[pick]));
        config.thresholds.erase(known[pick]);
        ASSERT_OK(view.OnProviderRemoved(known[pick]));
        known.erase(known.begin() + static_cast<std::ptrdiff_t>(pick));
      } else {
        // Level-only move of column "a": stays on the O(N·Δ) policy path
        // (same shape — the "b" and "c" cells are restated unchanged).
        privacy::HousePolicy moved;
        ASSERT_OK(moved.Add(
            "a", PrivacyTuple{p, static_cast<int>(rng.NextInt(0, 3)),
                              static_cast<int>(rng.NextInt(0, 3)),
                              static_cast<int>(rng.NextInt(0, 3))}));
        ASSERT_OK(moved.Add("b", PrivacyTuple{p, 2, 0, 1}));
        ASSERT_OK(moved.Add("c", PrivacyTuple{p, 0, 2, 2}));
        config.policy = std::move(moved);
        ASSERT_OK(view.OnPolicyChanged());
      }

      // The oracle at two thread counts: the blocked reduction makes the
      // full analysis thread-count invariant, so both must match the view.
      for (int threads : {1, 4}) {
        ViolationDetector::Options options;
        options.num_threads = threads;
        ExpectBitwiseEqualToFull(
            view, config, options,
            "target=" + std::string(kernel::TargetName(target)) +
                " threads=" + std::to_string(threads) +
                " event=" + std::to_string(event));
        if (::testing::Test::HasFailure()) break;
      }
      if (::testing::Test::HasFailure()) break;
    }
    ASSERT_OK_AND_ASSIGN(ViolationView::DriftReport drift,
                         view.CheckDrift());
    EXPECT_TRUE(drift.clean) << drift.detail;
    kernel::ClearForcedTarget();
    if (::testing::Test::HasFailure()) break;
  }
  kernel::ClearForcedTarget();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ViolationViewFuzzTest,
                         ::testing::Range<uint64_t>(0, 6));

}  // namespace
}  // namespace ppdb::violation

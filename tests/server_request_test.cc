#include "server/request.h"

#include <gtest/gtest.h>

#include <chrono>
#include <string>

#include "tests/test_util.h"

namespace ppdb::server {
namespace {

TEST(ParseRequestTest, SimpleCommands) {
  ASSERT_OK_AND_ASSIGN(Request ping, ParseRequest("ping"));
  EXPECT_EQ(ping.kind, RequestKind::kPing);
  EXPECT_EQ(ping.deadline.count(), 0);

  ASSERT_OK_AND_ASSIGN(Request stats, ParseRequest("stats"));
  EXPECT_EQ(stats.kind, RequestKind::kStats);

  ASSERT_OK_AND_ASSIGN(Request analyze, ParseRequest("  analyze  "));
  EXPECT_EQ(analyze.kind, RequestKind::kAnalyze);

  ASSERT_OK_AND_ASSIGN(Request save, ParseRequest("save"));
  EXPECT_EQ(save.kind, RequestKind::kSave);

  ASSERT_OK_AND_ASSIGN(Request drain, ParseRequest("drain"));
  EXPECT_EQ(drain.kind, RequestKind::kDrain);
}

TEST(ParseRequestTest, DeadlinePrefix) {
  ASSERT_OK_AND_ASSIGN(Request request, ParseRequest("@250 analyze"));
  EXPECT_EQ(request.kind, RequestKind::kAnalyze);
  EXPECT_EQ(request.deadline, std::chrono::milliseconds(250));

  ASSERT_OK_AND_ASSIGN(Request event, ParseRequest("@5 event add 7 1.5"));
  EXPECT_EQ(event.kind, RequestKind::kEventAdd);
  EXPECT_EQ(event.deadline, std::chrono::milliseconds(5));
  EXPECT_EQ(event.provider, 7);

  EXPECT_TRUE(ParseRequest("@-1 ping").status().IsInvalidArgument());
  EXPECT_TRUE(ParseRequest("@999999999999 ping").status().IsInvalidArgument());
  EXPECT_FALSE(ParseRequest("@abc ping").ok());
  EXPECT_TRUE(ParseRequest("@250").status().IsInvalidArgument());
}

TEST(ParseRequestTest, ArgumentValidation) {
  ASSERT_OK_AND_ASSIGN(Request certify, ParseRequest("certify 0.25"));
  EXPECT_DOUBLE_EQ(certify.alpha, 0.25);
  EXPECT_TRUE(ParseRequest("certify 1.5").status().IsInvalidArgument());
  EXPECT_TRUE(ParseRequest("certify").status().IsInvalidArgument());

  ASSERT_OK_AND_ASSIGN(Request estimate, ParseRequest("estimate pw 1000 42"));
  EXPECT_EQ(estimate.target, "pw");
  EXPECT_EQ(estimate.trials, 1000);
  EXPECT_EQ(estimate.seed, 42u);
  EXPECT_TRUE(ParseRequest("estimate pq 10 1").status().IsInvalidArgument());
  EXPECT_TRUE(ParseRequest("estimate pw 0 1").status().IsInvalidArgument());

  ASSERT_OK_AND_ASSIGN(Request whatif, ParseRequest("whatif v 8 0.5"));
  EXPECT_EQ(whatif.dimension, "v");
  EXPECT_EQ(whatif.steps, 8);
  EXPECT_DOUBLE_EQ(whatif.extra_utility_per_step, 0.5);
  EXPECT_TRUE(ParseRequest("whatif v 0").status().IsInvalidArgument());

  ASSERT_OK_AND_ASSIGN(Request search, ParseRequest("search 12 2.5"));
  EXPECT_EQ(search.max_steps, 12);
  EXPECT_DOUBLE_EQ(search.value_scale, 2.5);
  ASSERT_OK_AND_ASSIGN(Request default_search, ParseRequest("search"));
  EXPECT_EQ(default_search.max_steps, 16);
}

TEST(ParseRequestTest, EventCommands) {
  ASSERT_OK_AND_ASSIGN(Request add, ParseRequest("event add 5 2.5"));
  EXPECT_EQ(add.kind, RequestKind::kEventAdd);
  EXPECT_EQ(add.provider, 5);
  EXPECT_DOUBLE_EQ(add.threshold, 2.5);

  ASSERT_OK_AND_ASSIGN(Request pref,
                       ParseRequest("event pref 5 weight ads 1 2 3"));
  EXPECT_EQ(pref.kind, RequestKind::kEventSetPref);
  EXPECT_EQ(pref.attribute, "weight");
  EXPECT_EQ(pref.purpose, "ads");
  EXPECT_EQ(pref.visibility, 1);
  EXPECT_EQ(pref.granularity, 2);
  EXPECT_EQ(pref.retention, 3);

  ASSERT_OK_AND_ASSIGN(Request unpref,
                       ParseRequest("event unpref 5 weight ads"));
  EXPECT_EQ(unpref.kind, RequestKind::kEventRemovePref);

  ASSERT_OK_AND_ASSIGN(Request threshold,
                       ParseRequest("event threshold 5 9.5"));
  EXPECT_EQ(threshold.kind, RequestKind::kEventSetThreshold);

  EXPECT_TRUE(ParseRequest("event").status().IsInvalidArgument());
  EXPECT_TRUE(ParseRequest("event teleport 5").status().IsInvalidArgument());
  EXPECT_TRUE(ParseRequest("event add 5").status().IsInvalidArgument());
  EXPECT_TRUE(
      ParseRequest("event pref 5 weight ads 1 2").status().IsInvalidArgument());
  // Malformed levels and invalid identifiers are rejected, not crashed on.
  EXPECT_FALSE(ParseRequest("event pref 5 weight ads x y z").ok());
  EXPECT_FALSE(ParseRequest("event pref 5 9weight ads 1 2 3").ok());
}

TEST(ParseRequestTest, QueryCommands) {
  ASSERT_OK_AND_ASSIGN(Request pw, ParseRequest("query pw"));
  EXPECT_EQ(pw.kind, RequestKind::kQuery);
  EXPECT_EQ(pw.target, "pw");

  ASSERT_OK_AND_ASSIGN(Request provider, ParseRequest("query provider 17"));
  EXPECT_EQ(provider.target, "provider");
  EXPECT_EQ(provider.provider, 17);

  EXPECT_TRUE(ParseRequest("query").status().IsInvalidArgument());
  EXPECT_TRUE(ParseRequest("query everything").status().IsInvalidArgument());
  EXPECT_FALSE(ParseRequest("query provider x").ok());
}

TEST(ParseRequestTest, RejectsHostileInput) {
  EXPECT_TRUE(ParseRequest("").status().IsInvalidArgument());
  EXPECT_TRUE(ParseRequest("   \t  ").status().IsInvalidArgument());
  EXPECT_TRUE(ParseRequest("warp 9").status().IsInvalidArgument());

  std::string oversized(kMaxRequestLine + 1, 'a');
  EXPECT_TRUE(ParseRequest(oversized).status().IsInvalidArgument());

  std::string with_nul = "ping";
  with_nul += '\0';
  EXPECT_TRUE(
      ParseRequest(std::string_view(with_nul.data(), with_nul.size()))
          .status()
          .IsInvalidArgument());
  EXPECT_TRUE(ParseRequest("ping\nstats").status().IsInvalidArgument());
}

TEST(RequestTest, CheapAndWriteClassification) {
  auto parse = [](std::string_view line) {
    return ParseRequest(line).value();
  };
  EXPECT_TRUE(parse("ping").IsCheap());
  EXPECT_TRUE(parse("query pw").IsCheap());
  EXPECT_TRUE(parse("event add 1 1").IsCheap());
  EXPECT_FALSE(parse("analyze").IsCheap());
  EXPECT_FALSE(parse("search").IsCheap());

  // The expansion check reads maintained O(1) counters: priority lane.
  // The drift check is a deliberate full re-analysis: normal lane.
  EXPECT_TRUE(parse("expansion-check 10 2").IsCheap());
  EXPECT_FALSE(parse("driftcheck").IsCheap());

  EXPECT_TRUE(parse("event add 1 1").IsWrite());
  EXPECT_TRUE(parse("save").IsWrite());
  EXPECT_FALSE(parse("analyze").IsWrite());
  EXPECT_FALSE(parse("query pw").IsWrite());
  EXPECT_FALSE(parse("expansion-check 10 2").IsWrite());
  EXPECT_FALSE(parse("driftcheck").IsWrite());
}

TEST(ParseRequestTest, ExpansionCheckAndDriftCheck) {
  ASSERT_OK_AND_ASSIGN(Request check,
                       ParseRequest("expansion-check 10 2.5"));
  EXPECT_EQ(check.kind, RequestKind::kExpansionCheck);
  EXPECT_DOUBLE_EQ(check.utility_per_provider, 10.0);
  EXPECT_DOUBLE_EQ(check.extra_utility, 2.5);
  // The Eq. 31 algebra divides by U: non-positive U is rejected at parse.
  EXPECT_TRUE(ParseRequest("expansion-check 0 1").status().IsInvalidArgument());
  EXPECT_TRUE(
      ParseRequest("expansion-check -3 1").status().IsInvalidArgument());
  EXPECT_TRUE(ParseRequest("expansion-check 10").status().IsInvalidArgument());

  ASSERT_OK_AND_ASSIGN(Request drift, ParseRequest("driftcheck"));
  EXPECT_EQ(drift.kind, RequestKind::kDriftCheck);
  EXPECT_TRUE(ParseRequest("driftcheck now").status().IsInvalidArgument());

  EXPECT_EQ(RequestKindName(RequestKind::kExpansionCheck), "expansion_check");
  EXPECT_EQ(RequestKindName(RequestKind::kDriftCheck), "drift_check");
}

TEST(FormatResponseTest, OkAndErrorLines) {
  EXPECT_EQ(FormatResponse(3, Response{Status::OK(), "pw=0.5"}),
            "3 ok pw=0.5\n");
  EXPECT_EQ(FormatResponse(4, Response{Status::OK(), {}}), "4 ok\n");
  EXPECT_EQ(FormatResponse(9, Response{Status::Unavailable("queue full"), {}}),
            "9 error unavailable queue full\n");
}

TEST(FormatResponseTest, ScrubsControlBytesFromMessages) {
  std::string hostile = "bad\nthing\rhappened";
  hostile += '\0';
  std::string line =
      FormatResponse(1, Response{Status::InvalidArgument(hostile), {}});
  // Exactly one newline — the terminator. No smuggled extra lines.
  EXPECT_EQ(line.find('\n'), line.size() - 1);
  EXPECT_EQ(line.find('\r'), std::string::npos);
  EXPECT_EQ(line.find('\0'), std::string::npos);
}

TEST(ParseRequestTest, ObservabilityCommands) {
  auto parse = [](std::string_view line) {
    return ParseRequest(line).value();
  };
  EXPECT_EQ(parse("stats prometheus").kind, RequestKind::kMetrics);
  EXPECT_EQ(parse("metrics").kind, RequestKind::kMetrics);
  EXPECT_EQ(parse("trace").kind, RequestKind::kTrace);
  // Cheap: both bypass the broker queue even under overload.
  EXPECT_TRUE(parse("metrics").IsCheap());
  EXPECT_TRUE(parse("trace").IsCheap());
  EXPECT_FALSE(ParseRequest("stats bogus").ok());
  EXPECT_FALSE(ParseRequest("metrics now").ok());
  EXPECT_FALSE(ParseRequest("trace 3").ok());
}

TEST(FormatBlockResponseTest, FramesMultiLinePayloads) {
  EXPECT_EQ(FormatBlockResponse(5, "a 1\nb 2\n"),
            "5 ok block lines=2\na 1\nb 2\n5 end\n");
  // A missing trailing newline frames identically.
  EXPECT_EQ(FormatBlockResponse(5, "a 1\nb 2"),
            "5 ok block lines=2\na 1\nb 2\n5 end\n");
  EXPECT_EQ(FormatBlockResponse(6, ""), "6 ok block lines=0\n6 end\n");
}

TEST(FormatBlockResponseTest, ScrubsCarriageReturnsAndNuls) {
  std::string payload = "a\rb";
  payload += '\0';
  payload += "c\n";
  std::string framed = FormatBlockResponse(1, payload);
  EXPECT_EQ(framed.find('\r'), std::string::npos);
  EXPECT_EQ(framed.find('\0'), std::string::npos);
  EXPECT_EQ(framed, "1 ok block lines=1\na b c\n1 end\n");
}

TEST(RequestKindNameTest, NamesAreStable) {
  EXPECT_EQ(RequestKindName(RequestKind::kAnalyze), "analyze");
  EXPECT_EQ(RequestKindName(RequestKind::kEventSetPref), "event_pref");
  EXPECT_EQ(RequestKindName(RequestKind::kDrain), "drain");
}

}  // namespace
}  // namespace ppdb::server

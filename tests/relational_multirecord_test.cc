// Tests for the multi-record extension: the paper's assumption 5 relaxed
// so that "multiple records may exist in the same table for a given data
// provider".
#include <gtest/gtest.h>

#include "relational/table.h"

#include "common/macros.h"
#include "tests/test_util.h"
#include "violation/detector.h"

namespace ppdb::rel {
namespace {

Schema VisitSchema() {
  return Schema::Create({{"visit_day", DataType::kInt64, ""},
                         {"weight", DataType::kDouble, ""}})
      .value();
}

TEST(MultiRecordTableTest, AllowsSeveralRowsPerProvider) {
  ASSERT_OK_AND_ASSIGN(Table t,
                       Table::CreateMultiRecord("visits", VisitSchema()));
  EXPECT_TRUE(t.multi_record());
  ASSERT_OK(t.Insert(1, {Value::Int64(10), Value::Double(81.0)}));
  ASSERT_OK(t.Insert(1, {Value::Int64(40), Value::Double(79.5)}));
  ASSERT_OK(t.Insert(2, {Value::Int64(12), Value::Double(64.0)}));
  EXPECT_EQ(t.num_rows(), 3);
  EXPECT_EQ(t.num_providers(), 2);
  EXPECT_EQ(t.RowsForProvider(1).size(), 2u);
  EXPECT_EQ(t.RowsForProvider(3).size(), 0u);
}

TEST(MultiRecordTableTest, SingleRecordModeStillEnforcesAssumption5) {
  ASSERT_OK_AND_ASSIGN(Table t, Table::Create("visits", VisitSchema()));
  EXPECT_FALSE(t.multi_record());
  ASSERT_OK(t.Insert(1, {Value::Int64(10), Value::Double(81.0)}));
  EXPECT_TRUE(t.Insert(1, {Value::Int64(40), Value::Double(79.5)})
                  .IsAlreadyExists());
}

TEST(MultiRecordTableTest, PointLookupsAmbiguousWithSeveralRows) {
  ASSERT_OK_AND_ASSIGN(Table t,
                       Table::CreateMultiRecord("visits", VisitSchema()));
  ASSERT_OK(t.Insert(1, {Value::Int64(10), Value::Double(81.0)}));
  // One row: point lookup fine.
  EXPECT_OK(t.GetRow(1).status());
  ASSERT_OK(t.Insert(1, {Value::Int64(40), Value::Double(79.5)}));
  EXPECT_TRUE(t.GetRow(1).status().IsFailedPrecondition());
  EXPECT_TRUE(t.GetCell(1, "weight").status().IsFailedPrecondition());
}

TEST(MultiRecordTableTest, UpdateCellTouchesEveryOwnedRow) {
  ASSERT_OK_AND_ASSIGN(Table t,
                       Table::CreateMultiRecord("visits", VisitSchema()));
  ASSERT_OK(t.Insert(1, {Value::Int64(10), Value::Double(81.0)}));
  ASSERT_OK(t.Insert(1, {Value::Int64(40), Value::Double(79.5)}));
  ASSERT_OK(t.UpdateCell(1, 1, Value::Null()));  // Suppress weight.
  for (const Row& row : t.RowsForProvider(1)) {
    EXPECT_TRUE(row.values[1].is_null());
    EXPECT_FALSE(row.values[0].is_null());
  }
}

TEST(MultiRecordTableTest, ProviderSuppliesAttributeAnyRow) {
  ASSERT_OK_AND_ASSIGN(Table t,
                       Table::CreateMultiRecord("visits", VisitSchema()));
  ASSERT_OK(t.Insert(1, {Value::Int64(10), Value::Null()}));
  ASSERT_OK(t.Insert(1, {Value::Int64(40), Value::Double(79.5)}));
  ASSERT_OK_AND_ASSIGN(bool weight, t.ProviderSuppliesAttribute(1, "weight"));
  EXPECT_TRUE(weight);  // Second row supplies it.
  ASSERT_OK(t.UpdateCell(1, 1, Value::Null()));
  ASSERT_OK_AND_ASSIGN(bool after, t.ProviderSuppliesAttribute(1, "weight"));
  EXPECT_FALSE(after);
  ASSERT_OK_AND_ASSIGN(bool absent, t.ProviderSuppliesAttribute(9, "weight"));
  EXPECT_FALSE(absent);
  EXPECT_TRUE(
      t.ProviderSuppliesAttribute(1, "nope").status().IsNotFound());
}

TEST(MultiRecordTableTest, EraseProviderRemovesAllRows) {
  ASSERT_OK_AND_ASSIGN(Table t,
                       Table::CreateMultiRecord("visits", VisitSchema()));
  ASSERT_OK(t.Insert(1, {Value::Int64(10), Value::Double(81.0)}));
  ASSERT_OK(t.Insert(1, {Value::Int64(40), Value::Double(79.5)}));
  ASSERT_OK(t.Insert(2, {Value::Int64(12), Value::Double(64.0)}));
  ASSERT_OK(t.EraseProvider(1));
  EXPECT_EQ(t.num_rows(), 1);
  EXPECT_FALSE(t.ContainsProvider(1));
  // Index rebuilt: provider 2 still addressable.
  ASSERT_OK_AND_ASSIGN(Value v, t.GetCell(2, "weight"));
  EXPECT_EQ(v, Value::Double(64.0));
}

TEST(MultiRecordTableTest, ProviderIdsDeduplicated) {
  ASSERT_OK_AND_ASSIGN(Table t,
                       Table::CreateMultiRecord("visits", VisitSchema()));
  ASSERT_OK(t.Insert(5, {Value::Int64(1), Value::Null()}));
  ASSERT_OK(t.Insert(5, {Value::Int64(2), Value::Null()}));
  ASSERT_OK(t.Insert(3, {Value::Int64(3), Value::Null()}));
  EXPECT_EQ(t.ProviderIds(), (std::vector<ProviderId>{5, 3}));
}

// The violation model over a multi-record table: one provider with many
// records is still one w_i (Def. 2 counts providers, not tuples).
TEST(MultiRecordViolationTest, DetectorScopesByAnyOwnedRecord) {
  privacy::PrivacyConfig config;
  privacy::PurposeId purpose = config.purposes.Register("care").value();
  PPDB_CHECK_OK(config.policy.Add(
      "weight", privacy::PrivacyTuple{purpose, 2, 2, 2}));
  config.preferences.ForProvider(1).Set(
      "weight", privacy::PrivacyTuple{purpose, 0, 0, 0});
  config.preferences.ForProvider(2).Set(
      "weight", privacy::PrivacyTuple{purpose, 0, 0, 0});

  ASSERT_OK_AND_ASSIGN(Table t,
                       Table::CreateMultiRecord("visits", VisitSchema()));
  // Provider 1 has three visit records (weight supplied on one of them);
  // provider 2 has records but never supplied a weight.
  ASSERT_OK(t.Insert(1, {Value::Int64(1), Value::Null()}));
  ASSERT_OK(t.Insert(1, {Value::Int64(2), Value::Double(80.0)}));
  ASSERT_OK(t.Insert(1, {Value::Int64(3), Value::Null()}));
  ASSERT_OK(t.Insert(2, {Value::Int64(1), Value::Null()}));

  violation::ViolationDetector::Options options;
  options.data_table = &t;
  violation::ViolationDetector detector(&config, options);
  ASSERT_OK_AND_ASSIGN(violation::ViolationReport report, detector.Analyze());
  ASSERT_EQ(report.num_providers(), 2);
  // Provider 1 violated once (not three times): severity counts the
  // (attribute, purpose) conflict, not the record count.
  EXPECT_TRUE(report.Find(1)->violated);
  EXPECT_DOUBLE_EQ(report.Find(1)->total_severity, 6.0);
  // Provider 2 supplies no weight: no violation.
  EXPECT_FALSE(report.Find(2)->violated);
  EXPECT_DOUBLE_EQ(report.ProbabilityOfViolation(), 0.5);
}

}  // namespace
}  // namespace ppdb::rel

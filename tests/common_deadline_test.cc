#include "common/deadline.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "tests/test_util.h"

namespace ppdb {
namespace {

using std::chrono::milliseconds;

TEST(DeadlineTest, DefaultTokenIsInfinite) {
  Deadline deadline;
  EXPECT_FALSE(deadline.Expired());
  EXPECT_OK(deadline.Check("work"));
  EXPECT_EQ(deadline.Remaining(), Deadline::Clock::duration::max());
  deadline.Cancel();  // no-op on the infinite token
  EXPECT_FALSE(deadline.Expired());
}

TEST(DeadlineTest, NonPositiveBudgetIsAlreadyExpired) {
  EXPECT_TRUE(Deadline::After(milliseconds(0)).Expired());
  EXPECT_TRUE(Deadline::After(milliseconds(-5)).Expired());
  EXPECT_EQ(Deadline::After(milliseconds(0)).Remaining(),
            Deadline::Clock::duration::zero());
}

TEST(DeadlineTest, ExpiresAfterBudget) {
  Deadline deadline = Deadline::After(milliseconds(5));
  EXPECT_GT(deadline.Remaining(), Deadline::Clock::duration::zero());
  std::this_thread::sleep_for(milliseconds(20));
  EXPECT_TRUE(deadline.Expired());
  Status status = deadline.Check("analyze");
  EXPECT_TRUE(status.IsDeadlineExceeded());
  EXPECT_NE(status.message().find("analyze"), std::string::npos);
}

TEST(DeadlineTest, CancellableNeverExpiresUntilCancelled) {
  Deadline deadline = Deadline::Cancellable();
  EXPECT_FALSE(deadline.Expired());
  EXPECT_EQ(deadline.Remaining(), Deadline::Clock::duration::max());
  deadline.Cancel();
  EXPECT_TRUE(deadline.Expired());
  EXPECT_EQ(deadline.Remaining(), Deadline::Clock::duration::zero());
}

TEST(DeadlineTest, CopiesShareCancellation) {
  Deadline original = Deadline::Cancellable();
  Deadline copy = original;
  EXPECT_FALSE(copy.Expired());
  original.Cancel();
  EXPECT_TRUE(copy.Expired());  // the broker cancels; the engine sees it
}

TEST(DeadlineTest, CancelBeatsTimeBudget) {
  Deadline deadline = Deadline::After(std::chrono::hours(1));
  EXPECT_FALSE(deadline.Expired());
  deadline.Cancel();
  EXPECT_TRUE(deadline.Expired());
}

TEST(DeadlineTest, AtExpiresAtTheGivenInstant) {
  Deadline past = Deadline::At(Deadline::Clock::now() - milliseconds(1));
  EXPECT_TRUE(past.Expired());
  Deadline future = Deadline::At(Deadline::Clock::now() + std::chrono::hours(1));
  EXPECT_FALSE(future.Expired());
}

TEST(DeadlineStatusTest, CodeRoundTrips) {
  Status status = Status::DeadlineExceeded("late");
  EXPECT_TRUE(status.IsDeadlineExceeded());
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(StatusCodeToString(status.code()), "deadline_exceeded");
}

}  // namespace
}  // namespace ppdb

#include "violation/utility.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"
#include "violation/default_model.h"

namespace ppdb::violation {
namespace {

DefaultReport ReportWithDefaults(int64_t n, int64_t defaulted) {
  DefaultReport report;
  for (int64_t i = 1; i <= n; ++i) {
    ProviderDefault pd;
    pd.provider = i;
    pd.defaulted = i <= defaulted;
    if (pd.defaulted) ++report.num_defaulted;
    report.providers.push_back(pd);
  }
  return report;
}

TEST(UtilityModelTest, CreateRejectsNonPositiveU) {
  EXPECT_TRUE(UtilityModel::Create(0.0).status().IsInvalidArgument());
  EXPECT_TRUE(UtilityModel::Create(-2.0).status().IsInvalidArgument());
  EXPECT_OK(UtilityModel::Create(5.0).status());
}

TEST(UtilityModelTest, Eq25CurrentUtility) {
  ASSERT_OK_AND_ASSIGN(UtilityModel model, UtilityModel::Create(2.5));
  EXPECT_DOUBLE_EQ(model.CurrentUtility(100), 250.0);
  EXPECT_DOUBLE_EQ(model.CurrentUtility(0), 0.0);
}

TEST(UtilityModelTest, Eq26FutureProviders) {
  DefaultReport defaults = ReportWithDefaults(100, 15);
  EXPECT_EQ(UtilityModel::FutureProviders(100, defaults), 85);
}

TEST(UtilityModelTest, Eq27FutureUtility) {
  ASSERT_OK_AND_ASSIGN(UtilityModel model, UtilityModel::Create(2.0));
  EXPECT_DOUBLE_EQ(model.FutureUtility(85, 0.5), 85 * 2.5);
}

TEST(UtilityModelTest, Eq28JustificationCondition) {
  ASSERT_OK_AND_ASSIGN(UtilityModel model, UtilityModel::Create(1.0));
  // 100 -> 80 providers. Break-even T = 1 * (100/80 - 1) = 0.25.
  EXPECT_FALSE(model.ExpansionJustified(100, 80, 0.25));  // Equality: not >.
  EXPECT_TRUE(model.ExpansionJustified(100, 80, 0.2501));
  EXPECT_FALSE(model.ExpansionJustified(100, 80, 0.1));
}

TEST(UtilityModelTest, Eq31BreakEvenFormula) {
  ASSERT_OK_AND_ASSIGN(UtilityModel model, UtilityModel::Create(4.0));
  ASSERT_OK_AND_ASSIGN(double t, model.BreakEvenExtraUtility(100, 80));
  EXPECT_DOUBLE_EQ(t, 4.0 * (100.0 / 80.0 - 1.0));
  // No defaults: expansion is free, T > 0 suffices.
  ASSERT_OK_AND_ASSIGN(double zero, model.BreakEvenExtraUtility(100, 100));
  EXPECT_DOUBLE_EQ(zero, 0.0);
}

TEST(UtilityModelTest, BreakEvenGrowsWithDefaults) {
  ASSERT_OK_AND_ASSIGN(UtilityModel model, UtilityModel::Create(1.0));
  double previous = -1.0;
  for (int64_t remaining : {90, 70, 50, 25, 10, 1}) {
    ASSERT_OK_AND_ASSIGN(double t, model.BreakEvenExtraUtility(100, remaining));
    EXPECT_GT(t, previous);
    previous = t;
  }
}

TEST(UtilityModelTest, TotalLossHasNoFiniteBreakEven) {
  ASSERT_OK_AND_ASSIGN(UtilityModel model, UtilityModel::Create(1.0));
  EXPECT_TRUE(
      model.BreakEvenExtraUtility(100, 0).status().IsFailedPrecondition());
}

TEST(UtilityModelTest, GainingProvidersIsInvalid) {
  ASSERT_OK_AND_ASSIGN(UtilityModel model, UtilityModel::Create(1.0));
  EXPECT_TRUE(
      model.BreakEvenExtraUtility(100, 120).status().IsInvalidArgument());
}

TEST(UtilityModelTest, JustifiedExactlyAboveBreakEven) {
  // Cross-check Eq. 28 and Eq. 31 against each other over a sweep.
  ASSERT_OK_AND_ASSIGN(UtilityModel model, UtilityModel::Create(3.0));
  for (int64_t remaining = 1; remaining <= 100; remaining += 7) {
    ASSERT_OK_AND_ASSIGN(double t, model.BreakEvenExtraUtility(100, remaining));
    // Probe strictly below and above break-even (exact equality is subject
    // to floating-point rounding in t itself).
    EXPECT_FALSE(model.ExpansionJustified(100, remaining, t - 1e-6));
    EXPECT_TRUE(model.ExpansionJustified(100, remaining, t + 1e-6));
  }
}

}  // namespace
}  // namespace ppdb::violation

// Parallel/serial equivalence for the violation engine: every parallelized
// entry point must produce results identical to its serial path at any
// `num_threads` — same provider order, same per-provider fields, and a
// bitwise-equal `total_severity` (the thread pool combines shard partials
// in shard order, so even floating-point addition order is preserved).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/macros.h"
#include "common/rng.h"
#include "sim/population.h"
#include "sim/scenario.h"
#include "tests/test_util.h"
#include "violation/detector.h"
#include "violation/policy_search.h"
#include "violation/probability.h"
#include "violation/what_if.h"

namespace ppdb::violation {
namespace {

using privacy::Dimension;
using privacy::PrivacyTuple;

sim::Population MakePopulation(int64_t providers, int attributes,
                               double policy_fraction) {
  sim::PopulationConfig config;
  config.num_providers = providers;
  for (int a = 0; a < attributes; ++a) {
    config.attributes.push_back(
        {"attr" + std::to_string(a), 1.0 + a, 50.0, 10.0});
  }
  config.purposes = {"service", "analytics"};
  config.seed = 7;
  auto population = sim::PopulationGenerator(config).Generate();
  PPDB_CHECK_OK(population.status());
  auto policy = sim::MakeUniformPolicy(
      config.attributes, config.purposes, policy_fraction, policy_fraction,
      policy_fraction, &population.value().config);
  PPDB_CHECK_OK(policy.status());
  population.value().config.policy = std::move(policy).value();
  return std::move(population).value();
}

void ExpectIdenticalProvider(const ProviderViolation& a,
                             const ProviderViolation& b) {
  EXPECT_EQ(a.provider, b.provider);
  EXPECT_EQ(a.violated, b.violated);
  EXPECT_EQ(a.total_severity, b.total_severity);  // Bitwise: no tolerance.
  EXPECT_EQ(a.num_attributes_violated, b.num_attributes_violated);
  EXPECT_EQ(a.max_incident_severity, b.max_incident_severity);
  ASSERT_EQ(a.incidents.size(), b.incidents.size());
  for (size_t i = 0; i < a.incidents.size(); ++i) {
    const ViolationIncident& x = a.incidents[i];
    const ViolationIncident& y = b.incidents[i];
    EXPECT_EQ(x.attribute, y.attribute);
    EXPECT_EQ(x.purpose, y.purpose);
    EXPECT_EQ(x.dimension, y.dimension);
    EXPECT_EQ(x.preference_level, y.preference_level);
    EXPECT_EQ(x.policy_level, y.policy_level);
    EXPECT_EQ(x.diff, y.diff);
    EXPECT_EQ(x.weighted_severity, y.weighted_severity);
    EXPECT_EQ(x.from_implicit_preference, y.from_implicit_preference);
  }
}

void ExpectIdenticalReports(const ViolationReport& a,
                            const ViolationReport& b) {
  EXPECT_EQ(a.total_severity, b.total_severity);  // Bitwise: no tolerance.
  EXPECT_EQ(a.num_violated, b.num_violated);
  ASSERT_EQ(a.providers.size(), b.providers.size());
  for (size_t i = 0; i < a.providers.size(); ++i) {
    ExpectIdenticalProvider(a.providers[i], b.providers[i]);
  }
}

// The parameter is the parallel thread count under test; every test
// compares it against the serial path (num_threads = 1). 0 = one thread
// per hardware thread. The population is sized so the detector's provider
// grain (512) yields several shards.
class ParallelEquivalenceTest : public ::testing::TestWithParam<int> {
 protected:
  static void SetUpTestSuite() {
    population_ = new sim::Population(
        MakePopulation(/*providers=*/1500, /*attributes=*/5,
                       /*policy_fraction=*/0.6));
  }
  static void TearDownTestSuite() {
    delete population_;
    population_ = nullptr;
  }

  static ViolationReport AnalyzeWith(ViolationDetector::Options options,
                                     int num_threads) {
    options.num_threads = num_threads;
    ViolationDetector detector(&population_->config, options);
    auto report = detector.Analyze();
    PPDB_CHECK_OK(report.status());
    return std::move(report).value();
  }

  static sim::Population* population_;
};

sim::Population* ParallelEquivalenceTest::population_ = nullptr;

INSTANTIATE_TEST_SUITE_P(ThreadCounts, ParallelEquivalenceTest,
                         ::testing::Values(2, 8, 0),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return info.param == 0
                                      ? std::string("hw")
                                      : std::to_string(info.param) +
                                            "threads";
                         });

TEST_P(ParallelEquivalenceTest, AnalyzeMatchesSerial) {
  ViolationReport serial = AnalyzeWith({}, 1);
  ViolationReport parallel = AnalyzeWith({}, GetParam());
  ASSERT_GT(serial.num_violated, 0);  // A trivial population proves nothing.
  ExpectIdenticalReports(serial, parallel);
}

TEST_P(ParallelEquivalenceTest, AnalyzeWithDataTableMatchesSerial) {
  ViolationDetector::Options options;
  options.data_table = &population_->data;
  ViolationReport serial = AnalyzeWith(options, 1);
  ViolationReport parallel = AnalyzeWith(options, GetParam());
  ExpectIdenticalReports(serial, parallel);
}

TEST_P(ParallelEquivalenceTest, AnalyzeWithHierarchyMatchesSerial) {
  // "analytics" ⊑ "service": consent to service covers analytics.
  privacy::PrivacyConfig& config = population_->config;
  privacy::PurposeHierarchy hierarchy;
  ASSERT_OK(hierarchy.AddEdge(config.purposes.Lookup("analytics").value(),
                              config.purposes.Lookup("service").value(),
                              config.purposes));
  ViolationDetector::Options options;
  options.purpose_hierarchy = &hierarchy;
  ViolationReport serial = AnalyzeWith(options, 1);
  ViolationReport parallel = AnalyzeWith(options, GetParam());
  ExpectIdenticalReports(serial, parallel);
}

TEST_P(ParallelEquivalenceTest, AnalyzeProvidersMatchesAnalyzeProvider) {
  ViolationDetector::Options options;
  options.num_threads = GetParam();
  ViolationDetector detector(&population_->config, options);
  std::vector<privacy::ProviderId> subset = {3, 99, 512, 513, 1024, 1500};
  ASSERT_OK_AND_ASSIGN(ViolationReport report,
                       detector.AnalyzeProviders(subset));
  ASSERT_EQ(report.providers.size(), subset.size());
  for (const ProviderViolation& pv : report.providers) {
    ASSERT_OK_AND_ASSIGN(ProviderViolation single,
                         detector.AnalyzeProvider(pv.provider));
    ExpectIdenticalProvider(pv, single);
  }
}

TEST_P(ParallelEquivalenceTest, EstimatorReproducibleAcrossThreadCounts) {
  ViolationReport report = AnalyzeWith({}, 1);
  // More trials than the estimator's shard grain (8192), so the parallel
  // run really splits the trial stream.
  constexpr int64_t kTrials = 20000;
  Rng serial_rng(1234);
  ASSERT_OK_AND_ASSIGN(
      TrialEstimate serial,
      EstimateViolationProbability(report, kTrials, serial_rng,
                                   /*num_threads=*/1));
  Rng parallel_rng(1234);
  ASSERT_OK_AND_ASSIGN(
      TrialEstimate parallel,
      EstimateViolationProbability(report, kTrials, parallel_rng, GetParam()));
  EXPECT_EQ(serial.hits, parallel.hits);
  EXPECT_EQ(serial.estimate, parallel.estimate);
  EXPECT_EQ(serial.trials, parallel.trials);
  // Both RNGs advanced identically: the next draw agrees.
  EXPECT_EQ(serial_rng.NextUint64(), parallel_rng.NextUint64());
}

TEST_P(ParallelEquivalenceTest, WhatIfScheduleMatchesSerial) {
  const auto run_with = [&](int num_threads) {
    WhatIfAnalyzer::Options options;
    options.utility_per_provider = 2.0;
    options.extra_utility_per_step = 0.25;
    options.num_threads = num_threads;
    WhatIfAnalyzer analyzer(&population_->config, options);
    auto points = analyzer.RunSchedule(
        WhatIfAnalyzer::UniformSchedule(Dimension::kGranularity, 4));
    PPDB_CHECK_OK(points.status());
    return std::move(points).value();
  };
  std::vector<ExpansionPoint> serial = run_with(1);
  std::vector<ExpansionPoint> parallel = run_with(GetParam());
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t k = 0; k < serial.size(); ++k) {
    EXPECT_EQ(serial[k].step_index, parallel[k].step_index);
    EXPECT_EQ(serial[k].p_violation, parallel[k].p_violation);
    EXPECT_EQ(serial[k].p_default, parallel[k].p_default);
    EXPECT_EQ(serial[k].total_violations, parallel[k].total_violations);
    EXPECT_EQ(serial[k].n_remaining, parallel[k].n_remaining);
    EXPECT_EQ(serial[k].num_defaulted, parallel[k].num_defaulted);
    EXPECT_EQ(serial[k].utility_future, parallel[k].utility_future);
    EXPECT_EQ(serial[k].break_even_extra_utility,
              parallel[k].break_even_extra_utility);
    EXPECT_EQ(serial[k].justified, parallel[k].justified);
  }
}

TEST_P(ParallelEquivalenceTest, ScenarioDefaultOnsetsMatchesSerial) {
  const auto run_with = [&](int num_threads) {
    sim::ScenarioRunner::Options options;
    options.num_threads = num_threads;
    sim::ScenarioRunner runner(population_, options);
    auto onsets = runner.DefaultOnsets(
        WhatIfAnalyzer::UniformSchedule(Dimension::kVisibility, 3));
    PPDB_CHECK_OK(onsets.status());
    return std::move(onsets).value();
  };
  sim::DefaultOnsetResult serial = run_with(1);
  sim::DefaultOnsetResult parallel = run_with(GetParam());
  EXPECT_EQ(serial.num_providers, parallel.num_providers);
  EXPECT_EQ(serial.never_defaulted, parallel.never_defaulted);
  EXPECT_EQ(serial.onset_steps.count(), parallel.onset_steps.count());
  for (int k = 0; k <= 3; ++k) {
    EXPECT_EQ(serial.FractionDefaultedBy(k), parallel.FractionDefaultedBy(k));
  }
  for (size_t s = 0; s < serial.defaulted_by_segment.size(); ++s) {
    EXPECT_EQ(serial.defaulted_by_segment[s], parallel.defaulted_by_segment[s]);
  }
}

// The greedy search accepts the same trajectory at any thread count: the
// candidate moves are scored in parallel but selected by a serial scan in
// enumeration order.
class ParallelSearchTest : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(ThreadCounts, ParallelSearchTest,
                         ::testing::Values(2, 8, 0));

TEST_P(ParallelSearchTest, GreedySearchTrajectoryMatchesSerial) {
  privacy::PrivacyConfig config;
  privacy::PurposeId purpose = config.purposes.Register("service").value();
  ASSERT_OK(config.policy.Add("weight", PrivacyTuple{purpose, 1, 1, 1}));
  ASSERT_OK(config.policy.Add("age", PrivacyTuple{purpose, 2, 2, 2}));
  ASSERT_OK(config.sensitivities.SetAttributeSensitivity("weight", 2.0));
  ASSERT_OK(config.sensitivities.SetAttributeSensitivity("age", 1.0));
  for (int64_t i = 1; i <= 12; ++i) {
    int band = static_cast<int>((i - 1) / 4);  // 0, 1, 2.
    config.preferences.ForProvider(i).Set(
        "weight", PrivacyTuple{purpose, band, band, band});
    config.preferences.ForProvider(i).Set(
        "age", PrivacyTuple{purpose, band + 1, band, band});
    config.thresholds[i] = 6.0;
  }

  const auto search_with = [&](int num_threads) {
    SearchOptions options;
    options.utility_per_provider = 1.0;
    options.value_model = MakeLinearExposureValue(4.0);
    options.num_threads = num_threads;
    auto result = GreedyPolicySearch(config, options);
    PPDB_CHECK_OK(result.status());
    return std::move(result).value();
  };
  SearchResult serial = search_with(1);
  SearchResult parallel = search_with(GetParam());
  EXPECT_EQ(serial.best_utility, parallel.best_utility);
  EXPECT_EQ(serial.baseline_utility, parallel.baseline_utility);
  ASSERT_EQ(serial.trajectory.size(), parallel.trajectory.size());
  for (size_t k = 0; k < serial.trajectory.size(); ++k) {
    EXPECT_EQ(serial.trajectory[k].dimension, parallel.trajectory[k].dimension);
    EXPECT_EQ(serial.trajectory[k].attribute, parallel.trajectory[k].attribute);
    EXPECT_EQ(serial.trajectory[k].delta, parallel.trajectory[k].delta);
    EXPECT_EQ(serial.trajectory[k].utility, parallel.trajectory[k].utility);
    EXPECT_EQ(serial.trajectory[k].n_remaining,
              parallel.trajectory[k].n_remaining);
  }
}

}  // namespace
}  // namespace ppdb::violation

#include "audit/k_anonymity.h"

#include <gtest/gtest.h>

#include "common/macros.h"
#include "tests/test_util.h"

namespace ppdb::audit {
namespace {

using rel::DataType;
using rel::ResultSet;
using rel::Row;
using rel::Schema;
using rel::Value;

ResultSet MakeResultSet(std::vector<std::vector<std::string>> rows) {
  Schema schema = Schema::Create({{"zip", DataType::kString, ""},
                                  {"age_band", DataType::kString, ""}})
                      .value();
  ResultSet rs{std::move(schema), {}};
  int64_t id = 0;
  for (auto& fields : rows) {
    Row row{++id, {}};
    for (const std::string& field : fields) {
      row.values.push_back(field.empty() ? Value::Null()
                                         : Value::String(field));
    }
    rs.rows.push_back(std::move(row));
  }
  return rs;
}

TEST(KAnonymityTest, ComputesSmallestClass) {
  ResultSet rs = MakeResultSet({{"T2N", "[30,40)"},
                                {"T2N", "[30,40)"},
                                {"T2N", "[30,40)"},
                                {"M5V", "[20,30)"},
                                {"M5V", "[20,30)"},
                                {"H3A", "[40,50)"}});
  ASSERT_OK_AND_ASSIGN(KAnonymityResult result,
                       MeasureKAnonymity(rs, {"zip", "age_band"}));
  EXPECT_EQ(result.k, 1);  // The lone H3A row.
  EXPECT_EQ(result.num_classes, 3);
  EXPECT_EQ(result.largest_class, 3);
  EXPECT_EQ(result.num_rows, 6);
  EXPECT_TRUE(result.Satisfies(1));
  EXPECT_FALSE(result.Satisfies(2));
}

TEST(KAnonymityTest, SingleColumnSubsetChangesClasses) {
  ResultSet rs = MakeResultSet({{"T2N", "[30,40)"},
                                {"T2N", "[20,30)"},
                                {"M5V", "[20,30)"}});
  // Over both QIs every row is unique: k = 1.
  ASSERT_OK_AND_ASSIGN(KAnonymityResult both,
                       MeasureKAnonymity(rs, {"zip", "age_band"}));
  EXPECT_EQ(both.k, 1);
  // Over zip alone the two T2N rows pool: k = 1 still (M5V singleton), but
  // classes shrink to 2.
  ASSERT_OK_AND_ASSIGN(KAnonymityResult zip_only,
                       MeasureKAnonymity(rs, {"zip"}));
  EXPECT_EQ(zip_only.num_classes, 2);
}

TEST(KAnonymityTest, NullsPoolTogether) {
  // Suppression (nulls) creates its own equivalence class — fully
  // suppressed rows are mutually indistinguishable.
  ResultSet rs = MakeResultSet({{"", ""}, {"", ""}, {"", ""}, {"T2N", "x"}});
  ASSERT_OK_AND_ASSIGN(KAnonymityResult result,
                       MeasureKAnonymity(rs, {"zip", "age_band"}));
  EXPECT_EQ(result.num_classes, 2);
  EXPECT_EQ(result.largest_class, 3);
  EXPECT_EQ(result.k, 1);
}

TEST(KAnonymityTest, AtRiskFraction) {
  ResultSet rs = MakeResultSet({{"a", "1"}, {"a", "1"}, {"a", "1"},
                                {"b", "2"}, {"c", "3"}});
  ASSERT_OK_AND_ASSIGN(KAnonymityResult result,
                       MeasureKAnonymity(rs, {"zip", "age_band"}, 2));
  // Classes b and c are singletons below k=2: 2 of 5 rows at risk.
  EXPECT_DOUBLE_EQ(result.at_risk_fraction, 0.4);
}

TEST(KAnonymityTest, EmptyInputAndValidation) {
  ResultSet rs = MakeResultSet({});
  ASSERT_OK_AND_ASSIGN(KAnonymityResult result,
                       MeasureKAnonymity(rs, {"zip"}));
  EXPECT_EQ(result.k, 0);
  EXPECT_FALSE(result.Satisfies(1));
  EXPECT_TRUE(MeasureKAnonymity(rs, {}).status().IsInvalidArgument());
  EXPECT_TRUE(MeasureKAnonymity(rs, {"nope"}).status().IsNotFound());
}

TEST(KAnonymityTest, GeneralizationImprovesK) {
  // The bridge claim: coarsening the QI raises k. Exact ages are unique;
  // decade bands pool.
  Schema schema =
      Schema::Create({{"age", DataType::kString, ""}}).value();
  ResultSet exact{schema, {}};
  ResultSet banded{schema, {}};
  for (int64_t i = 0; i < 10; ++i) {
    exact.rows.push_back(
        Row{i + 1, {Value::String(std::to_string(30 + i))}});
    banded.rows.push_back(Row{i + 1, {Value::String("[30, 40)")}});
  }
  ASSERT_OK_AND_ASSIGN(KAnonymityResult k_exact,
                       MeasureKAnonymity(exact, {"age"}));
  ASSERT_OK_AND_ASSIGN(KAnonymityResult k_banded,
                       MeasureKAnonymity(banded, {"age"}));
  EXPECT_EQ(k_exact.k, 1);
  EXPECT_EQ(k_banded.k, 10);
}

}  // namespace
}  // namespace ppdb::audit

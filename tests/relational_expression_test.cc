#include "relational/expression.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace ppdb::rel {
namespace {

class ExpressionTest : public ::testing::Test {
 protected:
  ExpressionTest()
      : schema_(Schema::Create({{"age", DataType::kInt64, ""},
                                {"weight", DataType::kDouble, ""},
                                {"name", DataType::kString, ""},
                                {"active", DataType::kBool, ""}})
                    .value()),
        row_{7,
             {Value::Int64(34), Value::Double(81.5), Value::String("ada"),
              Value::Bool(true)}} {}

  Value Eval(const ExprPtr& e) {
    Result<Value> r = e->Evaluate(row_, schema_);
    EXPECT_OK(r.status());
    return r.ok() ? r.value() : Value::Null();
  }

  Schema schema_;
  Row row_;
};

TEST_F(ExpressionTest, LiteralEvaluatesToItself) {
  EXPECT_EQ(Eval(Lit(Value::Int64(5))), Value::Int64(5));
  EXPECT_EQ(Eval(Lit(Value::Null())), Value::Null());
}

TEST_F(ExpressionTest, ColumnResolvesByName) {
  EXPECT_EQ(Eval(Col("age")), Value::Int64(34));
  EXPECT_EQ(Eval(Col("name")), Value::String("ada"));
}

TEST_F(ExpressionTest, UnknownColumnErrors) {
  Result<Value> r = Col("height")->Evaluate(row_, schema_);
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST_F(ExpressionTest, Comparisons) {
  EXPECT_EQ(Eval(Gt(Col("age"), Lit(Value::Int64(30)))), Value::Bool(true));
  EXPECT_EQ(Eval(Lt(Col("age"), Lit(Value::Int64(30)))), Value::Bool(false));
  EXPECT_EQ(Eval(Ge(Col("age"), Lit(Value::Int64(34)))), Value::Bool(true));
  EXPECT_EQ(Eval(Le(Col("age"), Lit(Value::Int64(33)))), Value::Bool(false));
  EXPECT_EQ(Eval(Eq(Col("name"), Lit(Value::String("ada")))),
            Value::Bool(true));
  EXPECT_EQ(Eval(Ne(Col("name"), Lit(Value::String("bob")))),
            Value::Bool(true));
}

TEST_F(ExpressionTest, CrossNumericComparison) {
  // int64 column compared to a double literal.
  EXPECT_EQ(Eval(Gt(Col("age"), Lit(Value::Double(33.5)))),
            Value::Bool(true));
}

TEST_F(ExpressionTest, NullComparisonsYieldNull) {
  EXPECT_EQ(Eval(Eq(Lit(Value::Null()), Lit(Value::Int64(1)))),
            Value::Null());
  EXPECT_EQ(Eval(Lt(Col("age"), Lit(Value::Null()))), Value::Null());
}

TEST_F(ExpressionTest, LogicalOperators) {
  ExprPtr t = Lit(Value::Bool(true));
  ExprPtr f = Lit(Value::Bool(false));
  EXPECT_EQ(Eval(And(t, t)), Value::Bool(true));
  EXPECT_EQ(Eval(And(t, f)), Value::Bool(false));
  EXPECT_EQ(Eval(Or(f, t)), Value::Bool(true));
  EXPECT_EQ(Eval(Or(f, f)), Value::Bool(false));
  EXPECT_EQ(Eval(Not(t)), Value::Bool(false));
}

TEST_F(ExpressionTest, ThreeValuedLogic) {
  ExprPtr t = Lit(Value::Bool(true));
  ExprPtr f = Lit(Value::Bool(false));
  ExprPtr n = Lit(Value::Null());
  // null AND false = false; null AND true = null.
  EXPECT_EQ(Eval(And(n, f)), Value::Bool(false));
  EXPECT_EQ(Eval(And(n, t)), Value::Null());
  // null OR true = true; null OR false = null.
  EXPECT_EQ(Eval(Or(n, t)), Value::Bool(true));
  EXPECT_EQ(Eval(Or(n, f)), Value::Null());
  EXPECT_EQ(Eval(Not(n)), Value::Null());
}

TEST_F(ExpressionTest, IsNullPredicate) {
  EXPECT_EQ(Eval(IsNull(Lit(Value::Null()))), Value::Bool(true));
  EXPECT_EQ(Eval(IsNull(Col("age"))), Value::Bool(false));
}

TEST_F(ExpressionTest, ArithmeticIntPreserving) {
  EXPECT_EQ(Eval(Add(Col("age"), Lit(Value::Int64(6)))), Value::Int64(40));
  EXPECT_EQ(Eval(Sub(Col("age"), Lit(Value::Int64(4)))), Value::Int64(30));
  EXPECT_EQ(Eval(Mul(Lit(Value::Int64(3)), Lit(Value::Int64(4)))),
            Value::Int64(12));
}

TEST_F(ExpressionTest, ArithmeticPromotesToDouble) {
  EXPECT_EQ(Eval(Add(Col("age"), Lit(Value::Double(0.5)))),
            Value::Double(34.5));
  // Division always yields double.
  EXPECT_EQ(Eval(Div(Lit(Value::Int64(7)), Lit(Value::Int64(2)))),
            Value::Double(3.5));
}

TEST_F(ExpressionTest, DivisionByZeroErrors) {
  Result<Value> r = Div(Col("age"), Lit(Value::Int64(0)))
                        ->Evaluate(row_, schema_);
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

TEST_F(ExpressionTest, NegateExpression) {
  EXPECT_EQ(Eval(Unary(UnaryOp::kNegate, Col("age"))), Value::Int64(-34));
  EXPECT_EQ(Eval(Unary(UnaryOp::kNegate, Col("weight"))),
            Value::Double(-81.5));
}

TEST_F(ExpressionTest, NullArithmeticYieldsNull) {
  EXPECT_EQ(Eval(Add(Lit(Value::Null()), Col("age"))), Value::Null());
}

TEST_F(ExpressionTest, ComposedPredicate) {
  // (age > 30 AND weight < 90) OR name = "bob"
  ExprPtr e = Or(And(Gt(Col("age"), Lit(Value::Int64(30))),
                     Lt(Col("weight"), Lit(Value::Double(90.0)))),
                 Eq(Col("name"), Lit(Value::String("bob"))));
  EXPECT_EQ(Eval(e), Value::Bool(true));
}

TEST_F(ExpressionTest, ToStringRendersTree) {
  ExprPtr e = Gt(Col("weight"), Lit(Value::Int64(80)));
  EXPECT_EQ(e->ToString(), "(weight > 80)");
  EXPECT_EQ(Not(Col("active"))->ToString(), "NOT active");
  EXPECT_EQ(IsNull(Col("age"))->ToString(), "age IS NULL");
}

TEST_F(ExpressionTest, IncomparableTypesError) {
  Result<Value> r = Lt(Col("name"), Col("age"))->Evaluate(row_, schema_);
  EXPECT_TRUE(r.status().IsIncomparable());
}

}  // namespace
}  // namespace ppdb::rel

#include "relational/query.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace ppdb::rel {
namespace {

class QueryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Schema schema = Schema::Create({{"age", DataType::kInt64, ""},
                                    {"weight", DataType::kDouble, ""},
                                    {"city", DataType::kString, ""}})
                        .value();
    table_ = std::make_unique<Table>(
        Table::Create("people", schema).value());
    ASSERT_OK(table_->Insert(
        1, {Value::Int64(34), Value::Double(81.0), Value::String("calgary")}));
    ASSERT_OK(table_->Insert(
        2, {Value::Int64(28), Value::Double(64.0), Value::String("toronto")}));
    ASSERT_OK(table_->Insert(
        3, {Value::Int64(45), Value::Double(92.0), Value::String("calgary")}));
    ASSERT_OK(table_->Insert(
        4, {Value::Int64(19), Value::Null(), Value::String("montreal")}));
  }

  std::unique_ptr<Table> table_;
};

TEST_F(QueryTest, ScanMaterializesAllRows) {
  ResultSet rs = Scan(*table_);
  EXPECT_EQ(rs.num_rows(), 4);
  EXPECT_EQ(rs.schema, table_->schema());
  EXPECT_EQ(rs.rows[0].provider, 1);
}

TEST_F(QueryTest, FilterKeepsMatching) {
  ASSERT_OK_AND_ASSIGN(
      ResultSet rs,
      Filter(Scan(*table_), Gt(Col("age"), Lit(Value::Int64(30)))));
  EXPECT_EQ(rs.num_rows(), 2);
  EXPECT_EQ(rs.rows[0].provider, 1);
  EXPECT_EQ(rs.rows[1].provider, 3);
}

TEST_F(QueryTest, FilterNullPredicateIsFalse) {
  // Provider 4 has null weight: weight > 50 is null there -> excluded.
  ASSERT_OK_AND_ASSIGN(
      ResultSet rs,
      Filter(Scan(*table_), Gt(Col("weight"), Lit(Value::Double(50.0)))));
  EXPECT_EQ(rs.num_rows(), 3);
}

TEST_F(QueryTest, FilterTypeErrorPropagates) {
  Result<ResultSet> r =
      Filter(Scan(*table_), Gt(Col("city"), Lit(Value::Int64(1))));
  EXPECT_TRUE(r.status().IsIncomparable());
}

TEST_F(QueryTest, ProjectReordersColumns) {
  ASSERT_OK_AND_ASSIGN(ResultSet rs,
                       Project(Scan(*table_), {"city", "age"}));
  EXPECT_EQ(rs.schema.num_attributes(), 2);
  EXPECT_EQ(rs.schema.attribute(0).name, "city");
  EXPECT_EQ(rs.rows[0].values[0], Value::String("calgary"));
  EXPECT_EQ(rs.rows[0].values[1], Value::Int64(34));
  // Provider ids survive projection.
  EXPECT_EQ(rs.rows[0].provider, 1);
}

TEST_F(QueryTest, ProjectUnknownColumnErrors) {
  EXPECT_TRUE(Project(Scan(*table_), {"nope"}).status().IsNotFound());
}

TEST_F(QueryTest, SortAscendingAndDescending) {
  ASSERT_OK_AND_ASSIGN(ResultSet asc, Sort(Scan(*table_), "age", true));
  EXPECT_EQ(asc.rows.front().provider, 4);
  EXPECT_EQ(asc.rows.back().provider, 3);
  ASSERT_OK_AND_ASSIGN(ResultSet desc, Sort(Scan(*table_), "age", false));
  EXPECT_EQ(desc.rows.front().provider, 3);
}

TEST_F(QueryTest, SortNullsFirst) {
  ASSERT_OK_AND_ASSIGN(ResultSet rs, Sort(Scan(*table_), "weight", true));
  EXPECT_EQ(rs.rows.front().provider, 4);  // null weight sorts first
}

TEST_F(QueryTest, LimitTruncates) {
  ResultSet rs = Limit(Scan(*table_), 2);
  EXPECT_EQ(rs.num_rows(), 2);
  EXPECT_EQ(Limit(Scan(*table_), 0).num_rows(), 0);
  EXPECT_EQ(Limit(Scan(*table_), 99).num_rows(), 4);
}

TEST_F(QueryTest, HashJoinMatchesKeys) {
  Schema cities = Schema::Create({{"city", DataType::kString, ""},
                                  {"province", DataType::kString, ""}})
                      .value();
  ASSERT_OK_AND_ASSIGN(Table lookup, Table::Create("cities", cities));
  ASSERT_OK(lookup.Insert(
      100, {Value::String("calgary"), Value::String("AB")}));
  ASSERT_OK(lookup.Insert(
      101, {Value::String("toronto"), Value::String("ON")}));

  ASSERT_OK_AND_ASSIGN(
      ResultSet joined,
      HashJoin(Scan(*table_), Scan(lookup), "city", "city"));
  // montreal has no match; calgary matches twice (providers 1 and 3).
  EXPECT_EQ(joined.num_rows(), 3);
  // Colliding name suffixed.
  EXPECT_TRUE(joined.schema.Contains("city_r"));
  EXPECT_TRUE(joined.schema.Contains("province"));
  // Left provider id preserved.
  EXPECT_EQ(joined.rows[0].provider, 1);
}

TEST_F(QueryTest, HashJoinNullKeysNeverMatch) {
  Schema right_schema = Schema::Create({{"weight", DataType::kDouble, ""}})
                            .value();
  ASSERT_OK_AND_ASSIGN(Table right, Table::Create("r", right_schema));
  ASSERT_OK(right.Insert(200, {Value::Null()}));
  ASSERT_OK_AND_ASSIGN(
      ResultSet joined,
      HashJoin(Scan(*table_), Scan(right), "weight", "weight"));
  EXPECT_EQ(joined.num_rows(), 0);
}

TEST_F(QueryTest, HashJoinCrossNumericTypes) {
  // int64 join key on one side, double on the other: equal values match.
  Schema left_schema =
      Schema::Create({{"k", DataType::kInt64, ""}}).value();
  Schema right_schema =
      Schema::Create({{"k", DataType::kDouble, ""}}).value();
  ASSERT_OK_AND_ASSIGN(Table left, Table::Create("l", left_schema));
  ASSERT_OK_AND_ASSIGN(Table right, Table::Create("r", right_schema));
  ASSERT_OK(left.Insert(1, {Value::Int64(5)}));
  ASSERT_OK(right.Insert(2, {Value::Double(5.0)}));
  ASSERT_OK_AND_ASSIGN(ResultSet joined,
                       HashJoin(Scan(left), Scan(right), "k", "k"));
  EXPECT_EQ(joined.num_rows(), 1);
}

TEST_F(QueryTest, GlobalAggregate) {
  ASSERT_OK_AND_ASSIGN(
      ResultSet rs,
      Aggregate(Scan(*table_), {},
                {{AggOp::kCount, "", "n"},
                 {AggOp::kSum, "age", "age_sum"},
                 {AggOp::kAvg, "weight", "w_avg"},
                 {AggOp::kMin, "age", "age_min"},
                 {AggOp::kMax, "age", "age_max"}}));
  ASSERT_EQ(rs.num_rows(), 1);
  EXPECT_EQ(rs.rows[0].values[0], Value::Int64(4));
  EXPECT_EQ(rs.rows[0].values[1], Value::Double(126.0));
  // Null weight skipped by avg: (81 + 64 + 92) / 3.
  EXPECT_EQ(rs.rows[0].values[2], Value::Double(79.0));
  EXPECT_EQ(rs.rows[0].values[3], Value::Int64(19));
  EXPECT_EQ(rs.rows[0].values[4], Value::Int64(45));
}

TEST_F(QueryTest, GroupedAggregate) {
  ASSERT_OK_AND_ASSIGN(
      ResultSet rs,
      Aggregate(Scan(*table_), {"city"}, {{AggOp::kCount, "", "n"}}));
  ASSERT_EQ(rs.num_rows(), 3);
  // Groups come out in deterministic (key-sorted) order.
  EXPECT_EQ(rs.rows[0].values[0], Value::String("calgary"));
  EXPECT_EQ(rs.rows[0].values[1], Value::Int64(2));
}

TEST_F(QueryTest, AggregateRequiresSpecs) {
  EXPECT_TRUE(
      Aggregate(Scan(*table_), {}, {}).status().IsInvalidArgument());
}

TEST_F(QueryTest, AggregateUnknownColumnErrors) {
  EXPECT_TRUE(Aggregate(Scan(*table_), {}, {{AggOp::kSum, "nope", "s"}})
                  .status()
                  .IsNotFound());
}

TEST_F(QueryTest, ComposedPipeline) {
  // SELECT city, COUNT(*) FROM people WHERE age >= 28 GROUP BY city
  ASSERT_OK_AND_ASSIGN(
      ResultSet filtered,
      Filter(Scan(*table_), Ge(Col("age"), Lit(Value::Int64(28)))));
  ASSERT_OK_AND_ASSIGN(
      ResultSet grouped,
      Aggregate(filtered, {"city"}, {{AggOp::kCount, "", "n"}}));
  ASSERT_EQ(grouped.num_rows(), 2);
  EXPECT_EQ(grouped.rows[0].values[0], Value::String("calgary"));
  EXPECT_EQ(grouped.rows[0].values[1], Value::Int64(2));
  EXPECT_EQ(grouped.rows[1].values[0], Value::String("toronto"));
  EXPECT_EQ(grouped.rows[1].values[1], Value::Int64(1));
}

TEST_F(QueryTest, ResultSetToString) {
  std::string s = Scan(*table_).ToString(2);
  EXPECT_NE(s.find("2 more"), std::string::npos);
}

}  // namespace
}  // namespace ppdb::rel

#include "relational/sql.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace ppdb::rel {
namespace {

class SqlTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Schema schema = Schema::Create({{"age", DataType::kInt64, ""},
                                    {"weight", DataType::kDouble, ""},
                                    {"city", DataType::kString, ""}})
                        .value();
    Table* table = catalog_.CreateTable("people", schema).value();
    ASSERT_OK(table->Insert(1, {Value::Int64(34), Value::Double(81.0),
                                Value::String("calgary")}));
    ASSERT_OK(table->Insert(2, {Value::Int64(28), Value::Double(64.0),
                                Value::String("toronto")}));
    ASSERT_OK(table->Insert(3, {Value::Int64(45), Value::Double(92.0),
                                Value::String("calgary")}));
    ASSERT_OK(table->Insert(4, {Value::Int64(19), Value::Null(),
                                Value::String("o'brien town")}));
  }

  ResultSet Run(const std::string& sql) {
    Result<ResultSet> rs = ExecuteSql(catalog_, sql);
    EXPECT_OK(rs.status()) << sql;
    return rs.ok() ? std::move(rs).value()
                   : ResultSet{Schema::Create({}).value(), {}};
  }

  Catalog catalog_;
};

// --- Parsing ------------------------------------------------------------------

TEST_F(SqlTest, ParseMinimalQuery) {
  ASSERT_OK_AND_ASSIGN(SqlQuery q, ParseSql("SELECT * FROM people"));
  EXPECT_TRUE(q.select[0].star);
  EXPECT_EQ(q.table, "people");
  EXPECT_EQ(q.where, nullptr);
}

TEST_F(SqlTest, ParseFullClauseSet) {
  ASSERT_OK_AND_ASSIGN(
      SqlQuery q,
      ParseSql("select city, count(*) as n from people where age > 20 "
               "group by city order by n desc limit 5"));
  EXPECT_EQ(q.select.size(), 2u);
  EXPECT_EQ(q.select[1].output_name, "n");
  EXPECT_NE(q.where, nullptr);
  EXPECT_EQ(q.group_by, (std::vector<std::string>{"city"}));
  EXPECT_EQ(q.order_by, "n");
  EXPECT_FALSE(q.order_ascending);
  EXPECT_EQ(q.limit, 5);
}

TEST_F(SqlTest, ParseErrors) {
  EXPECT_TRUE(ParseSql("").status().IsParseError());
  EXPECT_TRUE(ParseSql("SELECT").status().IsParseError());
  EXPECT_TRUE(ParseSql("SELECT * people").status().IsParseError());
  EXPECT_TRUE(ParseSql("SELECT * FROM people WHERE").status().IsParseError());
  EXPECT_TRUE(
      ParseSql("SELECT * FROM people LIMIT many").status().IsParseError());
  EXPECT_TRUE(
      ParseSql("SELECT * FROM people garbage").status().IsParseError());
  EXPECT_TRUE(ParseSql("SELECT a FROM t WHERE x = 'open").status()
                  .IsParseError());
  EXPECT_TRUE(ParseSql("SELECT a FROM t WHERE x ~ 1").status()
                  .IsParseError());
}

// --- Execution ------------------------------------------------------------------

TEST_F(SqlTest, SelectStar) {
  ResultSet rs = Run("SELECT * FROM people");
  EXPECT_EQ(rs.num_rows(), 4);
  EXPECT_EQ(rs.schema.num_attributes(), 3);
}

TEST_F(SqlTest, ProjectionAndAlias) {
  ResultSet rs = Run("SELECT city, age AS years FROM people LIMIT 1");
  EXPECT_EQ(rs.schema.attribute(0).name, "city");
  EXPECT_EQ(rs.schema.attribute(1).name, "years");
  EXPECT_EQ(rs.rows[0].values[1], Value::Int64(34));
}

TEST_F(SqlTest, WhereComparisonsAndLogic) {
  EXPECT_EQ(Run("SELECT * FROM people WHERE age >= 28 AND weight < 90")
                .num_rows(),
            2);
  EXPECT_EQ(Run("SELECT * FROM people WHERE city = 'calgary' OR age < 20")
                .num_rows(),
            3);
  EXPECT_EQ(Run("SELECT * FROM people WHERE NOT city = 'calgary'")
                .num_rows(),
            2);
  EXPECT_EQ(Run("SELECT * FROM people WHERE age != 34").num_rows(), 3);
  EXPECT_EQ(Run("SELECT * FROM people WHERE age <> 34").num_rows(), 3);
}

TEST_F(SqlTest, WhereArithmetic) {
  // weight / age: 2.38, 2.29, 2.04 — all three non-null rows pass; the
  // null weight row drops out (null comparison is false).
  EXPECT_EQ(Run("SELECT * FROM people WHERE weight / age > 2").num_rows(),
            3);
  EXPECT_EQ(Run("SELECT * FROM people WHERE age + 6 = 40").num_rows(), 1);
  EXPECT_EQ(Run("SELECT * FROM people WHERE -age < -40").num_rows(), 1);
}

TEST_F(SqlTest, IsNullPredicates) {
  EXPECT_EQ(Run("SELECT * FROM people WHERE weight IS NULL").num_rows(), 1);
  EXPECT_EQ(Run("SELECT * FROM people WHERE weight IS NOT NULL").num_rows(),
            3);
}

TEST_F(SqlTest, StringLiteralEscapes) {
  ResultSet rs =
      Run("SELECT age FROM people WHERE city = 'o''brien town'");
  ASSERT_EQ(rs.num_rows(), 1);
  EXPECT_EQ(rs.rows[0].values[0], Value::Int64(19));
}

TEST_F(SqlTest, OrderByAndLimit) {
  ResultSet rs = Run("SELECT age FROM people ORDER BY age DESC LIMIT 2");
  ASSERT_EQ(rs.num_rows(), 2);
  EXPECT_EQ(rs.rows[0].values[0], Value::Int64(45));
  EXPECT_EQ(rs.rows[1].values[0], Value::Int64(34));
}

TEST_F(SqlTest, GlobalAggregates) {
  ResultSet rs = Run(
      "SELECT COUNT(*) AS n, AVG(weight) AS w, MIN(age) AS lo, "
      "MAX(age) AS hi FROM people");
  ASSERT_EQ(rs.num_rows(), 1);
  EXPECT_EQ(rs.rows[0].values[0], Value::Int64(4));
  EXPECT_EQ(rs.rows[0].values[1], Value::Double((81.0 + 64 + 92) / 3));
  EXPECT_EQ(rs.rows[0].values[2], Value::Int64(19));
  EXPECT_EQ(rs.rows[0].values[3], Value::Int64(45));
}

TEST_F(SqlTest, GroupByWithHavingLikeFilterViaWhere) {
  ResultSet rs = Run(
      "SELECT city, COUNT(*) AS n, SUM(age) AS total FROM people "
      "WHERE age >= 28 GROUP BY city ORDER BY n DESC");
  ASSERT_EQ(rs.num_rows(), 2);
  EXPECT_EQ(rs.rows[0].values[0], Value::String("calgary"));
  EXPECT_EQ(rs.rows[0].values[1], Value::Int64(2));
  EXPECT_EQ(rs.rows[0].values[2], Value::Double(79.0));
}

TEST_F(SqlTest, SelectListOrderPreservedWithAggregates) {
  ResultSet rs =
      Run("SELECT COUNT(*) AS n, city FROM people GROUP BY city");
  EXPECT_EQ(rs.schema.attribute(0).name, "n");
  EXPECT_EQ(rs.schema.attribute(1).name, "city");
}

TEST_F(SqlTest, AggregateValidation) {
  EXPECT_TRUE(ExecuteSql(catalog_, "SELECT age FROM people GROUP BY city")
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(ExecuteSql(catalog_, "SELECT city FROM people GROUP BY city")
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(
      ExecuteSql(catalog_, "SELECT * FROM people GROUP BY city")
          .status()
          .IsInvalidArgument());
}

TEST_F(SqlTest, ExecutionErrors) {
  EXPECT_TRUE(
      ExecuteSql(catalog_, "SELECT * FROM missing").status().IsNotFound());
  EXPECT_TRUE(ExecuteSql(catalog_, "SELECT nope FROM people")
                  .status()
                  .IsNotFound());
  EXPECT_TRUE(ExecuteSql(catalog_, "SELECT * FROM people WHERE age > 'x'")
                  .status()
                  .IsIncomparable());
}

TEST_F(SqlTest, KeywordsCaseInsensitiveColumnsCaseSensitive) {
  // Keywords may be any case; column names are case-sensitive, so "AGE"
  // resolves to no attribute.
  EXPECT_TRUE(ExecuteSql(catalog_, "sElEcT * fRoM people WhErE AGE > 30")
                  .status()
                  .IsNotFound());
  EXPECT_EQ(Run("select * from people where age > 30").num_rows(), 2);
}

TEST_F(SqlTest, ProviderIdsFlowThroughSql) {
  ResultSet rs = Run("SELECT weight FROM people WHERE city = 'calgary'");
  ASSERT_EQ(rs.num_rows(), 2);
  EXPECT_EQ(rs.rows[0].provider, 1);
  EXPECT_EQ(rs.rows[1].provider, 3);
}

TEST_F(SqlTest, ParenthesizedPrecedence) {
  EXPECT_EQ(
      Run("SELECT * FROM people WHERE (age > 30 OR age < 20) AND weight "
          "IS NOT NULL")
          .num_rows(),
      2);
  // Without parens, AND binds tighter.
  EXPECT_EQ(Run("SELECT * FROM people WHERE age > 30 OR age < 20 AND "
                "weight IS NOT NULL")
                .num_rows(),
            2);
}

TEST_F(SqlTest, CountColumnVariant) {
  ResultSet rs = Run("SELECT COUNT(weight) AS n FROM people");
  // Engine kCount counts rows (nulls included) — documented behaviour.
  EXPECT_EQ(rs.rows[0].values[0], Value::Int64(4));
}

TEST_F(SqlTest, JoinParses) {
  ASSERT_OK_AND_ASSIGN(
      SqlQuery q,
      ParseSql("SELECT * FROM people JOIN cities ON city = city_name"));
  ASSERT_TRUE(q.join.has_value());
  EXPECT_EQ(q.join->table, "cities");
  EXPECT_EQ(q.join->left_column, "city");
  EXPECT_EQ(q.join->right_column, "city_name");
}

TEST_F(SqlTest, JoinParseErrors) {
  EXPECT_TRUE(ParseSql("SELECT * FROM a JOIN b").status().IsParseError());
  EXPECT_TRUE(
      ParseSql("SELECT * FROM a JOIN b ON x").status().IsParseError());
  EXPECT_TRUE(
      ParseSql("SELECT * FROM a JOIN b ON x > y").status().IsParseError());
}

TEST_F(SqlTest, JoinExecutesAndComposesWithWhere) {
  Schema cities = Schema::Create({{"city_name", DataType::kString, ""},
                                  {"province", DataType::kString, ""}})
                      .value();
  Table* lookup = catalog_.CreateTable("cities", cities).value();
  ASSERT_OK(lookup->Insert(
      100, {Value::String("calgary"), Value::String("AB")}));
  ASSERT_OK(lookup->Insert(
      101, {Value::String("toronto"), Value::String("ON")}));

  ResultSet rs = Run(
      "SELECT age, province FROM people JOIN cities ON city = city_name "
      "WHERE province = 'AB' ORDER BY age");
  ASSERT_EQ(rs.num_rows(), 2);
  EXPECT_EQ(rs.rows[0].values[0], Value::Int64(34));
  EXPECT_EQ(rs.rows[0].values[1], Value::String("AB"));
  // Unmatched city ("o'brien town") drops out of the inner join.
  ResultSet all = Run(
      "SELECT COUNT(*) AS n FROM people JOIN cities ON city = city_name");
  EXPECT_EQ(all.rows[0].values[0], Value::Int64(3));
}

TEST_F(SqlTest, JoinWithAggregationPerGroup) {
  Schema cities = Schema::Create({{"city_name", DataType::kString, ""},
                                  {"province", DataType::kString, ""}})
                      .value();
  Table* lookup = catalog_.CreateTable("cities", cities).value();
  ASSERT_OK(lookup->Insert(
      100, {Value::String("calgary"), Value::String("AB")}));
  ASSERT_OK(lookup->Insert(
      101, {Value::String("toronto"), Value::String("ON")}));
  ResultSet rs = Run(
      "SELECT province, AVG(weight) AS w FROM people "
      "JOIN cities ON city = city_name GROUP BY province ORDER BY province");
  ASSERT_EQ(rs.num_rows(), 2);
  EXPECT_EQ(rs.rows[0].values[0], Value::String("AB"));
  EXPECT_EQ(rs.rows[0].values[1], Value::Double((81.0 + 92.0) / 2));
}

TEST_F(SqlTest, JoinUnknownTableErrors) {
  EXPECT_TRUE(
      ExecuteSql(catalog_, "SELECT * FROM people JOIN nope ON city = x")
          .status()
          .IsNotFound());
}

TEST_F(SqlTest, HavingFiltersGroups) {
  ResultSet rs = Run(
      "SELECT city, COUNT(*) AS n FROM people GROUP BY city "
      "HAVING n >= 2");
  ASSERT_EQ(rs.num_rows(), 1);
  EXPECT_EQ(rs.rows[0].values[0], Value::String("calgary"));
  EXPECT_EQ(rs.rows[0].values[1], Value::Int64(2));
}

TEST_F(SqlTest, HavingOnAggregateValue) {
  ResultSet rs = Run(
      "SELECT city, AVG(weight) AS w FROM people GROUP BY city "
      "HAVING w > 80 ORDER BY city");
  ASSERT_EQ(rs.num_rows(), 1);
  EXPECT_EQ(rs.rows[0].values[0], Value::String("calgary"));
}

TEST_F(SqlTest, HavingValidation) {
  // HAVING without GROUP BY is a parse error.
  EXPECT_TRUE(ParseSql("SELECT COUNT(*) AS n FROM t HAVING n > 1")
                  .status()
                  .IsParseError());
  // HAVING referencing a non-output column fails at execution.
  EXPECT_TRUE(ExecuteSql(catalog_,
                         "SELECT city, COUNT(*) AS n FROM people "
                         "GROUP BY city HAVING weight > 1")
                  .status()
                  .IsNotFound());
}

}  // namespace
}  // namespace ppdb::rel

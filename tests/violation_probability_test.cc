#include "violation/probability.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace ppdb::violation {
namespace {

ViolationReport ReportWithViolations(int64_t n, int64_t violated) {
  ViolationReport report;
  for (int64_t i = 1; i <= n; ++i) {
    ProviderViolation pv;
    pv.provider = i;
    pv.violated = i <= violated;
    if (pv.violated) {
      pv.total_severity = 1.0;
      ++report.num_violated;
      report.total_severity += 1.0;
    }
    report.providers.push_back(pv);
  }
  return report;
}

TEST(EstimateViolationProbabilityTest, MatchesCensusInTheLimit) {
  ViolationReport report = ReportWithViolations(1000, 250);
  Rng rng(7);
  ASSERT_OK_AND_ASSIGN(TrialEstimate estimate,
                       EstimateViolationProbability(report, 100000, rng));
  EXPECT_DOUBLE_EQ(estimate.census, 0.25);
  EXPECT_NEAR(estimate.estimate, 0.25, 0.01);
  EXPECT_EQ(estimate.trials, 100000);
  EXPECT_EQ(estimate.hits,
            static_cast<int64_t>(estimate.estimate * 100000 + 0.5));
}

TEST(EstimateViolationProbabilityTest, ErrorShrinksWithMoreTrials) {
  ViolationReport report = ReportWithViolations(500, 100);
  // Average over several seeds so the comparison is stable.
  double small_err = 0, large_err = 0;
  for (uint64_t seed = 0; seed < 10; ++seed) {
    Rng rng_small(seed);
    Rng rng_large(seed + 100);
    small_err +=
        EstimateViolationProbability(report, 100, rng_small)->AbsoluteError();
    large_err += EstimateViolationProbability(report, 100000, rng_large)
                     ->AbsoluteError();
  }
  EXPECT_LT(large_err, small_err);
}

TEST(EstimateViolationProbabilityTest, DeterministicInSeed) {
  ViolationReport report = ReportWithViolations(100, 30);
  Rng a(5), b(5);
  ASSERT_OK_AND_ASSIGN(TrialEstimate ea,
                       EstimateViolationProbability(report, 1000, a));
  ASSERT_OK_AND_ASSIGN(TrialEstimate eb,
                       EstimateViolationProbability(report, 1000, b));
  EXPECT_EQ(ea.hits, eb.hits);
}

TEST(EstimateViolationProbabilityTest, RejectsBadInput) {
  ViolationReport empty;
  Rng rng(1);
  EXPECT_TRUE(EstimateViolationProbability(empty, 100, rng)
                  .status()
                  .IsFailedPrecondition());
  ViolationReport report = ReportWithViolations(10, 5);
  EXPECT_TRUE(EstimateViolationProbability(report, 0, rng)
                  .status()
                  .IsInvalidArgument());
}

TEST(EstimateDefaultProbabilityTest, AllAndNoneExtremes) {
  DefaultReport all;
  DefaultReport none;
  for (int64_t i = 1; i <= 10; ++i) {
    all.providers.push_back(ProviderDefault{i, 5, 1, true});
    ++all.num_defaulted;
    none.providers.push_back(ProviderDefault{i, 0, 1, false});
  }
  Rng rng(3);
  ASSERT_OK_AND_ASSIGN(TrialEstimate e_all,
                       EstimateDefaultProbability(all, 1000, rng));
  EXPECT_DOUBLE_EQ(e_all.estimate, 1.0);
  ASSERT_OK_AND_ASSIGN(TrialEstimate e_none,
                       EstimateDefaultProbability(none, 1000, rng));
  EXPECT_DOUBLE_EQ(e_none.estimate, 0.0);
}

TEST(CertifyAlphaPpdbTest, CertifiesWhenUnderThreshold) {
  ViolationReport report = ReportWithViolations(1000, 40);  // P(W) = 0.04.
  ASSERT_OK_AND_ASSIGN(AlphaCertification cert,
                       CertifyAlphaPpdb(report, 0.05));
  EXPECT_TRUE(cert.certified);
  EXPECT_DOUBLE_EQ(cert.p_violation, 0.04);
  EXPECT_EQ(cert.num_providers, 1000);
  EXPECT_EQ(cert.num_violated, 40);
  EXPECT_TRUE(cert.interval.Contains(0.04));
}

TEST(CertifyAlphaPpdbTest, BoundaryIsInclusive) {
  // Def. 3: P(W) <= alpha, inclusive.
  ViolationReport report = ReportWithViolations(100, 5);
  ASSERT_OK_AND_ASSIGN(AlphaCertification cert,
                       CertifyAlphaPpdb(report, 0.05));
  EXPECT_TRUE(cert.certified);
}

TEST(CertifyAlphaPpdbTest, FailsWhenOverThreshold) {
  ViolationReport report = ReportWithViolations(100, 30);
  ASSERT_OK_AND_ASSIGN(AlphaCertification cert,
                       CertifyAlphaPpdb(report, 0.1));
  EXPECT_FALSE(cert.certified);
  EXPECT_FALSE(cert.certified_with_margin);
}

TEST(CertifyAlphaPpdbTest, MarginIsStricterThanPointEstimate) {
  // Just under alpha on the point estimate, but the Wilson upper bound
  // pokes above it: certified, not certified_with_margin.
  ViolationReport report = ReportWithViolations(100, 4);  // P(W) = 0.04.
  ASSERT_OK_AND_ASSIGN(AlphaCertification cert,
                       CertifyAlphaPpdb(report, 0.05));
  EXPECT_TRUE(cert.certified);
  EXPECT_FALSE(cert.certified_with_margin);
  // With a much larger population at the same rate, the margin tightens.
  ViolationReport large = ReportWithViolations(100000, 4000);
  ASSERT_OK_AND_ASSIGN(AlphaCertification big,
                       CertifyAlphaPpdb(large, 0.05));
  EXPECT_TRUE(big.certified_with_margin);
}

TEST(CertifyAlphaPpdbTest, RejectsBadArguments) {
  ViolationReport report = ReportWithViolations(10, 1);
  EXPECT_TRUE(CertifyAlphaPpdb(report, -0.1).status().IsInvalidArgument());
  EXPECT_TRUE(CertifyAlphaPpdb(report, 1.1).status().IsInvalidArgument());
  ViolationReport empty;
  EXPECT_TRUE(CertifyAlphaPpdb(empty, 0.5).status().IsFailedPrecondition());
}

TEST(CertifyAlphaPpdbTest, ZeroAlphaRequiresZeroViolations) {
  ViolationReport clean = ReportWithViolations(100, 0);
  ASSERT_OK_AND_ASSIGN(AlphaCertification cert, CertifyAlphaPpdb(clean, 0.0));
  EXPECT_TRUE(cert.certified);
  ViolationReport dirty = ReportWithViolations(100, 1);
  ASSERT_OK_AND_ASSIGN(AlphaCertification cert2,
                       CertifyAlphaPpdb(dirty, 0.0));
  EXPECT_FALSE(cert2.certified);
}

}  // namespace
}  // namespace ppdb::violation

#!/usr/bin/env bash
# Tests for tools/ppdb_lint.sh itself, in the style of
# check_metrics_docs_test.sh: seed fixture trees (via PPDB_LINT_ROOT) with
# known violations and verify each check fails on them and passes once the
# allow-marker convention is applied. The marker machinery
# (strip_comments / strip_allowed) has edge cases — markers in comment
# blocks above the line, blocks interrupted by code, findings inside doc
# prose — that nothing else exercises.
#
# Usage: ppdb_lint_test.sh <repo-root>
set -u

ROOT="${1:?repo root}"
LINT="$ROOT/tools/ppdb_lint.sh"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

fail() { echo "FAIL: $*" >&2; exit 1; }

# Minimal tree that satisfies every check: serve-docs needs a
# RequestKindName block whose commands appear in README.md; the rest pass
# on an empty src/.
make_clean_tree() { # make_clean_tree <dir>
  local dir="$1"
  mkdir -p "$dir/src/server"
  cat > "$dir/src/server/request.cc" <<'EOF'
std::string_view RequestKindName(RequestKind kind) {
  switch (kind) {
    case RequestKind::kPing: return "ping";
  }
  return "unknown";
}
EOF
  echo "The ping command." > "$dir/README.md"
}

run_lint() { # run_lint <root-dir> <output-file>; returns lint's exit code
  PPDB_LINT_ROOT="$2" bash "$LINT" > "$1" 2>&1
}

# --- clean fixture passes ----------------------------------------------------
make_clean_tree "$TMP/clean"
run_lint "$TMP/clean.out" "$TMP/clean" \
  || fail "clean fixture tree does not pass: $(cat "$TMP/clean.out")"
grep -q "all checks passed" "$TMP/clean.out" \
  || fail "clean run lacks the success line"
echo "PASS  clean fixture tree passes every check"

# --- std-sync fails, and prose mentions are ignored --------------------------
make_clean_tree "$TMP/sync"
cat > "$TMP/sync/src/a.cc" <<'EOF'
// Doc prose saying std::mutex is forbidden must NOT trip the check.
#include <mutex>
std::mutex bad_mu;
EOF
run_lint "$TMP/sync.out" "$TMP/sync" \
  && fail "raw std::mutex was not flagged"
grep -q "FAIL  std-sync" "$TMP/sync.out" || fail "std-sync did not fail"
grep -q "bad_mu" "$TMP/sync.out" || fail "finding lacks the offending line"
grep -cq "std::mutex is forbidden" "$TMP/sync.out" \
  && fail "strip_comments leaked a doc-prose mention into the findings"
echo "PASS  std-sync fails on code, ignores comment prose"

# --- inline allow marker silences --------------------------------------------
make_clean_tree "$TMP/sync2"
cat > "$TMP/sync2/src/a.cc" <<'EOF'
#include <mutex>
std::mutex special_mu;  // ppdb-lint: allow(std-sync) — fixture
EOF
run_lint "$TMP/sync2.out" "$TMP/sync2" \
  || fail "inline allow(std-sync) did not silence: $(cat "$TMP/sync2.out")"
echo "PASS  inline allow marker silences the finding"

# --- marker in the comment block directly above ------------------------------
make_clean_tree "$TMP/sync3"
cat > "$TMP/sync3/src/a.cc" <<'EOF'
#include <mutex>
// This lock predates the wrappers; migration tracked elsewhere.
// ppdb-lint: allow(std-sync)
// (more justification prose after the marker is fine)
std::mutex legacy_mu;
EOF
run_lint "$TMP/sync3.out" "$TMP/sync3" \
  || fail "comment-block allow marker did not silence: $(cat "$TMP/sync3.out")"
echo "PASS  allow marker in the contiguous comment block above silences"

# --- a non-comment line breaks the block walk --------------------------------
make_clean_tree "$TMP/sync4"
cat > "$TMP/sync4/src/a.cc" <<'EOF'
#include <mutex>
// ppdb-lint: allow(std-sync)
int unrelated_code_between = 0;
std::mutex still_bad_mu;
EOF
run_lint "$TMP/sync4.out" "$TMP/sync4" \
  && fail "marker above an interrupting code line wrongly silenced"
grep -q "still_bad_mu" "$TMP/sync4.out" \
  || fail "interrupted-block case lost the finding"
echo "PASS  marker separated by code does not silence (block is contiguous)"

# --- a marker for a different check does not silence -------------------------
make_clean_tree "$TMP/sync5"
cat > "$TMP/sync5/src/a.cc" <<'EOF'
#include <mutex>
std::mutex wrong_marker_mu;  // ppdb-lint: allow(raw-new)
EOF
run_lint "$TMP/sync5.out" "$TMP/sync5" \
  && fail "allow(raw-new) wrongly silenced the std-sync check"
echo "PASS  allow markers are per-check, not blanket"

# --- guarded-by: per-member detection ----------------------------------------
make_clean_tree "$TMP/gb"
cat > "$TMP/gb/src/a.h" <<'EOF'
struct A {
  int counter_ PPDB_GUARDED_BY(mu_);
  Mutex mu_;
  Mutex orphan_mu_;
};
EOF
run_lint "$TMP/gb.out" "$TMP/gb" \
  && fail "unreferenced Mutex member was not flagged"
grep -q "orphan_mu_" "$TMP/gb.out" \
  || fail "guarded-by finding does not name the orphan member"
grep -q "FAIL  guarded-by" "$TMP/gb.out" || fail "guarded-by did not fail"
# The referenced member must NOT be in the findings.
grep -E "a\.h:3" "$TMP/gb.out" > /dev/null \
  && fail "guarded-by flagged mu_ although PPDB_GUARDED_BY(mu_) names it"
echo "PASS  guarded-by is per-member: orphan flagged, referenced one is not"

# --- guarded-by: annotated declaration shape is still matched ----------------
# The deadlock-detector form `Mutex mu_{"name"} PPDB_LOCK_LEVEL(...)` must
# not escape the check just because the decl doesn't end in `mu_;`.
make_clean_tree "$TMP/gb2"
cat > "$TMP/gb2/src/a.h" <<'EOF'
struct A {
  Mutex named_mu_{"named"} PPDB_LOCK_LEVEL(named);
};
EOF
run_lint "$TMP/gb2.out" "$TMP/gb2" \
  && fail "brace-initialized annotated Mutex escaped the guarded-by check"
grep -q "named_mu_" "$TMP/gb2.out" \
  || fail "annotated-decl finding lacks the member name"
echo "PASS  guarded-by matches brace-initialized, order-annotated decls"

# --- guarded-by: allow marker works ------------------------------------------
make_clean_tree "$TMP/gb3"
cat > "$TMP/gb3/src/a.cc" <<'EOF'
void F() {
  // Local completion latch, joined before return.
  // ppdb-lint: allow(guarded-by)
  Mutex local_mu;
}
EOF
run_lint "$TMP/gb3.out" "$TMP/gb3" \
  || fail "allow(guarded-by) did not silence: $(cat "$TMP/gb3.out")"
echo "PASS  allow(guarded-by) silences a function-local mutex"

# --- raw-new fails and serve-docs catches undocumented commands --------------
make_clean_tree "$TMP/misc"
cat > "$TMP/misc/src/a.cc" <<'EOF'
int* Leak() { return new int(7); }
EOF
cat > "$TMP/misc/src/server/request.cc" <<'EOF'
std::string_view RequestKindName(RequestKind kind) {
  switch (kind) {
    case RequestKind::kPing: return "ping";
    case RequestKind::kSecret: return "undocumented_cmd";
  }
  return "unknown";
}
EOF
run_lint "$TMP/misc.out" "$TMP/misc" && fail "raw new + undocumented command passed"
grep -q "FAIL  raw-new" "$TMP/misc.out" || fail "raw-new did not fail"
grep -q "undocumented_cmd" "$TMP/misc.out" \
  || fail "serve-docs did not name the undocumented command"
echo "PASS  raw-new and serve-docs fail on seeded violations"

# --- the real tree passes (the gate CI actually runs) ------------------------
run_lint "$TMP/real.out" "$ROOT" \
  || fail "real tree fails ppdb_lint: $(cat "$TMP/real.out")"
echo "PASS  real tree passes ppdb_lint"

echo "OK: ppdb_lint self-test"

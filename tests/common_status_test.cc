#include "common/status.h"

#include <gtest/gtest.h>

#include <sstream>

#include "common/macros.h"
#include "common/result.h"
#include "tests/test_util.h"

namespace ppdb {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, OkFactory) {
  EXPECT_TRUE(Status::OK().ok());
}

TEST(StatusTest, ErrorFactoriesCarryCodeAndMessage) {
  struct Case {
    Status status;
    StatusCode code;
  };
  const Case cases[] = {
      {Status::InvalidArgument("m"), StatusCode::kInvalidArgument},
      {Status::NotFound("m"), StatusCode::kNotFound},
      {Status::AlreadyExists("m"), StatusCode::kAlreadyExists},
      {Status::FailedPrecondition("m"), StatusCode::kFailedPrecondition},
      {Status::Incomparable("m"), StatusCode::kIncomparable},
      {Status::ParseError("m"), StatusCode::kParseError},
      {Status::PermissionDenied("m"), StatusCode::kPermissionDenied},
      {Status::OutOfRange("m"), StatusCode::kOutOfRange},
      {Status::Internal("m"), StatusCode::kInternal},
      {Status::NotImplemented("m"), StatusCode::kNotImplemented},
  };
  for (const Case& c : cases) {
    EXPECT_FALSE(c.status.ok());
    EXPECT_EQ(c.status.code(), c.code);
    EXPECT_EQ(c.status.message(), "m");
  }
}

TEST(StatusTest, PredicatesMatchCodes) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_FALSE(Status::NotFound("x").IsInvalidArgument());
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::PermissionDenied("x").IsPermissionDenied());
  EXPECT_TRUE(Status::ParseError("x").IsParseError());
  EXPECT_TRUE(Status::Incomparable("x").IsIncomparable());
}

TEST(StatusTest, ToStringIncludesCodeName) {
  EXPECT_EQ(Status::NotFound("no such thing").ToString(),
            "not_found: no such thing");
}

TEST(StatusTest, CopyPreservesState) {
  Status original = Status::ParseError("bad token");
  Status copy = original;
  EXPECT_EQ(copy, original);
  EXPECT_EQ(copy.message(), "bad token");
  // Copy is independent.
  original = Status::OK();
  EXPECT_TRUE(original.ok());
  EXPECT_FALSE(copy.ok());
}

TEST(StatusTest, MoveLeavesSourceReusable) {
  Status original = Status::Internal("broken");
  Status moved = std::move(original);
  EXPECT_TRUE(moved.IsInternal());
  original = Status::NotFound("x");  // Re-assign after move: fine.
  EXPECT_TRUE(original.IsNotFound());
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
  EXPECT_EQ(Status::OK(), Status());
}

TEST(StatusTest, WithPrefixPrependsMessage) {
  Status s = Status::ParseError("bad digit").WithPrefix("line 3");
  EXPECT_EQ(s.message(), "line 3: bad digit");
  EXPECT_TRUE(s.IsParseError());
}

TEST(StatusTest, WithPrefixOnOkStaysOk) {
  EXPECT_TRUE(Status::OK().WithPrefix("ctx").ok());
}

TEST(StatusTest, StreamOperatorWritesToString) {
  std::ostringstream os;
  os << Status::OutOfRange("level 9");
  EXPECT_EQ(os.str(), "out_of_range: level 9");
}

TEST(StatusCodeTest, AllCodesHaveNames) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "ok");
  EXPECT_EQ(StatusCodeToString(StatusCode::kIncomparable), "incomparable");
  EXPECT_EQ(StatusCodeToString(StatusCode::kNotImplemented),
            "not_implemented");
}

// --- Result<T> -------------------------------------------------------------

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nothing");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST(ResultTest, ValueOrFallsBack) {
  Result<int> err = Status::NotFound("x");
  EXPECT_EQ(err.value_or(7), 7);
  Result<int> ok = 3;
  EXPECT_EQ(ok.value_or(7), 3);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "payload");
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r = std::string("abc");
  EXPECT_EQ(r->size(), 3u);
}

TEST(ResultTest, OkStatusInputBecomesInternalError) {
  Result<int> r = Status::OK();
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInternal());
}

// --- Macros ---------------------------------------------------------------

Status FailsWhen(bool fail) {
  if (fail) return Status::InvalidArgument("asked to fail");
  return Status::OK();
}

Status UsesReturnNotOk(bool fail, bool* reached_end) {
  PPDB_RETURN_NOT_OK(FailsWhen(fail));
  *reached_end = true;
  return Status::OK();
}

TEST(MacrosTest, ReturnNotOkPropagates) {
  bool reached = false;
  Status s = UsesReturnNotOk(true, &reached);
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_FALSE(reached);
}

TEST(MacrosTest, ReturnNotOkPassesThrough) {
  bool reached = false;
  ASSERT_OK(UsesReturnNotOk(false, &reached));
  EXPECT_TRUE(reached);
}

Result<int> ProducesValue(bool fail) {
  if (fail) return Status::NotFound("gone");
  return 11;
}

Result<int> UsesAssignOrReturn(bool fail) {
  PPDB_ASSIGN_OR_RETURN(int v, ProducesValue(fail));
  return v * 2;
}

TEST(MacrosTest, AssignOrReturnBindsValue) {
  ASSERT_OK_AND_ASSIGN(int v, UsesAssignOrReturn(false));
  EXPECT_EQ(v, 22);
}

TEST(MacrosTest, AssignOrReturnPropagatesError) {
  Result<int> r = UsesAssignOrReturn(true);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

}  // namespace
}  // namespace ppdb

#include "server/net/tcp_server.h"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "privacy/policy_dsl.h"
#include "server/broker.h"
#include "server/service.h"
#include "storage/database_io.h"
#include "storage/fs.h"
#include "tests/test_util.h"

namespace ppdb::server::net {
namespace {

constexpr char kConfigDsl[] = R"(
scale visibility: l0, l1, l2, l3
scale granularity: l0, l1, l2, l3
scale retention: l0, l1, l2, l3
purpose pr
policy weight for pr: visibility=2, granularity=2, retention=2
pref 1 weight for pr: visibility=0, granularity=0, retention=0
pref 2 weight for pr: visibility=3, granularity=3, retention=3
attr_sensitivity weight = 2
threshold 1 = 3
threshold 2 = 3
)";

/// A blocking line-protocol client over loopback, with bounded reads so a
/// server bug can never hang the test binary.
class LineClient {
 public:
  /// `rcvbuf`, when nonzero, clamps SO_RCVBUF before connecting, which
  /// pins the advertised TCP window small — the lever backpressure tests
  /// use to keep kernel buffering from absorbing the server's output.
  explicit LineClient(uint16_t port, int rcvbuf = 0) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    timeval timeout{/*tv_sec=*/10, /*tv_usec=*/0};
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
    if (rcvbuf > 0) {
      ::setsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf));
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    connected_ = ::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                           sizeof(addr)) == 0;
  }
  ~LineClient() { Close(); }

  bool connected() const { return connected_; }
  int fd() const { return fd_; }

  bool Send(const std::string& bytes) {
    size_t sent = 0;
    while (sent < bytes.size()) {
      ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                         MSG_NOSIGNAL);
      if (n <= 0) return false;
      sent += static_cast<size_t>(n);
    }
    return true;
  }

  /// Reads one '\n'-terminated line (terminator stripped); false on EOF,
  /// error, or the 10s receive timeout.
  bool ReadLine(std::string* line) {
    for (;;) {
      size_t nl = buffer_.find('\n');
      if (nl != std::string::npos) {
        *line = buffer_.substr(0, nl);
        buffer_.erase(0, nl + 1);
        return true;
      }
      char chunk[4096];
      ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return false;
      buffer_.append(chunk, static_cast<size_t>(n));
    }
  }

  /// Reads until EOF or timeout; true iff the peer closed cleanly.
  bool ReadUntilEof() {
    char chunk[4096];
    for (;;) {
      ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n == 0) return true;
      if (n < 0) return false;
    }
  }

  /// Half-close: no more requests, responses still readable.
  void ShutdownWrite() { ::shutdown(fd_, SHUT_WR); }

  void Close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
  std::string buffer_;
};

/// Reads `count` responses and keys them by request id (responses may
/// complete out of order, exactly like the pipe front-end).
std::map<int64_t, std::string> ReadResponses(LineClient& client, int count) {
  std::map<int64_t, std::string> by_id;
  std::string line;
  for (int i = 0; i < count; ++i) {
    if (!client.ReadLine(&line)) break;
    size_t space = line.find(' ');
    if (space == std::string::npos) continue;
    int64_t id = std::stoll(line.substr(0, space));
    EXPECT_EQ(by_id.count(id), 0u) << "duplicate response id: " << line;
    by_id[id] = line;
  }
  return by_id;
}

/// Open fds of this process, the no-leak oracle for the real transport
/// (the injected transport has its own open_fds() counter).
int CountOpenFds() {
  int count = 0;
  for (const auto& entry :
       std::filesystem::directory_iterator("/proc/self/fd")) {
    (void)entry;
    ++count;
  }
  return count;
}

class TcpServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("ppdb_tcp_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(dir_);
    storage::Database database;
    ASSERT_OK_AND_ASSIGN(database.config,
                         privacy::ParsePrivacyConfig(kConfigDsl));
    ASSERT_OK(storage::SaveDatabase(dir_.string(), database));
  }

  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::unique_ptr<DatabaseService> MakeService(int checkpoint_every = 1000) {
    DatabaseService::Options options;
    options.checkpoint_every_events = checkpoint_every;
    options.num_threads = 1;
    Result<std::unique_ptr<DatabaseService>> service =
        DatabaseService::Create(dir_.string(), &storage::GetRealFileSystem(),
                                options);
    EXPECT_OK(service.status());
    return std::move(service).value();
  }

  /// Starts `server` (asserting success) and runs Serve() on a background
  /// thread; the returned future yields the final-checkpoint status.
  std::future<Status> ServeAsync(TcpServer& server) {
    EXPECT_OK(server.Start());
    return std::async(std::launch::async, [&server] { return server.Serve(); });
  }

  std::filesystem::path dir_;
};

TEST_F(TcpServerTest, ServesTheLineProtocolOverLoopback) {
  std::unique_ptr<DatabaseService> service = MakeService();
  RequestBroker broker(RequestBroker::Options{});
  TcpServer server(TcpServer::Options{}, *service, broker);
  std::future<Status> served = ServeAsync(server);

  LineClient client(server.port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.Send("ping\n# comment\n\nquery pw\nbogus cmd\n"));
  std::map<int64_t, std::string> responses = ReadResponses(client, 3);
  ASSERT_EQ(responses.size(), 3u);
  EXPECT_EQ(responses[1], "1 ok pong");
  EXPECT_EQ(responses[2], "2 ok pw=0.5");
  EXPECT_NE(responses[3].find("3 error"), std::string::npos);

  // Block-framed responses survive the socket path byte-for-byte.
  ASSERT_TRUE(client.Send("stats prometheus\n"));
  std::string line;
  ASSERT_TRUE(client.ReadLine(&line));
  ASSERT_EQ(line.rfind("4 ok block lines=", 0), 0u) << line;
  int body_lines = std::stoi(line.substr(std::string("4 ok block lines=").size()));
  ASSERT_GT(body_lines, 0);
  bool saw_conn_metric = false;
  for (int i = 0; i < body_lines; ++i) {
    ASSERT_TRUE(client.ReadLine(&line)) << i;
    if (line.find("ppdb_server_conn_accepted_total") != std::string::npos) {
      saw_conn_metric = true;
    }
  }
  ASSERT_TRUE(client.ReadLine(&line));
  EXPECT_EQ(line, "4 end");
  EXPECT_TRUE(saw_conn_metric);

  ASSERT_TRUE(client.Send("drain\n"));
  ASSERT_TRUE(client.ReadLine(&line));
  EXPECT_NE(line.find("5 ok drained=1 final_checkpoint=ok"),
            std::string::npos)
      << line;
  EXPECT_TRUE(client.ReadUntilEof());
  EXPECT_OK(served.get());
}

TEST_F(TcpServerTest, EofWithoutDrainStillGetsEveryAnswerThenShutdownWorks) {
  std::unique_ptr<DatabaseService> service = MakeService();
  RequestBroker broker(RequestBroker::Options{});
  TcpServer server(TcpServer::Options{}, *service, broker);
  std::future<Status> served = ServeAsync(server);

  LineClient client(server.port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.Send("ping\nanalyze\n"));
  client.ShutdownWrite();  // half-close: answers must still arrive
  std::map<int64_t, std::string> responses = ReadResponses(client, 2);
  ASSERT_EQ(responses.size(), 2u);
  EXPECT_EQ(responses[1], "1 ok pong");
  EXPECT_NE(responses[2].find("2 ok"), std::string::npos);
  EXPECT_TRUE(client.ReadUntilEof());

  server.Shutdown();
  EXPECT_OK(served.get());
}

// The overload acceptance drill over real sockets: with the single worker
// pinned, exactly queue_capacity requests are admitted and exactly the
// excess is shed with kUnavailable + retry_after_ms.
TEST_F(TcpServerTest, OverloadShedsExactlyTheExcessOverSockets) {
  std::unique_ptr<DatabaseService> service = MakeService();
  RequestBroker::Options broker_options;
  broker_options.num_workers = 1;
  broker_options.queue_capacity = 4;
  RequestBroker broker(broker_options);

  // Pin the lone worker before any socket traffic so admission outcomes
  // depend only on queue depth — fully deterministic.
  std::promise<void> release;
  std::shared_future<void> gate(release.get_future());
  std::promise<void> pinned;
  ASSERT_OK(broker.Submit(
      Lane::kNormal, std::chrono::milliseconds(0),
      [gate, &pinned](const Deadline&) {
        pinned.set_value();
        gate.wait();
        return Response{};
      },
      [](const Response&) {}));
  pinned.get_future().wait();

  TcpServer server(TcpServer::Options{}, *service, broker);
  std::future<Status> served = ServeAsync(server);

  constexpr int kOffered = 12;  // 4 admitted + 8 shed
  LineClient client(server.port());
  ASSERT_TRUE(client.connected());
  std::string burst;
  for (int i = 0; i < kOffered; ++i) burst += "analyze\n";
  ASSERT_TRUE(client.Send(burst));

  // Admission is sequential on the loop thread, so ids 1–4 fill the queue
  // and ids 5–12 are shed — and only the sheds can answer while the
  // worker is pinned.
  std::map<int64_t, std::string> sheds = ReadResponses(client, 8);
  ASSERT_EQ(sheds.size(), 8u);
  for (const auto& [id, line] : sheds) {
    EXPECT_GE(id, 5) << line;
    EXPECT_NE(line.find("error unavailable"), std::string::npos) << line;
    EXPECT_NE(line.find("retry_after_ms="), std::string::npos) << line;
  }

  release.set_value();
  std::map<int64_t, std::string> admitted = ReadResponses(client, 4);
  ASSERT_EQ(admitted.size(), 4u);
  for (int id = 1; id <= 4; ++id) {
    EXPECT_NE(admitted[id].find(" ok"), std::string::npos) << admitted[id];
  }

  server.Shutdown();
  EXPECT_OK(served.get());
}

TEST_F(TcpServerTest, OversizedLineIsRejectedAndTheConnectionResyncs) {
  std::unique_ptr<DatabaseService> service = MakeService();
  RequestBroker broker(RequestBroker::Options{});
  TcpServer server(TcpServer::Options{}, *service, broker);
  std::future<Status> served = ServeAsync(server);

  LineClient client(server.port());
  ASSERT_TRUE(client.connected());
  // 100 KiB single line: over the 64 KiB cap.
  ASSERT_TRUE(client.Send(std::string(100 * 1024, 'x') + "\nping\n"));
  std::map<int64_t, std::string> responses = ReadResponses(client, 2);
  ASSERT_EQ(responses.size(), 2u);
  EXPECT_NE(responses[1].find("1 error invalid_argument line_too_long"),
            std::string::npos)
      << responses[1];
  EXPECT_EQ(responses[2], "2 ok pong");

  server.Shutdown();
  EXPECT_OK(served.get());
}

TEST_F(TcpServerTest, IdleConnectionIsClosedBySlowlorisGuard) {
  std::unique_ptr<DatabaseService> service = MakeService();
  RequestBroker broker(RequestBroker::Options{});
  TcpServer::Options options;
  options.idle_timeout = std::chrono::milliseconds(100);
  TcpServer server(options, *service, broker);
  std::future<Status> served = ServeAsync(server);

  const int64_t idle_closes_before =
      ConnMetrics::Get()
          .closed[static_cast<int>(CloseReason::kIdleTimeout)]
          ->Value();

  LineClient slowloris(server.port());
  ASSERT_TRUE(slowloris.connected());
  ASSERT_TRUE(slowloris.Send("pi"));  // never finishes the line
  // The server must hang up on its own; the 10s client timeout would fail
  // the test if the guard did not fire.
  EXPECT_TRUE(slowloris.ReadUntilEof());
  EXPECT_EQ(ConnMetrics::Get()
                .closed[static_cast<int>(CloseReason::kIdleTimeout)]
                ->Value(),
            idle_closes_before + 1);

  // A fresh, active client is unaffected.
  LineClient active(server.port());
  ASSERT_TRUE(active.connected());
  ASSERT_TRUE(active.Send("ping\n"));
  std::string line;
  ASSERT_TRUE(active.ReadLine(&line));
  EXPECT_EQ(line, "1 ok pong");

  server.Shutdown();
  EXPECT_OK(served.get());
}

TEST_F(TcpServerTest, DeadClientMidResponseDoesNotHarmTheServer) {
  std::unique_ptr<DatabaseService> service = MakeService();
  RequestBroker broker(RequestBroker::Options{});
  TcpServer server(TcpServer::Options{}, *service, broker);
  std::future<Status> served = ServeAsync(server);

  // Ask for work, then vanish without reading: the completion write hits
  // a dead socket (EPIPE/RST). MSG_NOSIGNAL keeps that an IoResult, not a
  // process-killing SIGPIPE.
  {
    LineClient doomed(server.port());
    ASSERT_TRUE(doomed.connected());
    ASSERT_TRUE(doomed.Send("analyze\nstats prometheus\n"));
  }  // closed here, responses unread

  // The server keeps serving new clients.
  LineClient survivor(server.port());
  ASSERT_TRUE(survivor.connected());
  ASSERT_TRUE(survivor.Send("ping\n"));
  std::string line;
  ASSERT_TRUE(survivor.ReadLine(&line));
  EXPECT_EQ(line, "1 ok pong");

  server.Shutdown();
  EXPECT_OK(served.get());
}

TEST_F(TcpServerTest, ConnectionCapThrottlesAcceptsUntilACloseFreesASlot) {
  std::unique_ptr<DatabaseService> service = MakeService();
  RequestBroker broker(RequestBroker::Options{});
  TcpServer::Options options;
  options.max_connections = 2;
  TcpServer server(options, *service, broker);
  std::future<Status> served = ServeAsync(server);

  LineClient first(server.port());
  LineClient second(server.port());
  ASSERT_TRUE(first.connected());
  ASSERT_TRUE(second.connected());
  std::string line;
  ASSERT_TRUE(first.Send("ping\n"));
  ASSERT_TRUE(first.ReadLine(&line));
  ASSERT_TRUE(second.Send("ping\n"));
  ASSERT_TRUE(second.ReadLine(&line));

  // Third connects (the backlog takes it) but is not served while the cap
  // is reached…
  LineClient third(server.port());
  ASSERT_TRUE(third.connected());
  ASSERT_TRUE(third.Send("ping\n"));
  pollfd idle{third.fd(), POLLIN, 0};
  EXPECT_EQ(::poll(&idle, 1, 300), 0) << "served beyond the connection cap";

  // …and is served as soon as a slot frees up.
  first.Close();
  ASSERT_TRUE(third.ReadLine(&line));
  EXPECT_EQ(line, "1 ok pong");

  server.Shutdown();
  EXPECT_OK(served.get());
}

TEST_F(TcpServerTest, DrainUnderLoadCompletesEverythingAndCheckpoints) {
  std::unique_ptr<DatabaseService> service = MakeService(
      /*checkpoint_every=*/1000);
  RequestBroker::Options broker_options;
  broker_options.num_workers = 2;
  RequestBroker broker(broker_options);
  TcpServer server(TcpServer::Options{}, *service, broker);
  std::future<Status> served = ServeAsync(server);

  constexpr int kEvents = 20;
  LineClient client(server.port());
  ASSERT_TRUE(client.connected());
  std::string input;
  for (int i = 0; i < kEvents; ++i) {
    input += "event add " + std::to_string(100 + i) + " 7.5\n";
  }
  input += "analyze\ndrain\nping\n";  // the post-drain ping is never served
  ASSERT_TRUE(client.Send(input));

  std::map<int64_t, std::string> responses =
      ReadResponses(client, kEvents + 2);
  ASSERT_EQ(responses.size(), static_cast<size_t>(kEvents) + 2);
  for (int id = 1; id <= kEvents; ++id) {
    EXPECT_NE(responses[id].find("ok"), std::string::npos) << responses[id];
  }
  const std::string& drain = responses[kEvents + 2];
  EXPECT_NE(drain.find("drained=1"), std::string::npos) << drain;
  EXPECT_NE(drain.find("final_checkpoint=ok"), std::string::npos) << drain;
  EXPECT_TRUE(client.ReadUntilEof());
  EXPECT_OK(served.get());
  EXPECT_EQ(broker.Stats().in_flight, 0);

  ASSERT_OK_AND_ASSIGN(storage::Database reloaded,
                       storage::LoadDatabase(dir_.string()));
  for (int i = 0; i < kEvents; ++i) {
    EXPECT_DOUBLE_EQ(reloaded.config.ThresholdFor(100 + i), 7.5) << i;
  }
}

TEST_F(TcpServerTest, PollFallbackBackendServesIdentically) {
  std::unique_ptr<DatabaseService> service = MakeService();
  RequestBroker broker(RequestBroker::Options{});
  TcpServer::Options options;
  options.force_poll_backend = true;
  TcpServer server(options, *service, broker);
  ASSERT_OK(server.Start());
  EXPECT_EQ(server.poller_name(), "poll");
  std::future<Status> served =
      std::async(std::launch::async, [&server] { return server.Serve(); });

  LineClient client(server.port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.Send("ping\nquery pw\ndrain\n"));
  std::map<int64_t, std::string> responses = ReadResponses(client, 3);
  ASSERT_EQ(responses.size(), 3u);
  EXPECT_EQ(responses[1], "1 ok pong");
  EXPECT_EQ(responses[2], "2 ok pw=0.5");
  EXPECT_NE(responses[3].find("drained=1"), std::string::npos);
  EXPECT_OK(served.get());
}

// The fault matrix from the acceptance criteria: every injected fault
// kind, three seeds each, against concurrent real clients — the server
// must keep serving whoever survives, drain cleanly, and close every fd
// it ever opened (open_fds() is the leak oracle).
TEST_F(TcpServerTest, FaultMatrixLeaksNoFdsAcrossSeeds) {
  struct MatrixEntry {
    const char* name;
    TransportFaultOptions options;
  };
  std::vector<MatrixEntry> matrix;
  {
    MatrixEntry short_io{"short_io", {}};
    short_io.options.short_read = 0.5;
    short_io.options.short_write = 0.5;
    matrix.push_back(short_io);
    MatrixEntry eagain{"eagain_storm", {}};
    eagain.options.eagain_read = 0.4;
    eagain.options.eagain_write = 0.4;
    matrix.push_back(eagain);
    MatrixEntry reset{"reset", {}};
    reset.options.reset_read = 0.05;
    matrix.push_back(reset);
    MatrixEntry epipe{"epipe", {}};
    epipe.options.epipe_write = 0.05;
    matrix.push_back(epipe);
    MatrixEntry accept_pressure{"accept_pressure", {}};
    accept_pressure.options.accept_error = 0.5;
    matrix.push_back(accept_pressure);
    MatrixEntry everything{"everything", {}};
    everything.options.short_read = 0.3;
    everything.options.short_write = 0.3;
    everything.options.eagain_read = 0.2;
    everything.options.eagain_write = 0.2;
    everything.options.reset_read = 0.02;
    everything.options.epipe_write = 0.02;
    everything.options.accept_error = 0.2;
    matrix.push_back(everything);
  }

  std::unique_ptr<DatabaseService> service = MakeService();
  for (const MatrixEntry& entry : matrix) {
    for (uint64_t seed : {1u, 2u, 3u}) {
      SCOPED_TRACE(std::string(entry.name) + " seed " +
                   std::to_string(seed));
      FaultInjectingTransport transport(&GetRealTransport(), Rng(seed),
                                        entry.options);
      RequestBroker broker(RequestBroker::Options{});
      TcpServer::Options options;
      options.transport = &transport;
      options.accept_backoff = std::chrono::milliseconds(1);
      // Faulty links stall; keep the guards short so the sweep is fast
      // but not so short that healthy-but-slow connections die.
      options.idle_timeout = std::chrono::milliseconds(1000);
      options.drain_flush_timeout = std::chrono::milliseconds(500);
      TcpServer server(options, *service, broker);
      ASSERT_OK(server.Start());
      std::future<Status> served = std::async(
          std::launch::async, [&server] { return server.Serve(); });

      // Three concurrent clients, best-effort: injected resets/EPIPEs may
      // legitimately kill a connection mid-session, so clients tolerate
      // any outcome — the assertions are about the server.
      std::vector<std::thread> clients;
      std::atomic<int> answered{0};
      for (int c = 0; c < 3; ++c) {
        clients.emplace_back([&, c] {
          LineClient client(server.port());
          if (!client.connected()) return;
          if (!client.Send("ping\nquery pw\nping\n")) return;
          // Half-close so a healthy server EOF-closes as soon as the
          // answers are out instead of waiting for the idle guard.
          client.ShutdownWrite();
          std::string line;
          while (client.ReadLine(&line)) ++answered;
        });
      }
      for (std::thread& t : clients) t.join();
      server.Shutdown();
      EXPECT_OK(served.get());

      // Zero FD leaks: everything the server opened through the transport
      // (listener + every accepted fd, fault paths included) was closed.
      EXPECT_EQ(transport.open_fds(), 0);
      (void)answered;
    }
  }
}

// Whole-process fd check over a normal session: post-serve fd count
// returns to the pre-serve baseline (self-pipe included, not just
// transport-opened sockets).
TEST_F(TcpServerTest, ProcessFdCountReturnsToBaselineAfterServe) {
  std::unique_ptr<DatabaseService> service = MakeService();
  const int fds_before = CountOpenFds();
  {
    RequestBroker broker(RequestBroker::Options{});
    TcpServer server(TcpServer::Options{}, *service, broker);
    std::future<Status> served = ServeAsync(server);
    LineClient client(server.port());
    ASSERT_TRUE(client.connected());
    ASSERT_TRUE(client.Send("ping\ndrain\n"));
    std::string line;
    while (client.ReadLine(&line)) {
    }
    EXPECT_OK(served.get());
  }
  EXPECT_EQ(CountOpenFds(), fds_before);
}

TEST_F(TcpServerTest, BackpressurePausesReadsAndStallGuardClosesDeadWeight) {
  std::unique_ptr<DatabaseService> service = MakeService();
  RequestBroker broker(RequestBroker::Options{});
  TcpServer::Options options;
  options.output_high_water = 1024;
  options.write_stall_timeout = std::chrono::milliseconds(300);
  // Keep the hard output cap out of the picture so the close is
  // attributable to the stall guard alone.
  options.output_limit = 64 * 1024 * 1024;
  TcpServer server(options, *service, broker);
  std::future<Status> served = ServeAsync(server);

  const auto& metrics = ConnMetrics::Get();
  const int64_t stall_closes_before =
      metrics.closed[static_cast<int>(CloseReason::kWriteStall)]->Value();

  // Request many multi-KiB scrapes and never read. The tiny receive
  // buffer pins the TCP window so the kernel absorbs only tens of KiB:
  // output backs up past the high-water mark (pausing reads), the
  // client-facing pipe makes no progress for write_stall_timeout, and
  // the stall guard hangs up. The close may surface client-side as an
  // RST rather than a clean EOF (unread data was discarded), so the
  // proof is the server-side metric, not the client's read result.
  LineClient glutton(server.port(), /*rcvbuf=*/4096);
  ASSERT_TRUE(glutton.connected());
  std::string burst;
  for (int i = 0; i < 2000; ++i) burst += "stats prometheus\n";
  ASSERT_TRUE(glutton.Send(burst));
  const auto give_up =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (metrics.closed[static_cast<int>(CloseReason::kWriteStall)]
                 ->Value() == stall_closes_before &&
         std::chrono::steady_clock::now() < give_up) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(
      metrics.closed[static_cast<int>(CloseReason::kWriteStall)]->Value(),
      stall_closes_before + 1);
  EXPECT_GT(metrics.backpressure_pauses->Value(), 0);

  server.Shutdown();
  EXPECT_OK(served.get());
}

}  // namespace
}  // namespace ppdb::server::net

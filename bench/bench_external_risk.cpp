// External-risk bridge — the paper positions its internal-risk model
// against the data-release literature (k-anonymity [20], differential
// privacy [2-4]). This bench quantifies the connection on one population:
//
//  (1) Granularity enforcement, driven purely by *provider preferences*,
//      also coarsens quasi-identifiers: the k-anonymity of the monitor's
//      output rises as the policy granularity narrows.
//  (2) When aggregates leave the house at world visibility, the Laplace
//      mechanism adds the classical epsilon-DP guarantee; we trace the
//      noise/accuracy trade-off.
#include <cmath>
#include <cstdio>
#include <iostream>
#include <memory>

#include "audit/dp_release.h"
#include "audit/k_anonymity.h"
#include "audit/monitor.h"
#include "common/macros.h"
#include "sim/population.h"
#include "stats/running_stats.h"
#include "stats/table_printer.h"

namespace {

using namespace ppdb;  // NOLINT(build/namespaces)

}  // namespace

int main() {
  std::printf("=== External-risk bridge: preference enforcement vs "
              "k-anonymity and DP ===\n\n");

  sim::PopulationConfig config;
  config.num_providers = 4000;
  config.attributes = {{"age_years", 2.0, 45, 15},
                       {"weight_kg", 4.0, 75, 12}};
  config.purposes = {"research"};
  config.seed = 11;
  for (sim::SegmentProfile& profile : config.profiles) {
    profile.statement_probability = 1.0;
  }
  auto population_result = sim::PopulationGenerator(config).Generate();
  PPDB_CHECK_OK(population_result.status());
  sim::Population population = std::move(population_result).value();

  rel::Catalog catalog;
  PPDB_CHECK_OK(catalog.AddTable(std::move(population.data)).status());

  audit::GeneralizerRegistry generalizers;
  generalizers.Register("age_years",
                        std::make_unique<audit::NumericRangeGeneralizer>(
                            std::vector<double>{0.0, 0.0, 10.0}));
  generalizers.Register("weight_kg",
                        std::make_unique<audit::NumericRangeGeneralizer>(
                            std::vector<double>{0.0, 0.0, 10.0}));

  // --- (1) k-anonymity of the enforced release per policy granularity. --
  std::printf("(1) k-anonymity of the monitor's output as the declared "
              "granularity varies\n");
  stats::TablePrinter k_table({"policy granularity", "k", "classes",
                               "at-risk mass (k<10)"});
  for (int granularity = 0; granularity <= 3; ++granularity) {
    privacy::PrivacyConfig scenario = population.config;
    privacy::PurposeId research =
        scenario.purposes.Lookup("research").value();
    for (const char* attr : {"age_years", "weight_kg"}) {
      PPDB_CHECK_OK(scenario.policy.Add(
          attr, privacy::PrivacyTuple{research, 1, granularity, 3}));
    }
    audit::AuditLog log;
    audit::AccessMonitor monitor(&catalog, &scenario, &generalizers, &log,
                                 audit::EnforcementMode::kEnforce);
    audit::AccessRequest request;
    request.requester = "research_partner";
    request.visibility_level = 1;
    request.purpose = research;
    request.table = "providers";
    request.attributes = {"age_years", "weight_kg"};
    auto released = monitor.Execute(request);
    PPDB_CHECK_OK(released.status());
    auto k = audit::MeasureKAnonymity(released.value(),
                                      {"age_years", "weight_kg"}, 10);
    PPDB_CHECK_OK(k.status());
    k_table.AddRow(
        {scenario.scales.granularity.NameOf(granularity).value(),
         stats::TablePrinter::FormatInt(k->k),
         stats::TablePrinter::FormatInt(k->num_classes),
         stats::TablePrinter::FormatDouble(k->at_risk_fraction, 4)});
  }
  k_table.Print(std::cout);
  std::printf("(coarser policy granularity => larger equivalence classes "
              "=> stronger protection against external re-identification; "
              "at 'specific' the doubles are near-unique and k collapses "
              "to 1)\n\n");

  // --- (2) DP release accuracy vs epsilon. ------------------------------
  std::printf("(2) Laplace release of COUNT over the stored table\n");
  rel::ResultSet scan =
      rel::Scan(*catalog.GetTable("providers").value());
  stats::TablePrinter dp_table(
      {"epsilon", "noise scale b", "mean |error| over 40 runs"});
  for (double epsilon : {0.01, 0.1, 1.0, 10.0}) {
    stats::RunningStats error;
    for (uint64_t seed = 0; seed < 40; ++seed) {
      Rng rng(seed * 31 + 7);
      auto released = audit::ReleaseAggregates(
          scan, {{rel::AggOp::kCount, "", "n"}},
          audit::DpReleaseOptions{epsilon, 1.0}, rng);
      PPDB_CHECK_OK(released.status());
      error.Add(std::fabs(released.value()[0].released_value -
                          released.value()[0].true_value));
    }
    dp_table.AddRow({stats::TablePrinter::FormatDouble(epsilon, 2),
                     stats::TablePrinter::FormatDouble(1.0 / epsilon, 2),
                     stats::TablePrinter::FormatDouble(error.mean(), 3)});
  }
  dp_table.Print(std::cout);
  std::printf("(mean |error| tracks b = sensitivity/epsilon, the textbook "
              "Laplace-mechanism trade-off)\n");
  return 0;
}

// Broker saturation benchmark: sweeps offered load against a RequestBroker
// fronting a DatabaseService and reports admission latency percentiles and
// the shed rate at each level, as JSON. This is the overload story in
// numbers: below saturation the p99 stays flat and nothing is shed; past
// it, the bounded queue sheds the excess instead of letting latency grow
// without bound.
//
// A second sweep drives the same broker through the TCP front-end
// (src/server/net/) over loopback with a pipelined closed-loop client, so
// the socket path's framing/event-loop overhead is visible next to the
// in-process numbers.
//
// Usage: bench_server_broker [output.json]
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/macros.h"
#include "obs/metrics.h"
#include "privacy/config.h"
#include "server/broker.h"
#include "server/net/tcp_server.h"
#include "server/request.h"
#include "server/service.h"
#include "storage/database_io.h"
#include "storage/fs.h"

#ifndef PPDB_BENCH_BUILD_TYPE
#define PPDB_BENCH_BUILD_TYPE "unknown"
#endif

namespace ppdb {
namespace {

using std::chrono::duration_cast;
using std::chrono::microseconds;
using std::chrono::steady_clock;

constexpr int kProviders = 3000;
constexpr int kRequestsPerLevel = 400;
constexpr double kAnalyzeFraction = 0.25;  // heavy O(N*|HP|) scans in the mix

privacy::PrivacyConfig MakeConfig() {
  privacy::PrivacyConfig config;
  privacy::PurposeId purpose = config.purposes.Register("bench").value();
  PPDB_CHECK_OK(
      config.policy.Add("weight", privacy::PrivacyTuple{purpose, 2, 2, 2}));
  for (int64_t i = 1; i <= kProviders; ++i) {
    int level = static_cast<int>(i % 4);
    config.preferences.ForProvider(i).Set(
        "weight", privacy::PrivacyTuple{purpose, level, level, level});
    config.thresholds[i] = 3.0;
  }
  return config;
}

struct LevelResult {
  double offered_rps = 0.0;
  int requests = 0;
  int shed = 0;
  double shed_rate = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
};

double PercentileMs(std::vector<microseconds>& latencies, double q) {
  if (latencies.empty()) return 0.0;
  std::sort(latencies.begin(), latencies.end());
  size_t index = static_cast<size_t>(q * static_cast<double>(latencies.size() - 1));
  return static_cast<double>(latencies[index].count()) / 1000.0;
}

LevelResult RunLevel(server::DatabaseService& service, double offered_rps) {
  server::RequestBroker::Options options;
  options.num_workers = 2;
  options.queue_capacity = 32;
  server::RequestBroker broker(options);

  server::Request query = server::ParseRequest("query pw").value();
  server::Request analyze = server::ParseRequest("analyze").value();

  std::mutex mu;
  std::vector<microseconds> latencies;
  latencies.reserve(kRequestsPerLevel);

  LevelResult result;
  result.offered_rps = offered_rps;
  result.requests = kRequestsPerLevel;

  const auto interarrival = std::chrono::duration_cast<steady_clock::duration>(
      std::chrono::duration<double>(1.0 / offered_rps));
  auto next_arrival = steady_clock::now();
  for (int i = 0; i < kRequestsPerLevel; ++i) {
    std::this_thread::sleep_until(next_arrival);
    next_arrival += interarrival;
    const bool heavy =
        static_cast<double>(i % 100) < kAnalyzeFraction * 100.0;
    const server::Request& request = heavy ? analyze : query;
    const auto submitted = steady_clock::now();
    Status admitted = broker.Submit(
        heavy ? server::Lane::kNormal : server::Lane::kPriority,
        [&service, &request](const Deadline& deadline) {
          return service.Execute(request, deadline);
        },
        [&mu, &latencies, submitted](const server::Response&) {
          auto latency =
              duration_cast<microseconds>(steady_clock::now() - submitted);
          std::lock_guard<std::mutex> lock(mu);
          latencies.push_back(latency);
        });
    if (!admitted.ok()) ++result.shed;
  }
  broker.Drain();

  result.shed_rate =
      static_cast<double>(result.shed) / static_cast<double>(result.requests);
  result.p50_ms = PercentileMs(latencies, 0.50);
  result.p95_ms = PercentileMs(latencies, 0.95);
  result.p99_ms = PercentileMs(latencies, 0.99);
  return result;
}

struct SocketLevelResult {
  int depth = 0;
  int requests = 0;
  double throughput_rps = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
};

constexpr int kSocketRequests = 2000;

// Closed-loop pipelined client: keeps `depth` requests outstanding on one
// connection and measures per-request round-trip latency through the real
// socket stack (framer, event loop, broker, writer).
SocketLevelResult RunSocketLevel(server::DatabaseService& service,
                                 int depth) {
  server::RequestBroker::Options broker_options;
  broker_options.num_workers = 2;
  broker_options.queue_capacity = 32;
  server::RequestBroker broker(broker_options);

  server::net::TcpServer::Options options;
  server::net::TcpServer server(options, service, broker);
  PPDB_CHECK_OK(server.Start());
  std::thread serving([&server] { (void)server.Serve(); });

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  PPDB_CHECK(fd >= 0);
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.port());
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  PPDB_CHECK(::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                       sizeof(addr)) == 0);

  // Request ids are per-connection and sequential (1-based), so send
  // times live in a flat vector indexed by id.
  std::vector<steady_clock::time_point> sent(kSocketRequests + 1);
  std::vector<microseconds> latencies;
  latencies.reserve(kSocketRequests);
  const std::string request = "query pw\n";

  auto send_one = [&](int id) {
    sent[static_cast<size_t>(id)] = steady_clock::now();
    size_t at = 0;
    while (at < request.size()) {
      ssize_t n = ::send(fd, request.data() + at, request.size() - at,
                         MSG_NOSIGNAL);
      PPDB_CHECK(n > 0);
      at += static_cast<size_t>(n);
    }
  };

  const auto started = steady_clock::now();
  int next_id = 1;
  for (; next_id <= depth && next_id <= kSocketRequests; ++next_id) {
    send_one(next_id);
  }

  std::string buffer;
  char chunk[4096];
  int received = 0;
  while (received < kSocketRequests) {
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    PPDB_CHECK(n > 0);
    buffer.append(chunk, static_cast<size_t>(n));
    size_t newline;
    while ((newline = buffer.find('\n')) != std::string::npos) {
      int id = std::atoi(buffer.c_str());  // "<id> ok pw=..."
      buffer.erase(0, newline + 1);
      PPDB_CHECK(id >= 1 && id <= kSocketRequests);
      latencies.push_back(duration_cast<microseconds>(
          steady_clock::now() - sent[static_cast<size_t>(id)]));
      ++received;
      if (next_id <= kSocketRequests) send_one(next_id++);
    }
  }
  const auto elapsed = steady_clock::now() - started;
  ::close(fd);
  server.Shutdown();
  serving.join();

  SocketLevelResult result;
  result.depth = depth;
  result.requests = kSocketRequests;
  result.throughput_rps =
      static_cast<double>(kSocketRequests) /
      std::chrono::duration<double>(elapsed).count();
  result.p50_ms = PercentileMs(latencies, 0.50);
  result.p95_ms = PercentileMs(latencies, 0.95);
  result.p99_ms = PercentileMs(latencies, 0.99);
  return result;
}

int Run(const std::string& output_path) {
  namespace fs = std::filesystem;
  fs::path dir = fs::temp_directory_path() /
                 ("ppdb_bench_broker_" + std::to_string(::getpid()));
  fs::remove_all(dir);
  storage::Database database;
  database.config = MakeConfig();
  PPDB_CHECK_OK(storage::SaveDatabase(dir.string(), database));

  server::DatabaseService::Options options;
  options.checkpoint_every_events = 1 << 30;  // keep the disk out of the loop
  options.num_threads = 1;
  auto service = server::DatabaseService::Create(
      dir.string(), &storage::GetRealFileSystem(), options);
  PPDB_CHECK_OK(service.status());

  const double levels[] = {500.0, 2000.0, 8000.0, 32000.0};
  std::vector<LevelResult> results;
  for (double rps : levels) {
    results.push_back(RunLevel(*service.value(), rps));
    std::fprintf(stderr,
                 "offered=%.0f rps: shed_rate=%.3f p50=%.3fms p99=%.3fms\n",
                 rps, results.back().shed_rate, results.back().p50_ms,
                 results.back().p99_ms);
  }
  const int socket_depths[] = {1, 8, 32};
  std::vector<SocketLevelResult> socket_results;
  for (int depth : socket_depths) {
    socket_results.push_back(RunSocketLevel(*service.value(), depth));
    std::fprintf(stderr,
                 "socket depth=%d: %.0f req/s p50=%.3fms p99=%.3fms\n",
                 depth, socket_results.back().throughput_rps,
                 socket_results.back().p50_ms,
                 socket_results.back().p99_ms);
  }
  fs::remove_all(dir);

  std::ofstream out(output_path);
  out << "{\n  \"benchmark\": \"server_broker_saturation\",\n"
      // The build type of the code under test; tools/run_bench.sh refuses
      // to record baselines unless this is "release".
      << "  \"library_build_type\": \"" << PPDB_BENCH_BUILD_TYPE << "\",\n"
      << "  \"providers\": " << kProviders << ",\n"
      << "  \"requests_per_level\": " << kRequestsPerLevel << ",\n"
      << "  \"sweep\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const LevelResult& r = results[i];
    char line[256];
    std::snprintf(line, sizeof(line),
                  "    {\"offered_rps\": %.0f, \"requests\": %d, "
                  "\"shed\": %d, \"shed_rate\": %.4f, "
                  "\"p50_ms\": %.3f, \"p95_ms\": %.3f, \"p99_ms\": %.3f}%s\n",
                  r.offered_rps, r.requests, r.shed, r.shed_rate, r.p50_ms,
                  r.p95_ms, r.p99_ms, i + 1 < results.size() ? "," : "");
    out << line;
  }
  out << "  ],\n";

  // Same service, but through the TCP front-end: loopback socket, one
  // pipelined closed-loop connection per depth level.
  out << "  \"socket_sweep\": [\n";
  for (size_t i = 0; i < socket_results.size(); ++i) {
    const SocketLevelResult& r = socket_results[i];
    char line[256];
    std::snprintf(line, sizeof(line),
                  "    {\"pipeline_depth\": %d, \"requests\": %d, "
                  "\"throughput_rps\": %.0f, "
                  "\"p50_ms\": %.3f, \"p95_ms\": %.3f, \"p99_ms\": %.3f}%s\n",
                  r.depth, r.requests, r.throughput_rps, r.p50_ms, r.p95_ms,
                  r.p99_ms, i + 1 < socket_results.size() ? "," : "");
    out << line;
  }
  out << "  ],\n";

  // The broker's own registry histograms, accumulated across the whole
  // sweep. These split the end-to-end latency above into its queue-wait
  // and service components (see OBSERVABILITY.md).
  out << "  \"registry\": {\n";
  const struct {
    const char* json_key;
    const char* metric;
  } kHistograms[] = {
      {"queue_wait_seconds", "ppdb_broker_queue_wait_seconds"},
      {"service_seconds", "ppdb_broker_service_seconds"},
  };
  for (size_t i = 0; i < std::size(kHistograms); ++i) {
    obs::Histogram* h = obs::MetricsRegistry::Default().GetHistogram(
        kHistograms[i].metric, "");
    char line[256];
    std::snprintf(line, sizeof(line),
                  "    \"%s\": {\"count\": %lld, \"p50_ms\": %.3f, "
                  "\"p95_ms\": %.3f, \"p99_ms\": %.3f}%s\n",
                  kHistograms[i].json_key,
                  static_cast<long long>(h->Count()),
                  h->Percentile(0.50) * 1000.0, h->Percentile(0.95) * 1000.0,
                  h->Percentile(0.99) * 1000.0,
                  i + 1 < std::size(kHistograms) ? "," : "");
    out << line;
  }
  out << "  }\n}\n";
  if (!out) {
    std::fprintf(stderr, "error: failed to write %s\n", output_path.c_str());
    return 1;
  }
  std::fprintf(stderr, "wrote %s\n", output_path.c_str());
  return 0;
}

}  // namespace
}  // namespace ppdb

int main(int argc, char** argv) {
  std::string output = argc > 1 ? argv[1] : "BENCH_server_broker.json";
  return ppdb::Run(output);
}

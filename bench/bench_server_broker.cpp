// Broker saturation benchmark: sweeps offered load against a RequestBroker
// fronting a DatabaseService and reports admission latency percentiles and
// the shed rate at each level, as JSON. This is the overload story in
// numbers: below saturation the p99 stays flat and nothing is shed; past
// it, the bounded queue sheds the excess instead of letting latency grow
// without bound.
//
// Usage: bench_server_broker [output.json]
#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/macros.h"
#include "obs/metrics.h"
#include "privacy/config.h"
#include "server/broker.h"
#include "server/request.h"
#include "server/service.h"
#include "storage/database_io.h"
#include "storage/fs.h"

#ifndef PPDB_BENCH_BUILD_TYPE
#define PPDB_BENCH_BUILD_TYPE "unknown"
#endif

namespace ppdb {
namespace {

using std::chrono::duration_cast;
using std::chrono::microseconds;
using std::chrono::steady_clock;

constexpr int kProviders = 3000;
constexpr int kRequestsPerLevel = 400;
constexpr double kAnalyzeFraction = 0.25;  // heavy O(N*|HP|) scans in the mix

privacy::PrivacyConfig MakeConfig() {
  privacy::PrivacyConfig config;
  privacy::PurposeId purpose = config.purposes.Register("bench").value();
  PPDB_CHECK_OK(
      config.policy.Add("weight", privacy::PrivacyTuple{purpose, 2, 2, 2}));
  for (int64_t i = 1; i <= kProviders; ++i) {
    int level = static_cast<int>(i % 4);
    config.preferences.ForProvider(i).Set(
        "weight", privacy::PrivacyTuple{purpose, level, level, level});
    config.thresholds[i] = 3.0;
  }
  return config;
}

struct LevelResult {
  double offered_rps = 0.0;
  int requests = 0;
  int shed = 0;
  double shed_rate = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
};

double PercentileMs(std::vector<microseconds>& latencies, double q) {
  if (latencies.empty()) return 0.0;
  std::sort(latencies.begin(), latencies.end());
  size_t index = static_cast<size_t>(q * static_cast<double>(latencies.size() - 1));
  return static_cast<double>(latencies[index].count()) / 1000.0;
}

LevelResult RunLevel(server::DatabaseService& service, double offered_rps) {
  server::RequestBroker::Options options;
  options.num_workers = 2;
  options.queue_capacity = 32;
  server::RequestBroker broker(options);

  server::Request query = server::ParseRequest("query pw").value();
  server::Request analyze = server::ParseRequest("analyze").value();

  std::mutex mu;
  std::vector<microseconds> latencies;
  latencies.reserve(kRequestsPerLevel);

  LevelResult result;
  result.offered_rps = offered_rps;
  result.requests = kRequestsPerLevel;

  const auto interarrival = std::chrono::duration_cast<steady_clock::duration>(
      std::chrono::duration<double>(1.0 / offered_rps));
  auto next_arrival = steady_clock::now();
  for (int i = 0; i < kRequestsPerLevel; ++i) {
    std::this_thread::sleep_until(next_arrival);
    next_arrival += interarrival;
    const bool heavy =
        static_cast<double>(i % 100) < kAnalyzeFraction * 100.0;
    const server::Request& request = heavy ? analyze : query;
    const auto submitted = steady_clock::now();
    Status admitted = broker.Submit(
        heavy ? server::Lane::kNormal : server::Lane::kPriority,
        [&service, &request](const Deadline& deadline) {
          return service.Execute(request, deadline);
        },
        [&mu, &latencies, submitted](const server::Response&) {
          auto latency =
              duration_cast<microseconds>(steady_clock::now() - submitted);
          std::lock_guard<std::mutex> lock(mu);
          latencies.push_back(latency);
        });
    if (!admitted.ok()) ++result.shed;
  }
  broker.Drain();

  result.shed_rate =
      static_cast<double>(result.shed) / static_cast<double>(result.requests);
  result.p50_ms = PercentileMs(latencies, 0.50);
  result.p95_ms = PercentileMs(latencies, 0.95);
  result.p99_ms = PercentileMs(latencies, 0.99);
  return result;
}

int Run(const std::string& output_path) {
  namespace fs = std::filesystem;
  fs::path dir = fs::temp_directory_path() /
                 ("ppdb_bench_broker_" + std::to_string(::getpid()));
  fs::remove_all(dir);
  storage::Database database;
  database.config = MakeConfig();
  PPDB_CHECK_OK(storage::SaveDatabase(dir.string(), database));

  server::DatabaseService::Options options;
  options.checkpoint_every_events = 1 << 30;  // keep the disk out of the loop
  options.num_threads = 1;
  auto service = server::DatabaseService::Create(
      dir.string(), &storage::GetRealFileSystem(), options);
  PPDB_CHECK_OK(service.status());

  const double levels[] = {500.0, 2000.0, 8000.0, 32000.0};
  std::vector<LevelResult> results;
  for (double rps : levels) {
    results.push_back(RunLevel(*service.value(), rps));
    std::fprintf(stderr,
                 "offered=%.0f rps: shed_rate=%.3f p50=%.3fms p99=%.3fms\n",
                 rps, results.back().shed_rate, results.back().p50_ms,
                 results.back().p99_ms);
  }
  fs::remove_all(dir);

  std::ofstream out(output_path);
  out << "{\n  \"benchmark\": \"server_broker_saturation\",\n"
      // The build type of the code under test; tools/run_bench.sh refuses
      // to record baselines unless this is "release".
      << "  \"library_build_type\": \"" << PPDB_BENCH_BUILD_TYPE << "\",\n"
      << "  \"providers\": " << kProviders << ",\n"
      << "  \"requests_per_level\": " << kRequestsPerLevel << ",\n"
      << "  \"sweep\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const LevelResult& r = results[i];
    char line[256];
    std::snprintf(line, sizeof(line),
                  "    {\"offered_rps\": %.0f, \"requests\": %d, "
                  "\"shed\": %d, \"shed_rate\": %.4f, "
                  "\"p50_ms\": %.3f, \"p95_ms\": %.3f, \"p99_ms\": %.3f}%s\n",
                  r.offered_rps, r.requests, r.shed, r.shed_rate, r.p50_ms,
                  r.p95_ms, r.p99_ms, i + 1 < results.size() ? "," : "");
    out << line;
  }
  out << "  ],\n";

  // The broker's own registry histograms, accumulated across the whole
  // sweep. These split the end-to-end latency above into its queue-wait
  // and service components (see OBSERVABILITY.md).
  out << "  \"registry\": {\n";
  const struct {
    const char* json_key;
    const char* metric;
  } kHistograms[] = {
      {"queue_wait_seconds", "ppdb_broker_queue_wait_seconds"},
      {"service_seconds", "ppdb_broker_service_seconds"},
  };
  for (size_t i = 0; i < std::size(kHistograms); ++i) {
    obs::Histogram* h = obs::MetricsRegistry::Default().GetHistogram(
        kHistograms[i].metric, "");
    char line[256];
    std::snprintf(line, sizeof(line),
                  "    \"%s\": {\"count\": %lld, \"p50_ms\": %.3f, "
                  "\"p95_ms\": %.3f, \"p99_ms\": %.3f}%s\n",
                  kHistograms[i].json_key,
                  static_cast<long long>(h->Count()),
                  h->Percentile(0.50) * 1000.0, h->Percentile(0.95) * 1000.0,
                  h->Percentile(0.99) * 1000.0,
                  i + 1 < std::size(kHistograms) ? "," : "");
    out << line;
  }
  out << "  }\n}\n";
  if (!out) {
    std::fprintf(stderr, "error: failed to write %s\n", output_path.c_str());
    return 1;
  }
  std::fprintf(stderr, "wrote %s\n", output_path.c_str());
  return 0;
}

}  // namespace
}  // namespace ppdb

int main(int argc, char** argv) {
  std::string output = argc > 1 ? argv[1] : "BENCH_server_broker.json";
  return ppdb::Run(output);
}

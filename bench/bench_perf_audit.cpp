// Perf-2 — Engineering benchmark: runtime overhead of privacy enforcement
// (google-benchmark). Compares a raw relational scan against the same read
// through the access monitor in enforce and observe modes, plus the
// retention sweeper.
#include <benchmark/benchmark.h>

#include <memory>

#include "audit/monitor.h"
#include "audit/retention_sweeper.h"
#include "common/macros.h"
#include "relational/query.h"
#include "sim/population.h"

namespace {

using namespace ppdb;  // NOLINT(build/namespaces)

struct Fixture {
  rel::Catalog catalog;
  privacy::PrivacyConfig config;
  audit::GeneralizerRegistry generalizers;
  audit::AuditLog log;
  audit::IngestLedger ledger;
  privacy::PurposeId purpose = 0;
  rel::Table* table = nullptr;

  explicit Fixture(int64_t providers) {
    sim::PopulationConfig population_config;
    population_config.num_providers = providers;
    population_config.attributes = {{"income", 5.0, 65000, 20000},
                                    {"health", 4.0, 70, 15}};
    population_config.purposes = {"analytics"};
    population_config.seed = 3;
    auto population = sim::PopulationGenerator(population_config).Generate();
    PPDB_CHECK_OK(population.status());
    config = std::move(population.value().config);
    auto policy = sim::MakeUniformPolicy(population_config.attributes,
                                         population_config.purposes, 0.5,
                                         0.67, 0.5, &config);
    PPDB_CHECK_OK(policy.status());
    config.policy = std::move(policy).value();
    purpose = config.purposes.Lookup("analytics").value();

    auto handle = catalog.AddTable(std::move(population.value().data));
    PPDB_CHECK_OK(handle.status());
    table = handle.value();
    for (rel::ProviderId id : table->ProviderIds()) {
      ledger.RecordRowIngest(table->name(), id, {"income", "health"}, 0);
    }
    generalizers.Register("income",
                          std::make_unique<audit::NumericRangeGeneralizer>(
                              std::vector<double>{0.0, 0.0, 10000.0}));
    generalizers.Register("health",
                          std::make_unique<audit::NumericRangeGeneralizer>(
                              std::vector<double>{0.0, 0.0, 10.0}));
  }

  audit::AccessRequest Request() const {
    audit::AccessRequest request;
    request.requester = "bench";
    request.visibility_level = 1;
    request.purpose = purpose;
    request.table = table->name();
    request.attributes = {"income", "health"};
    request.day = 1;
    return request;
  }
};

void BM_RawScan(benchmark::State& state) {
  Fixture fixture(state.range(0));
  for (auto _ : state) {
    rel::ResultSet rs = rel::Scan(*fixture.table);
    benchmark::DoNotOptimize(rs.num_rows());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RawScan)->Arg(1000)->Arg(10000)->Unit(benchmark::kMicrosecond);

void BM_MonitoredReadEnforce(benchmark::State& state) {
  Fixture fixture(state.range(0));
  audit::AccessMonitor monitor(&fixture.catalog, &fixture.config,
                               &fixture.generalizers, &fixture.log,
                               audit::EnforcementMode::kEnforce,
                               &fixture.ledger);
  audit::AccessRequest request = fixture.Request();
  for (auto _ : state) {
    auto rs = monitor.Execute(request);
    PPDB_CHECK_OK(rs.status());
    benchmark::DoNotOptimize(rs->num_rows());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MonitoredReadEnforce)
    ->Arg(1000)
    ->Arg(10000)
    ->Unit(benchmark::kMicrosecond);

void BM_MonitoredReadObserve(benchmark::State& state) {
  Fixture fixture(state.range(0));
  audit::AccessMonitor monitor(&fixture.catalog, &fixture.config,
                               &fixture.generalizers, &fixture.log,
                               audit::EnforcementMode::kObserve,
                               &fixture.ledger);
  audit::AccessRequest request = fixture.Request();
  for (auto _ : state) {
    auto rs = monitor.Execute(request);
    PPDB_CHECK_OK(rs.status());
    benchmark::DoNotOptimize(rs->num_rows());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MonitoredReadObserve)
    ->Arg(1000)
    ->Arg(10000)
    ->Unit(benchmark::kMicrosecond);

void BM_RetentionSweep(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    Fixture fixture(state.range(0));  // Fresh table: sweeps mutate it.
    audit::RetentionSweeper sweeper(&fixture.config, &fixture.ledger,
                                    &fixture.log);
    state.ResumeTiming();
    auto stats = sweeper.Sweep(fixture.table, 45);
    PPDB_CHECK_OK(stats.status());
    benchmark::DoNotOptimize(stats->cells_purged);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RetentionSweep)
    ->Arg(1000)
    ->Arg(10000)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();

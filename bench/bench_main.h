// Shared google-benchmark main for ppdb perf benches, fixing one lie in
// the stock JSON output: the context's "library_build_type" field reports
// how the *benchmark library* was compiled, not how the code under test
// was. With the distro-packaged libbenchmark that field is frozen at the
// package's own build flavor whatever flags this tree uses, which would
// defeat tools/run_bench.sh's release-only recording gate. The reporter
// below re-points the field at this build's CMAKE_BUILD_TYPE (injected as
// PPDB_BENCH_BUILD_TYPE), and the same value is exposed unambiguously as
// the "ppdb_build_type" custom context entry.
#ifndef PPDB_BENCH_BENCH_MAIN_H_
#define PPDB_BENCH_BENCH_MAIN_H_

#include <benchmark/benchmark.h>

#include <iostream>
#include <sstream>
#include <string>

#ifndef PPDB_BENCH_BUILD_TYPE
#define PPDB_BENCH_BUILD_TYPE "unknown"
#endif

namespace ppdb::bench {

/// JSONReporter whose context block carries the build type of the ppdb
/// code under test (see the file comment).
class BuildTypeJsonReporter : public benchmark::JSONReporter {
 public:
  bool ReportContext(const Context& context) override {
    std::ostream& out = GetOutputStream();
    std::ostringstream buffer;
    SetOutputStream(&buffer);
    const bool ok = benchmark::JSONReporter::ReportContext(context);
    SetOutputStream(&out);
    std::string text = buffer.str();
    const std::string key = "\"library_build_type\": \"";
    const size_t begin = text.find(key);
    if (begin != std::string::npos) {
      const size_t value = begin + key.size();
      const size_t end = text.find('"', value);
      if (end != std::string::npos) {
        text.replace(value, end - value, PPDB_BENCH_BUILD_TYPE);
      }
    }
    out << text;
    return ok;
  }
};

/// BENCHMARK_MAIN()'s body with the patched file reporter. Callers may
/// RegisterBenchmark / AddCustomContext before invoking.
inline int RunBenchmarks(int argc, char** argv) {
  // Honor --benchmark_format=json on stdout too (the flag value is not
  // exposed through the public API, so sniff it before Initialize eats
  // argv).
  bool json_display = false;
  bool has_out_file = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg(argv[i]);
    if (arg == "--benchmark_format=json") json_display = true;
    if (arg.rfind("--benchmark_out=", 0) == 0 &&
        arg != "--benchmark_out=") {
      has_out_file = true;
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::AddCustomContext("ppdb_build_type", PPDB_BENCH_BUILD_TYPE);
  benchmark::ConsoleReporter console;
  BuildTypeJsonReporter json;
  BuildTypeJsonReporter file_reporter;
  benchmark::BenchmarkReporter* display =
      json_display ? static_cast<benchmark::BenchmarkReporter*>(&json)
                   : &console;
  // The library aborts if a file reporter is supplied without
  // --benchmark_out, so only pass one when an output file was requested.
  benchmark::RunSpecifiedBenchmarks(display,
                                    has_out_file ? &file_reporter : nullptr);
  benchmark::Shutdown();
  return 0;
}

}  // namespace ppdb::bench

#endif  // PPDB_BENCH_BENCH_MAIN_H_

// Incremental-view delta benchmark: the ISSUE's cost-model numbers. For a
// grid of population sizes N and policy sizes |HP| it applies single-cell
// preference events two ways — through the maintained ViolationView (the
// O(Δ) serve path) and as a full from-scratch re-analysis (the pre-view
// O(N·|HP|) cost) — and reports events/s for both plus the speedup, as
// JSON. The view's bitwise contract means both paths produce identical
// state, so the ratio is a pure cost comparison, not a quality trade.
//
// EXPERIMENTS.md ("Delta path") reads the crossover out of this sweep;
// the acceptance bar is delta ≥ 10× full at |HP| ≥ 64.
//
// Usage: bench_incremental [output.json] [--smoke]
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/macros.h"
#include "privacy/config.h"
#include "violation/default_model.h"
#include "violation/detector.h"
#include "violation/incremental.h"

#ifndef PPDB_BENCH_BUILD_TYPE
#define PPDB_BENCH_BUILD_TYPE "unknown"
#endif

namespace ppdb {
namespace {

using std::chrono::steady_clock;

struct CellResult {
  int64_t providers = 0;
  int64_t policy_tuples = 0;
  int64_t delta_cells = 0;  // kernel cells one delta event recomputed
  double delta_events_per_s = 0.0;
  double full_events_per_s = 0.0;
  double speedup = 0.0;
};

/// A population of `n` providers against `hp` policy tuples (one purpose,
/// `hp` attributes). Every provider states a preference for a third of the
/// attributes; the rest fall to implicit zeros — a mix of stated and
/// implicit cells like a real house.
privacy::PrivacyConfig BuildConfig(int64_t n, int64_t hp) {
  privacy::PrivacyConfig config;
  privacy::PurposeId purpose = config.purposes.Register("pr").value();
  for (int64_t j = 0; j < hp; ++j) {
    PPDB_CHECK_OK(config.policy.Add(
        "attr_" + std::to_string(j),
        privacy::PrivacyTuple{purpose, static_cast<int>(j % 3),
                              static_cast<int>((j + 1) % 3),
                              static_cast<int>((j + 2) % 3)}));
  }
  for (int64_t i = 1; i <= n; ++i) {
    privacy::ProviderPreferences& prefs = config.preferences.ForProvider(i);
    for (int64_t j = 0; j < hp; j += 3) {
      prefs.Set("attr_" + std::to_string(j),
                privacy::PrivacyTuple{purpose, static_cast<int>((i + j) % 4),
                                      static_cast<int>(i % 4),
                                      static_cast<int>(j % 4)});
    }
    config.thresholds[i] = 2.0;
  }
  return config;
}

CellResult RunCell(int64_t n, int64_t hp, int delta_reps, int full_reps) {
  privacy::PrivacyConfig config = BuildConfig(n, hp);
  privacy::PurposeId purpose = config.purposes.Lookup("pr").value();
  auto view = violation::ViolationView::Create(&config);
  PPDB_CHECK_OK(view.status());

  // One event = move one provider's stated preference for one attribute.
  // Exactly one policy cell matches (one purpose), so this is the
  // single-cell event of the acceptance criterion.
  auto apply = [&](int rep) {
    privacy::ProviderId who = 1 + (rep % n);
    privacy::PrivacyTuple tuple{purpose, rep % 4, (rep + 1) % 4,
                                (rep + 2) % 4};
    config.preferences.ForProvider(who).Set("attr_0", tuple);
    return who;
  };

  CellResult result;
  result.providers = n;
  result.policy_tuples = hp;

  const auto delta_start = steady_clock::now();
  for (int rep = 0; rep < delta_reps; ++rep) {
    privacy::ProviderId who = apply(rep);
    PPDB_CHECK_OK(view->OnPreferenceChanged(who, "attr_0", purpose));
  }
  const double delta_s =
      std::chrono::duration<double>(steady_clock::now() - delta_start)
          .count();
  result.delta_cells = view->last_delta_cells();
  result.delta_events_per_s = static_cast<double>(delta_reps) / delta_s;

  // The pre-view cost of the same event: full re-analysis + defaults.
  double total_severity = 0.0;  // defeat dead-code elimination
  const auto full_start = steady_clock::now();
  for (int rep = 0; rep < full_reps; ++rep) {
    apply(rep);
    violation::ViolationDetector detector(&config);
    auto report = detector.Analyze();
    PPDB_CHECK_OK(report.status());
    violation::DefaultReport defaults =
        violation::ComputeDefaults(report.value(), config);
    total_severity += report->total_severity +
                      static_cast<double>(defaults.num_defaulted);
  }
  const double full_s =
      std::chrono::duration<double>(steady_clock::now() - full_start).count();
  result.full_events_per_s = static_cast<double>(full_reps) / full_s;
  result.speedup = result.delta_events_per_s / result.full_events_per_s;
  if (total_severity < 0) std::fprintf(stderr, "unreachable\n");
  return result;
}

int Run(const std::string& output_path, bool smoke) {
  const int delta_reps = smoke ? 200 : 20000;
  const int full_reps = smoke ? 3 : 30;
  const std::vector<int64_t> populations =
      smoke ? std::vector<int64_t>{64, 256}
            : std::vector<int64_t>{64, 256, 1024, 4096};
  const std::vector<int64_t> policy_sizes =
      smoke ? std::vector<int64_t>{16, 64} : std::vector<int64_t>{16, 64, 256};

  std::vector<CellResult> results;
  for (int64_t hp : policy_sizes) {
    for (int64_t n : populations) {
      results.push_back(RunCell(n, hp, delta_reps, full_reps));
      const CellResult& r = results.back();
      std::fprintf(stderr,
                   "N=%lld |HP|=%lld: delta %.0f events/s (%lld cells) vs "
                   "full %.1f events/s -> %.0fx\n",
                   static_cast<long long>(r.providers),
                   static_cast<long long>(r.policy_tuples),
                   r.delta_events_per_s,
                   static_cast<long long>(r.delta_cells),
                   r.full_events_per_s, r.speedup);
    }
  }

  std::ofstream out(output_path);
  out << "{\n  \"benchmark\": \"incremental_view_delta\",\n"
      // The build type of the code under test; tools/run_bench.sh refuses
      // to record baselines unless this is "release".
      << "  \"library_build_type\": \"" << PPDB_BENCH_BUILD_TYPE << "\",\n"
      << "  \"event\": \"single-cell preference change\",\n"
      << "  \"delta_reps\": " << delta_reps << ",\n"
      << "  \"full_reps\": " << full_reps << ",\n"
      << "  \"sweep\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const CellResult& r = results[i];
    char line[256];
    std::snprintf(
        line, sizeof(line),
        "    {\"providers\": %lld, \"policy_tuples\": %lld, "
        "\"delta_cells\": %lld, \"delta_events_per_s\": %.0f, "
        "\"full_events_per_s\": %.2f, \"speedup\": %.1f}%s\n",
        static_cast<long long>(r.providers),
        static_cast<long long>(r.policy_tuples),
        static_cast<long long>(r.delta_cells), r.delta_events_per_s,
        r.full_events_per_s, r.speedup, i + 1 < results.size() ? "," : "");
    out << line;
  }
  out << "  ]\n}\n";
  if (!out) {
    std::fprintf(stderr, "error: failed to write %s\n", output_path.c_str());
    return 1;
  }
  std::fprintf(stderr, "wrote %s\n", output_path.c_str());
  return 0;
}

}  // namespace
}  // namespace ppdb

int main(int argc, char** argv) {
  std::string output = "BENCH_incremental.json";
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") {
      smoke = true;
    } else {
      output = argv[i];
    }
  }
  return ppdb::Run(output, smoke);
}

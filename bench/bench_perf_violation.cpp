// Perf-1 — Engineering benchmark: cost of the violation model's core
// computations as the population and schema scale (google-benchmark).
//
// Covers: ViolationDetector::Analyze (Def. 1 + Eqs. 14-16 over the whole
// population), ComputeDefaults, the trial-based estimator (Def. 2), and
// HousePolicy::Widened (the inner operation of what-if sweeps).
#include <benchmark/benchmark.h>

#include "common/macros.h"
#include "common/rng.h"
#include "sim/population.h"
#include "violation/default_model.h"
#include "violation/detector.h"
#include "violation/live_monitor.h"
#include "violation/probability.h"

namespace {

using namespace ppdb;  // NOLINT(build/namespaces)

sim::Population MakePopulation(int64_t providers, int attributes) {
  sim::PopulationConfig config;
  config.num_providers = providers;
  for (int a = 0; a < attributes; ++a) {
    config.attributes.push_back(
        {"attr" + std::to_string(a), 1.0 + a, 50.0, 10.0});
  }
  config.purposes = {"service", "analytics"};
  config.seed = 1;
  auto population = sim::PopulationGenerator(config).Generate();
  PPDB_CHECK_OK(population.status());
  auto policy =
      sim::MakeUniformPolicy(config.attributes, config.purposes, 0.5, 0.5,
                             0.5, &population.value().config);
  PPDB_CHECK_OK(policy.status());
  population.value().config.policy = std::move(policy).value();
  return std::move(population).value();
}

void BM_ViolationAnalyze(benchmark::State& state) {
  sim::Population population =
      MakePopulation(state.range(0), static_cast<int>(state.range(1)));
  // Serial baseline: the historical single-thread path.
  violation::ViolationDetector::Options options;
  options.num_threads = 1;
  violation::ViolationDetector detector(&population.config, options);
  for (auto _ : state) {
    auto report = detector.Analyze();
    PPDB_CHECK_OK(report.status());
    benchmark::DoNotOptimize(report->total_severity);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ViolationAnalyze)
    ->ArgsProduct({{1000, 4000, 16000, 64000}, {2, 8}})
    ->Unit(benchmark::kMillisecond);

// Same workload as BM_ViolationAnalyze/64000/8 with a thread-count axis:
// args are (providers, attributes, num_threads), 0 = one thread per
// hardware thread. The report is bitwise-identical across the axis; only
// the wall clock should move.
void BM_ViolationAnalyzeParallel(benchmark::State& state) {
  sim::Population population =
      MakePopulation(state.range(0), static_cast<int>(state.range(1)));
  violation::ViolationDetector::Options options;
  options.num_threads = static_cast<int>(state.range(2));
  violation::ViolationDetector detector(&population.config, options);
  for (auto _ : state) {
    auto report = detector.Analyze();
    PPDB_CHECK_OK(report.status());
    benchmark::DoNotOptimize(report->total_severity);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ViolationAnalyzeParallel)
    ->ArgsProduct({{64000}, {8}, {1, 2, 4, 8, 0}})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_ComputeDefaults(benchmark::State& state) {
  sim::Population population = MakePopulation(state.range(0), 4);
  violation::ViolationDetector detector(&population.config);
  auto report = detector.Analyze();
  PPDB_CHECK_OK(report.status());
  for (auto _ : state) {
    violation::DefaultReport defaults =
        violation::ComputeDefaults(report.value(), population.config);
    benchmark::DoNotOptimize(defaults.num_defaulted);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ComputeDefaults)
    ->Arg(1000)
    ->Arg(16000)
    ->Arg(64000)
    ->Unit(benchmark::kMillisecond);

void BM_TrialEstimator(benchmark::State& state) {
  sim::Population population = MakePopulation(4000, 4);
  violation::ViolationDetector detector(&population.config);
  auto report = detector.Analyze();
  PPDB_CHECK_OK(report.status());
  Rng rng(99);
  for (auto _ : state) {
    auto estimate = violation::EstimateViolationProbability(
        report.value(), state.range(0), rng);
    PPDB_CHECK_OK(estimate.status());
    benchmark::DoNotOptimize(estimate->estimate);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TrialEstimator)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_PolicyWidened(benchmark::State& state) {
  sim::Population population = MakePopulation(100, 16);
  for (auto _ : state) {
    auto widened = population.config.policy.Widened(
        privacy::Dimension::kGranularity, 1, population.config.scales);
    PPDB_CHECK_OK(widened.status());
    benchmark::DoNotOptimize(widened.value().size());
  }
}
BENCHMARK(BM_PolicyWidened);

void BM_LiveMonitorPreferenceEvent(benchmark::State& state) {
  sim::Population population = MakePopulation(state.range(0), 4);
  auto monitor =
      violation::LivePopulationMonitor::Create(population.config);
  PPDB_CHECK_OK(monitor.status());
  privacy::PurposeId purpose =
      monitor->config().purposes.Lookup("service").value();
  privacy::ProviderId provider = state.range(0) / 2;
  int level = 0;
  for (auto _ : state) {
    level = (level + 1) % 4;
    PPDB_CHECK_OK(monitor->SetPreference(
        provider, "attr0",
        privacy::PrivacyTuple{purpose, level % 4, level % 4, level % 5}));
    benchmark::DoNotOptimize(monitor->ProbabilityOfViolation());
  }
  // Items processed = events; contrast with BM_ViolationAnalyze, which
  // pays O(N) for the same freshness.
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LiveMonitorPreferenceEvent)
    ->Arg(1000)
    ->Arg(64000)
    ->Unit(benchmark::kMillisecond);

void BM_SingleProviderAnalysis(benchmark::State& state) {
  sim::Population population = MakePopulation(1000, 8);
  violation::ViolationDetector detector(&population.config);
  privacy::ProviderId provider = 500;
  for (auto _ : state) {
    auto pv = detector.AnalyzeProvider(provider);
    PPDB_CHECK_OK(pv.status());
    benchmark::DoNotOptimize(pv->total_severity);
  }
}
BENCHMARK(BM_SingleProviderAnalysis);

}  // namespace

BENCHMARK_MAIN();

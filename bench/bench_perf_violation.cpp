// Perf-1 — Engineering benchmark: cost of the violation model's core
// computations as the population and schema scale (google-benchmark).
//
// Covers: ViolationDetector::Analyze (Def. 1 + Eqs. 14-16 over the whole
// population), ComputeDefaults, the trial-based estimator (Def. 2),
// HousePolicy::Widened (the inner operation of what-if sweeps), and the
// batched severity kernel (Eqs. 12-14) per dispatch target — the
// scalar-vs-SIMD throughput ratio EXPERIMENTS.md's roofline section is
// built from.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "bench_main.h"
#include "common/macros.h"
#include "common/rng.h"
#include "sim/population.h"
#include "violation/default_model.h"
#include "violation/detector.h"
#include "violation/kernel/severity_kernel.h"
#include "violation/live_monitor.h"
#include "violation/probability.h"

namespace {

using namespace ppdb;  // NOLINT(build/namespaces)

sim::Population MakePopulation(int64_t providers, int attributes) {
  sim::PopulationConfig config;
  config.num_providers = providers;
  for (int a = 0; a < attributes; ++a) {
    config.attributes.push_back(
        {"attr" + std::to_string(a), 1.0 + a, 50.0, 10.0});
  }
  config.purposes = {"service", "analytics"};
  config.seed = 1;
  auto population = sim::PopulationGenerator(config).Generate();
  PPDB_CHECK_OK(population.status());
  auto policy =
      sim::MakeUniformPolicy(config.attributes, config.purposes, 0.5, 0.5,
                             0.5, &population.value().config);
  PPDB_CHECK_OK(policy.status());
  population.value().config.policy = std::move(policy).value();
  return std::move(population).value();
}

void BM_ViolationAnalyze(benchmark::State& state) {
  sim::Population population =
      MakePopulation(state.range(0), static_cast<int>(state.range(1)));
  // Serial baseline: the historical single-thread path.
  violation::ViolationDetector::Options options;
  options.num_threads = 1;
  violation::ViolationDetector detector(&population.config, options);
  for (auto _ : state) {
    auto report = detector.Analyze();
    PPDB_CHECK_OK(report.status());
    benchmark::DoNotOptimize(report->total_severity);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ViolationAnalyze)
    ->ArgsProduct({{1000, 4000, 16000, 64000}, {2, 8}})
    ->Unit(benchmark::kMillisecond);

// Same workload as BM_ViolationAnalyze/64000/8 with a thread-count axis:
// args are (providers, attributes, num_threads), 0 = one thread per
// hardware thread. The report is bitwise-identical across the axis; only
// the wall clock should move.
void BM_ViolationAnalyzeParallel(benchmark::State& state) {
  sim::Population population =
      MakePopulation(state.range(0), static_cast<int>(state.range(1)));
  violation::ViolationDetector::Options options;
  options.num_threads = static_cast<int>(state.range(2));
  violation::ViolationDetector detector(&population.config, options);
  for (auto _ : state) {
    auto report = detector.Analyze();
    PPDB_CHECK_OK(report.status());
    benchmark::DoNotOptimize(report->total_severity);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ViolationAnalyzeParallel)
    ->ArgsProduct({{64000}, {8}, {1, 2, 4, 8, 0}})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_ComputeDefaults(benchmark::State& state) {
  sim::Population population = MakePopulation(state.range(0), 4);
  violation::ViolationDetector detector(&population.config);
  auto report = detector.Analyze();
  PPDB_CHECK_OK(report.status());
  for (auto _ : state) {
    violation::DefaultReport defaults =
        violation::ComputeDefaults(report.value(), population.config);
    benchmark::DoNotOptimize(defaults.num_defaulted);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ComputeDefaults)
    ->Arg(1000)
    ->Arg(16000)
    ->Arg(64000)
    ->Unit(benchmark::kMillisecond);

void BM_TrialEstimator(benchmark::State& state) {
  sim::Population population = MakePopulation(4000, 4);
  violation::ViolationDetector detector(&population.config);
  auto report = detector.Analyze();
  PPDB_CHECK_OK(report.status());
  Rng rng(99);
  for (auto _ : state) {
    auto estimate = violation::EstimateViolationProbability(
        report.value(), state.range(0), rng);
    PPDB_CHECK_OK(estimate.status());
    benchmark::DoNotOptimize(estimate->estimate);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TrialEstimator)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_PolicyWidened(benchmark::State& state) {
  sim::Population population = MakePopulation(100, 16);
  for (auto _ : state) {
    auto widened = population.config.policy.Widened(
        privacy::Dimension::kGranularity, 1, population.config.scales);
    PPDB_CHECK_OK(widened.status());
    benchmark::DoNotOptimize(widened.value().size());
  }
}
BENCHMARK(BM_PolicyWidened);

void BM_LiveMonitorPreferenceEvent(benchmark::State& state) {
  sim::Population population = MakePopulation(state.range(0), 4);
  auto monitor =
      violation::LivePopulationMonitor::Create(population.config);
  PPDB_CHECK_OK(monitor.status());
  privacy::PurposeId purpose =
      monitor->config().purposes.Lookup("service").value();
  privacy::ProviderId provider = state.range(0) / 2;
  int level = 0;
  for (auto _ : state) {
    level = (level + 1) % 4;
    PPDB_CHECK_OK(monitor->SetPreference(
        provider, "attr0",
        privacy::PrivacyTuple{purpose, level % 4, level % 4, level % 5}));
    benchmark::DoNotOptimize(monitor->ProbabilityOfViolation());
  }
  // Items processed = events; contrast with BM_ViolationAnalyze, which
  // pays O(N) for the same freshness.
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LiveMonitorPreferenceEvent)
    ->Arg(1000)
    ->Arg(64000)
    ->Unit(benchmark::kMillisecond);

void BM_SingleProviderAnalysis(benchmark::State& state) {
  sim::Population population = MakePopulation(1000, 8);
  violation::ViolationDetector detector(&population.config);
  privacy::ProviderId provider = 500;
  for (auto _ : state) {
    auto pv = detector.AnalyzeProvider(provider);
    PPDB_CHECK_OK(pv.status());
    benchmark::DoNotOptimize(pv->total_severity);
  }
}
BENCHMARK(BM_SingleProviderAnalysis);

// ---- Severity-kernel microbenchmarks (Eqs. 12-14 over SoA columns) ----
//
// One batch of kRows (preference, policy) pairs, the per-provider row
// shape of the detector's hot loop at policy scale. Registered once per
// compiled-and-supported dispatch target via the direct entry points, so
// the scalar/SIMD ratio comes from one binary and run.

constexpr size_t kRows = 4096;
// Streamed bytes per pair: 6 × int32 levels + 5 × double sensitivities +
// int32 active in; 3 × int32 diff + double conf out.
constexpr size_t kBytesPerRow = 6 * 4 + 5 * 8 + 4 + 3 * 4 + 8;

struct KernelBatch {
  std::vector<int32_t> pref_v, pref_g, pref_r, pol_v, pol_g, pol_r, active;
  std::vector<double> attr_sens, sens_val, sens_v, sens_g, sens_r;
  violation::kernel::RowScratch out;

  explicit KernelBatch(size_t n) {
    Rng rng(17);
    const auto level = [&] { return static_cast<int32_t>(rng.NextInt(0, 5)); };
    for (size_t j = 0; j < n; ++j) {
      pref_v.push_back(level());
      pref_g.push_back(level());
      pref_r.push_back(level());
      pol_v.push_back(level());
      pol_g.push_back(level());
      pol_r.push_back(level());
      attr_sens.push_back(1.0 + rng.NextDouble());
      sens_val.push_back(1.0 + rng.NextDouble());
      sens_v.push_back(rng.NextDouble());
      sens_g.push_back(rng.NextDouble());
      sens_r.push_back(rng.NextDouble());
      active.push_back(rng.NextBool(0.1) ? 0 : -1);
    }
    out.Resize(n);
  }

  violation::kernel::ConfInput In() const {
    violation::kernel::ConfInput in;
    in.pref_v = pref_v.data();
    in.pref_g = pref_g.data();
    in.pref_r = pref_r.data();
    in.pol_v = pol_v.data();
    in.pol_g = pol_g.data();
    in.pol_r = pol_r.data();
    in.attr_sens = attr_sens.data();
    in.sens_val = sens_val.data();
    in.sens_v = sens_v.data();
    in.sens_g = sens_g.data();
    in.sens_r = sens_r.data();
    in.active = active.data();
    return in;
  }
};

using ConfFn = bool (*)(const violation::kernel::ConfInput&,
                        const violation::kernel::ConfOutput&, size_t);
using DiffFn = void (*)(const int32_t*, const int32_t*, int32_t*, size_t);

void BM_KernelConf(benchmark::State& state, ConfFn fn) {
  KernelBatch batch(kRows);
  const violation::kernel::ConfInput in = batch.In();
  const violation::kernel::ConfOutput out = batch.out.Output();
  for (auto _ : state) {
    benchmark::DoNotOptimize(fn(in, out, kRows));
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(kRows));
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(kRows * kBytesPerRow));
}

void BM_KernelDiff(benchmark::State& state, DiffFn fn) {
  KernelBatch batch(kRows);
  for (auto _ : state) {
    fn(batch.pref_v.data(), batch.pol_v.data(), batch.out.diff_v.data(),
       kRows);
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(kRows));
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(kRows * 3 * 4));
}

/// Registers the per-target kernel benchmarks for every compiled target
/// the host can execute (runtime registration: the target list is not a
/// compile-time constant).
void RegisterKernelBenchmarks() {
  using violation::kernel::Target;
  for (Target target : violation::kernel::CompiledTargets()) {
    if (!violation::kernel::TargetSupported(target)) continue;
    ConfFn conf = nullptr;
    DiffFn diff = nullptr;
    switch (target) {
      case Target::kScalar:
        conf = violation::kernel::ConfKernelScalar;
        diff = violation::kernel::DiffKernelScalar;
        break;
#if PPDB_KERNEL_HAVE_AVX2
      case Target::kAvx2:
        conf = violation::kernel::ConfKernelAvx2;
        diff = violation::kernel::DiffKernelAvx2;
        break;
#endif
#if PPDB_KERNEL_HAVE_NEON
      case Target::kNeon:
        conf = violation::kernel::ConfKernelNeon;
        diff = violation::kernel::DiffKernelNeon;
        break;
#endif
      default:
        continue;
    }
    const std::string name(violation::kernel::TargetName(target));
    benchmark::RegisterBenchmark(
        ("BM_KernelConf/" + name).c_str(),
        [conf](benchmark::State& state) { BM_KernelConf(state, conf); });
    benchmark::RegisterBenchmark(
        ("BM_KernelDiff/" + name).c_str(),
        [diff](benchmark::State& state) { BM_KernelDiff(state, diff); });
  }
}

}  // namespace

int main(int argc, char** argv) {
  RegisterKernelBenchmarks();
  benchmark::AddCustomContext(
      "ppdb_kernel_dispatch",
      std::string(ppdb::violation::kernel::TargetName(
          ppdb::violation::kernel::SelectedTarget())));
  return ppdb::bench::RunBenchmarks(argc, argv);
}

// E2 — Figure 1: the geometric reading of a privacy violation. A privacy
// preference tuple spans a box over two dimensions (S_i, S_j); a policy
// tuple violates iff it is not contained in that box, and the violated
// dimensions are exactly those on which it sticks out.
//
// The bench sweeps every policy position on an 8x8 grid against the
// preference box (5, 3), renders the violation map, and cross-checks the
// region counts against the closed-form expectations.
#include <cstdio>
#include <iostream>

#include "common/macros.h"
#include "privacy/config.h"
#include "stats/table_printer.h"
#include "violation/detector.h"

namespace {

using namespace ppdb;  // NOLINT(build/namespaces)
using privacy::PrivacyTuple;

constexpr int kGridSize = 8;   // Levels 0..7 on both swept dimensions.
constexpr int kPrefVis = 5;    // Preference box corner on S_i (visibility).
constexpr int kPrefGran = 3;   // Preference box corner on S_j (granularity).

}  // namespace

int main() {
  std::printf(
      "=== E2: Figure 1 — violations as points outside the preference box "
      "===\n\n");
  std::printf(
      "Preference tuple at (S_i=visibility=%d, S_j=granularity=%d) on an "
      "%dx%d grid.\n\n",
      kPrefVis, kPrefGran, kGridSize, kGridSize);

  privacy::PrivacyConfig config;
  std::vector<std::string> levels;
  for (int i = 0; i < kGridSize; ++i) {
    levels.push_back("l" + std::to_string(i));
  }
  for (privacy::Dimension dim : privacy::kOrderedDimensions) {
    *config.scales.MutableForDimension(dim).value() =
        privacy::OrderedScale::Create(dim, levels).value();
  }
  privacy::PurposeId purpose = config.purposes.Register("pr").value();
  config.preferences.ForProvider(1).Set(
      "datum", PrivacyTuple{purpose, kPrefVis, kPrefGran, 0});

  // Sweep every policy position; classify by number of exceeded dims.
  int count_by_dims[3] = {0, 0, 0};
  char map[kGridSize][kGridSize];
  for (int v = 0; v < kGridSize; ++v) {
    for (int g = 0; g < kGridSize; ++g) {
      privacy::PrivacyConfig scenario = config;
      PPDB_CHECK_OK(scenario.policy.Add(
          "datum", PrivacyTuple{purpose, v, g, 0}));
      violation::ViolationDetector detector(&scenario);
      auto pv = detector.AnalyzeProvider(1);
      PPDB_CHECK_OK(pv.status());
      int dims = static_cast<int>(pv->incidents.size());
      PPDB_CHECK(dims >= 0 && dims <= 2);
      ++count_by_dims[dims];
      map[v][g] = dims == 0 ? '.' : static_cast<char>('0' + dims);
      // Cross-check the detector against the pure geometry.
      PrivacyTuple policy{purpose, v, g, 0};
      PrivacyTuple pref{purpose, kPrefVis, kPrefGran, 0};
      PPDB_CHECK(policy.BoundedBy(pref) == (dims == 0));
      PPDB_CHECK(static_cast<int>(policy.DimensionsExceeding(pref).size()) ==
                 dims);
    }
  }

  std::printf("Violation map (rows: S_i level 7..0, cols: S_j level 0..7;\n"
              "'.' = Fig. 1(a) no violation, '1' = Fig. 1(b) one-dimension "
              "violation, '2' = Fig. 1(c) two-dimension violation):\n\n");
  for (int v = kGridSize - 1; v >= 0; --v) {
    std::printf("  S_i=%d  ", v);
    for (int g = 0; g < kGridSize; ++g) std::printf("%c ", map[v][g]);
    std::printf("\n");
  }

  // Closed-form expectations: inside box (kPrefVis+1)*(kPrefGran+1); both
  // exceed (7-kPrefVis)*(7-kPrefGran); one dim = rest.
  int expected_inside = (kPrefVis + 1) * (kPrefGran + 1);
  int expected_two = (kGridSize - 1 - kPrefVis) * (kGridSize - 1 - kPrefGran);
  int expected_one = kGridSize * kGridSize - expected_inside - expected_two;

  std::printf("\nRegion counts (paper-vs-measured):\n");
  stats::TablePrinter table({"region", "analytic", "measured", "status"});
  auto row = [&](const char* name, int expected, int actual) {
    table.AddRow({name, stats::TablePrinter::FormatInt(expected),
                  stats::TablePrinter::FormatInt(actual),
                  expected == actual ? "MATCH" : "MISMATCH"});
    return expected == actual;
  };
  bool ok = true;
  ok &= row("no violation (Fig. 1a)", expected_inside, count_by_dims[0]);
  ok &= row("1-dim violation (Fig. 1b)", expected_one, count_by_dims[1]);
  ok &= row("2-dim violation (Fig. 1c)", expected_two, count_by_dims[2]);
  table.Print(std::cout);

  std::printf("\n%s\n", ok ? "E2 REPRODUCED: detector agrees with the "
                             "geometric semantics of Fig. 1 on all 64 "
                             "positions."
                           : "E2 FAILED.");
  return ok ? 0 : 1;
}

// Ablation — quantifies the model's design choices on one fixed
// population:
//
//   A1  Def. 1's implicit-zero rule for unstated purposes (strict paper
//       semantics) vs leniently skipping them.
//   A2  Sensitivity weighting in Eq. 14 vs unweighted raw level diffs —
//       does weighting actually change *who* defaults, as the paper's
//       Ted/Bob example argues it must?
//   A3  The purpose-hierarchy extension ([5]): how much "violation" is
//       really inherited consent to a broader purpose.
#include <cstdio>
#include <iostream>

#include "common/macros.h"
#include "sim/population.h"
#include "stats/rank_correlation.h"
#include "stats/table_printer.h"
#include "violation/default_model.h"
#include "violation/detector.h"

namespace {

using namespace ppdb;  // NOLINT(build/namespaces)

struct Outcome {
  double p_violation = 0.0;
  double violations = 0.0;
  double p_default = 0.0;
  int64_t defaulted = 0;
};

Outcome Measure(const privacy::PrivacyConfig& config,
                violation::ViolationDetector::Options options = {}) {
  violation::ViolationDetector detector(&config, options);
  auto report = detector.Analyze();
  PPDB_CHECK_OK(report.status());
  violation::DefaultReport defaults =
      violation::ComputeDefaults(report.value(), config);
  return Outcome{report->ProbabilityOfViolation(), report->total_severity,
                 defaults.ProbabilityOfDefault(), defaults.num_defaulted};
}

void AddRow(stats::TablePrinter& table, const char* name,
            const Outcome& outcome) {
  table.AddRow({name, stats::TablePrinter::FormatDouble(outcome.p_violation, 4),
                stats::TablePrinter::FormatDouble(outcome.violations, 0),
                stats::TablePrinter::FormatDouble(outcome.p_default, 4),
                stats::TablePrinter::FormatInt(outcome.defaulted)});
}

}  // namespace

int main() {
  std::printf("=== Ablation: what each modelling choice contributes ===\n\n");

  sim::PopulationConfig population_config;
  population_config.num_providers = 5000;
  population_config.attributes = {{"income", 5.0, 65000, 20000},
                                  {"health", 4.0, 70, 15}};
  population_config.purposes = {"service", "analytics"};
  population_config.seed = 2718;
  // Deliberately partial survey: the statement probability stays at the
  // segment defaults (0.5-0.95), so the implicit-zero rule has teeth.
  auto population_result =
      sim::PopulationGenerator(population_config).Generate();
  PPDB_CHECK_OK(population_result.status());
  sim::Population population = std::move(population_result).value();
  auto policy = sim::MakeUniformPolicy(population_config.attributes,
                                       population_config.purposes, 0.33, 0.4,
                                       0.4, &population.config);
  PPDB_CHECK_OK(policy.status());
  population.config.policy = std::move(policy).value();

  // --- A1: implicit-zero rule. -----------------------------------------
  std::printf("A1. Def. 1 implicit-zero preferences for unstated purposes\n");
  stats::TablePrinter a1({"variant", "P(W)", "Violations", "P(Default)",
                          "defaulted"});
  AddRow(a1, "strict (paper, default)", Measure(population.config));
  violation::ViolationDetector::Options lenient;
  lenient.implicit_zero_preferences = false;
  AddRow(a1, "lenient (skip unstated)", Measure(population.config, lenient));
  a1.Print(std::cout);
  std::printf("The gap is the share of 'violation' that comes purely from "
              "providers who never answered the preference survey.\n\n");

  // --- A2: sensitivity weighting. ---------------------------------------
  std::printf("A2. Eq. 14 sensitivity weighting vs raw level diffs\n");
  // Unweighted variant: same policy/preferences, fresh sensitivities (all
  // lookups then default to 1) and thresholds rescaled to keep the same
  // overall default pressure (median threshold maps to median severity).
  privacy::PrivacyConfig unweighted = population.config;
  unweighted.sensitivities = privacy::SensitivityModel();

  violation::ViolationDetector weighted_detector(&population.config);
  auto weighted_report = weighted_detector.Analyze();
  PPDB_CHECK_OK(weighted_report.status());
  violation::ViolationDetector unweighted_detector(&unweighted);
  auto unweighted_report = unweighted_detector.Analyze();
  PPDB_CHECK_OK(unweighted_report.status());

  // Identical w_i by construction (weights cannot create or erase an
  // exceedance)...
  int64_t same_flags = 0;
  for (size_t i = 0; i < weighted_report->providers.size(); ++i) {
    if (weighted_report->providers[i].violated ==
        unweighted_report->providers[i].violated) {
      ++same_flags;
    }
  }
  // ...but different severity *rankings*: count inverted provider pairs on
  // a sample (the Ted/Bob effect — who suffers more swaps with weighting).
  int64_t inversions = 0, comparable_pairs = 0;
  const auto& wp = weighted_report->providers;
  const auto& up = unweighted_report->providers;
  for (size_t i = 0; i < wp.size(); i += 7) {
    for (size_t j = i + 1; j < wp.size(); j += 13) {
      double dw = wp[i].total_severity - wp[j].total_severity;
      double du = up[i].total_severity - up[j].total_severity;
      if (dw == 0.0 || du == 0.0) continue;
      ++comparable_pairs;
      if ((dw > 0) != (du > 0)) ++inversions;
    }
  }
  std::printf(
      "  w_i flags identical under both variants: %lld / %lld providers\n",
      static_cast<long long>(same_flags),
      static_cast<long long>(wp.size()));
  std::printf(
      "  severity-order inversions caused by weighting: %lld of %lld "
      "sampled pairs (%.1f%%)\n",
      static_cast<long long>(inversions),
      static_cast<long long>(comparable_pairs),
      100.0 * static_cast<double>(inversions) /
          static_cast<double>(comparable_pairs == 0 ? 1 : comparable_pairs));
  std::vector<double> weighted_severities, unweighted_severities;
  for (size_t i = 0; i < wp.size(); ++i) {
    weighted_severities.push_back(wp[i].total_severity);
    unweighted_severities.push_back(up[i].total_severity);
  }
  auto rho = stats::SpearmanCorrelation(weighted_severities,
                                        unweighted_severities);
  PPDB_CHECK_OK(rho.status());
  std::printf("  Spearman rank correlation weighted vs raw: %.3f\n",
              rho.value());
  std::printf("  (the paper's Table 1 point: Bob out-violates Ted only "
              "because of weights)\n\n");

  // --- A3: purpose hierarchy. -------------------------------------------
  std::printf("A3. Purpose-hierarchy extension (consent inheritance)\n");
  privacy::PrivacyConfig hierarchical = population.config;
  // analytics ⊑ service: a specialized analytics purpose whose consent can
  // be inherited from service.
  privacy::PurposeId service =
      hierarchical.purposes.Lookup("service").value();
  privacy::PurposeId analytics =
      hierarchical.purposes.Lookup("analytics").value();
  PPDB_CHECK_OK(hierarchical.purpose_hierarchy.AddEdge(
      analytics, service, hierarchical.purposes));

  stats::TablePrinter a3({"variant", "P(W)", "Violations", "P(Default)",
                          "defaulted"});
  AddRow(a3, "flat purposes (paper)", Measure(hierarchical));
  violation::ViolationDetector::Options with_hierarchy;
  with_hierarchy.purpose_hierarchy = &hierarchical.purpose_hierarchy;
  AddRow(a3, "analytics inherits service consent",
         Measure(hierarchical, with_hierarchy));
  a3.Print(std::cout);
  std::printf("Inherited consent absorbs the violations of providers who "
              "stated a service preference but not an analytics one.\n");
  return 0;
}

// E4 — Definitions 2 & 3: the relative-frequency estimator of P(W) and
// alpha-PPDB certification.
//
// Def. 2 defines P(W) as the limit of tau(W)/tau over random provider
// trials; this bench measures how fast the estimate converges to the
// census value as tau grows, and then sweeps the certification threshold
// alpha (Def. 3) over policies of increasing width to trace the
// compliance frontier.
#include <cstdio>
#include <iostream>

#include "common/macros.h"
#include "common/rng.h"
#include "sim/population.h"
#include "stats/running_stats.h"
#include "stats/table_printer.h"
#include "violation/detector.h"
#include "violation/probability.h"

namespace {

using namespace ppdb;  // NOLINT(build/namespaces)

sim::Population MakePopulation() {
  sim::PopulationConfig config;
  config.num_providers = 20000;
  config.attributes = {{"income", 5.0, 65000, 20000},
                       {"health", 4.0, 70, 15}};
  config.purposes = {"service", "analytics"};
  config.seed = 777;
  for (sim::SegmentProfile& profile : config.profiles) {
    profile.statement_probability = 1.0;
  }
  auto population = sim::PopulationGenerator(config).Generate();
  PPDB_CHECK_OK(population.status());
  return std::move(population).value();
}

}  // namespace

int main() {
  std::printf("=== E4: Def. 2 estimator convergence and Def. 3 alpha-PPDB "
              "certification ===\n\n");
  sim::Population population = MakePopulation();
  auto policy = sim::MakeUniformPolicy(
      {{"income", 5.0, 0, 1}, {"health", 4.0, 0, 1}},
      {"service", "analytics"}, 0.33, 0.4, 0.4, &population.config);
  PPDB_CHECK_OK(policy.status());
  population.config.policy = std::move(policy).value();

  violation::ViolationDetector detector(&population.config);
  auto report = detector.Analyze();
  PPDB_CHECK_OK(report.status());
  double census = report->ProbabilityOfViolation();
  std::printf("Census P(W) over %lld providers: %.4f\n\n",
              static_cast<long long>(report->num_providers()), census);

  // --- Convergence of tau(W)/tau -> P(W). ------------------------------
  std::printf("Relative-frequency estimation (mean over 20 seeds):\n");
  stats::TablePrinter conv({"tau (trials)", "mean |estimate - P(W)|",
                            "mean Wilson 95% width", "CI coverage"});
  for (int64_t tau : {10, 100, 1000, 10000, 100000}) {
    stats::RunningStats error, width;
    int covered = 0;
    const int kSeeds = 20;
    for (uint64_t seed = 0; seed < kSeeds; ++seed) {
      Rng rng(seed * 7919 + 13);
      auto estimate =
          violation::EstimateViolationProbability(report.value(), tau, rng);
      PPDB_CHECK_OK(estimate.status());
      error.Add(estimate->AbsoluteError());
      width.Add(estimate->ci95.Width());
      if (estimate->ci95.Contains(census)) ++covered;
    }
    conv.AddRow({stats::TablePrinter::FormatInt(tau),
                 stats::TablePrinter::FormatDouble(error.mean(), 5),
                 stats::TablePrinter::FormatDouble(width.mean(), 5),
                 stats::TablePrinter::FormatInt(covered) + "/20"});
  }
  conv.Print(std::cout);
  std::printf("(Expected shape: error and width shrink ~1/sqrt(tau); "
              "coverage stays near 95%%.)\n\n");

  // --- Alpha frontier across policy widths. ----------------------------
  std::printf("alpha-PPDB frontier (Def. 3) as the policy widens:\n");
  stats::TablePrinter frontier({"granularity widening", "P(W)",
                                "alpha=0.10", "alpha=0.25", "alpha=0.50",
                                "alpha=0.75"});
  for (int widen = 0; widen <= 3; ++widen) {
    privacy::PrivacyConfig scenario = population.config;
    auto widened_policy = population.config.policy.Widened(
        privacy::Dimension::kGranularity, widen, scenario.scales);
    PPDB_CHECK_OK(widened_policy.status());
    scenario.policy = std::move(widened_policy).value();
    violation::ViolationDetector widened(&scenario);
    auto widened_report = widened.Analyze();
    PPDB_CHECK_OK(widened_report.status());
    std::vector<std::string> row = {
        "+" + std::to_string(widen),
        stats::TablePrinter::FormatDouble(
            widened_report->ProbabilityOfViolation(), 4)};
    for (double alpha : {0.10, 0.25, 0.50, 0.75}) {
      auto cert = violation::CertifyAlphaPpdb(widened_report.value(), alpha);
      PPDB_CHECK_OK(cert.status());
      row.push_back(cert->certified_with_margin ? "certified"
                    : cert->certified           ? "certified*"
                                                : "no");
    }
    frontier.AddRow(std::move(row));
  }
  frontier.Print(std::cout);
  std::printf("(* = point estimate within alpha but Wilson margin crosses "
              "it.)\nE4 complete: widening monotonically erodes "
              "certifiability.\n");
  return 0;
}

// E1 — Reproduces Table 1 and Eqs. 19-24 (§8) and checks every number
// against the paper: conf = {0, 60, 80}, w = {0, 1, 1}, defaults =
// {0, 1, 0}, P(Default) = 1/3.
#include <cmath>
#include <cstdio>
#include <iostream>

#include "common/macros.h"
#include "privacy/config.h"
#include "stats/table_printer.h"
#include "violation/default_model.h"
#include "violation/detector.h"

namespace {

using namespace ppdb;  // NOLINT(build/namespaces)
using privacy::DimensionSensitivity;
using privacy::PrivacyTuple;

constexpr int kV = 1, kG = 2, kR = 2;  // The paper's symbolic (v, g, r).

int failures = 0;

void Check(const char* what, double expected, double actual) {
  bool ok = std::fabs(expected - actual) < 1e-9;
  if (!ok) ++failures;
  std::printf("  %-34s paper=%-8g measured=%-8g %s\n", what, expected,
              actual, ok ? "MATCH" : "MISMATCH");
}

privacy::PrivacyConfig BuildSection8Config() {
  privacy::PrivacyConfig config;
  std::vector<std::string> levels;
  for (int i = 0; i < 8; ++i) levels.push_back("l" + std::to_string(i));
  for (privacy::Dimension dim : privacy::kOrderedDimensions) {
    *config.scales.MutableForDimension(dim).value() =
        privacy::OrderedScale::Create(dim, levels).value();
  }
  privacy::PurposeId pr = config.purposes.Register("pr").value();
  PPDB_CHECK_OK(config.policy.Add("Age", PrivacyTuple::ZeroFor(pr)));
  PPDB_CHECK_OK(config.policy.Add("Weight", PrivacyTuple{pr, kV, kG, kR}));
  PPDB_CHECK_OK(config.sensitivities.SetAttributeSensitivity("Weight", 4.0));

  struct Row {
    privacy::ProviderId id;
    PrivacyTuple pref;
    DimensionSensitivity sens;
    double threshold;
  };
  const Row rows[] = {
      {1, PrivacyTuple{pr, kV + 2, kG + 1, kR + 3}, {1, 1, 2, 1}, 10},
      {2, PrivacyTuple{pr, kV + 2, kG - 1, kR + 2}, {3, 1, 5, 2}, 50},
      {3, PrivacyTuple{pr, kV, kG - 1, kR - 1}, {4, 1, 3, 2}, 100},
  };
  for (const Row& row : rows) {
    PPDB_CHECK_OK(config.preferences.ForProvider(row.id).Add("Weight",
                                                             row.pref));
    PPDB_CHECK_OK(config.sensitivities.SetProviderSensitivity(
        row.id, "Weight", row.sens));
    config.thresholds[row.id] = row.threshold;
  }
  return config;
}

}  // namespace

int main() {
  std::printf("=== E1: Table 1 / Eqs. 19-24 (Quantifying Privacy "
              "Violations, SDM'11 Section 8) ===\n\n");
  privacy::PrivacyConfig config = BuildSection8Config();
  violation::ViolationDetector detector(&config);
  auto report = detector.Analyze();
  PPDB_CHECK_OK(report.status());
  violation::DefaultReport defaults =
      violation::ComputeDefaults(report.value(), config);

  stats::TablePrinter table({"data provider", "ProviderPref (v,g,r)",
                             "sigma (s, sV, sG, sR)", "v_i", "w_i",
                             "Violation_i", "default_i"});
  const char* names[] = {"Alice", "Ted", "Bob"};
  const char* prefs[] = {"(v+2, g+1, r+3)", "(v+2, g-1, r+2)",
                         "(v, g-1, r-1)"};
  const char* sens[] = {"<1,1,2,1>", "<3,1,5,2>", "<4,1,3,2>"};
  for (int i = 0; i < 3; ++i) {
    const auto& pv = report->providers[static_cast<size_t>(i)];
    const auto& pd = defaults.providers[static_cast<size_t>(i)];
    table.AddRow({names[i], prefs[i], sens[i],
                  stats::TablePrinter::FormatDouble(pd.threshold, 0),
                  pv.violated ? "1" : "0",
                  stats::TablePrinter::FormatDouble(pv.total_severity, 0),
                  pd.defaulted ? "1" : "0"});
  }
  table.Print(std::cout);

  std::printf("\nPaper-vs-measured:\n");
  Check("conf(Alice) [Eq. 20]", 0.0, report->Find(1)->total_severity);
  Check("conf(Ted)   [Eq. 20]", 60.0, report->Find(2)->total_severity);
  Check("conf(Bob)   [Eq. 20]", 80.0, report->Find(3)->total_severity);
  Check("w_Alice [Table 1]", 0, report->Find(1)->violated ? 1 : 0);
  Check("w_Ted   [Table 1]", 1, report->Find(2)->violated ? 1 : 0);
  Check("w_Bob   [Table 1]", 1, report->Find(3)->violated ? 1 : 0);
  Check("default_Alice [Eq. 21]", 0, defaults.providers[0].defaulted);
  Check("default_Ted   [Eq. 22]", 1, defaults.providers[1].defaulted);
  Check("default_Bob   [Eq. 23]", 0, defaults.providers[2].defaulted);
  Check("P(Default) [Eq. 24]", 1.0 / 3.0, defaults.ProbabilityOfDefault());

  std::printf("\n%s\n", failures == 0
                            ? "E1 REPRODUCED: all 10 quantities match the "
                              "paper exactly."
                            : "E1 FAILED: mismatches above.");
  return failures == 0 ? 0 : 1;
}

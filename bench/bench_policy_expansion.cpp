// E3 — Section 9: the economics of widening a privacy policy. Starting
// from a population in which nobody has defaulted (the section's explicit
// assumption), the house widens its policy step by step; each step earns
// extra per-provider utility but pushes more providers past their
// thresholds. The bench reports the Eq. 25-31 quantities at every step and
// locates the utility peak — the paper's claim that "the house is strictly
// limited in how much it can expand its privacy policies and economically
// benefit".
//
// The paper leaves the extra-utility schedule T abstract; we model the
// market value of widened data with diminishing returns,
// T_k = T_inf * (1 - exp(-k / 2)), and also report the Eq. 31 break-even
// frontier, which is model-free.
#include <cmath>
#include <cstdio>
#include <iostream>

#include "common/macros.h"
#include "sim/population.h"
#include "sim/scenario.h"
#include "stats/table_printer.h"
#include "violation/what_if.h"

namespace {

using namespace ppdb;  // NOLINT(build/namespaces)

constexpr int64_t kProviders = 10000;
constexpr double kBaseUtility = 1.0;  // U, $ per provider.
constexpr double kTInf = 1.5;         // Saturating extra utility.

double ExtraUtilityAt(int step) {
  return kTInf * (1.0 - std::exp(-static_cast<double>(step) / 2.0));
}

}  // namespace

int main() {
  std::printf("=== E3: Section 9 — policy expansion vs provider default "
              "===\n\n");

  sim::PopulationConfig config;
  config.num_providers = kProviders;
  config.attributes = {{"income", 5.0, 65000, 20000},
                       {"health", 4.0, 70, 15},
                       {"location", 3.0, 0, 1}};
  config.purposes = {"service", "analytics"};
  config.seed = 424242;
  for (sim::SegmentProfile& profile : config.profiles) {
    profile.statement_probability = 1.0;  // Complete preference survey.
  }
  auto population_result = sim::PopulationGenerator(config).Generate();
  PPDB_CHECK_OK(population_result.status());
  sim::Population population = std::move(population_result).value();

  auto policy = sim::MakeUniformPolicy(config.attributes, config.purposes,
                                       0.33, 0.33, 0.4, &population.config);
  PPDB_CHECK_OK(policy.status());
  population.config.policy = std::move(policy).value();

  // §9: "currently, no data providers have defaulted" — thresholds are
  // baseline violation + lognormal headroom.
  PPDB_CHECK_OK(sim::CalibrateThresholdsToPolicy(&population,
                                                 /*headroom_mu=*/4.2,
                                                 /*headroom_sigma=*/1.3,
                                                 /*seed=*/99));

  // Widen granularity, retention, visibility round-robin.
  std::vector<violation::ExpansionStep> schedule;
  for (int round = 0; round < 3; ++round) {
    for (privacy::Dimension dim : privacy::kOrderedDimensions) {
      schedule.push_back(violation::ExpansionStep{dim, 1, {}});
    }
  }

  sim::ScenarioRunner runner(&population);
  auto points = runner.RunExpansion(schedule, kBaseUtility,
                                    /*extra_utility_per_step=*/0.0);
  PPDB_CHECK_OK(points.status());

  stats::TablePrinter table({"step", "P(W)", "P(Default)", "N_future",
                             "break-even T (Eq.31)", "T_k (model)",
                             "Utility_future", "justified (Eq.28)"});
  int peak_step = 0;
  double peak_utility = -1.0;
  double baseline_utility = 0.0;
  std::vector<double> utilities;
  for (const violation::ExpansionPoint& p : points.value()) {
    double t_k = ExtraUtilityAt(p.step_index);
    double utility_future =
        static_cast<double>(p.n_remaining) * (kBaseUtility + t_k);
    if (p.step_index == 0) baseline_utility = p.utility_current;
    utilities.push_back(utility_future);
    if (utility_future > peak_utility) {
      peak_utility = utility_future;
      peak_step = p.step_index;
    }
    table.AddRow(
        {stats::TablePrinter::FormatInt(p.step_index),
         stats::TablePrinter::FormatDouble(p.p_violation, 3),
         stats::TablePrinter::FormatDouble(p.p_default, 3),
         stats::TablePrinter::FormatInt(p.n_remaining),
         stats::TablePrinter::FormatDouble(p.break_even_extra_utility, 3),
         stats::TablePrinter::FormatDouble(t_k, 3),
         stats::TablePrinter::FormatDouble(utility_future, 0),
         utility_future > p.utility_current ? "yes" : "no"});
  }
  table.Print(std::cout);

  bool rises = peak_utility > baseline_utility;
  bool falls = utilities.back() < peak_utility;
  std::printf(
      "\nUtility peaks at step %d (%.0f vs baseline %.0f), then declines "
      "to %.0f at step %zu.\n",
      peak_step, peak_utility, baseline_utility, utilities.back(),
      utilities.size() - 1);
  std::printf(
      "Paper-vs-measured (qualitative): expansion first pays (utility "
      "rises above baseline: %s), accumulated defaults then erase the "
      "gain (utility falls from its peak: %s).\n",
      rises ? "yes" : "NO", falls ? "yes" : "NO");
  std::printf("%s\n", rises && falls
                          ? "E3 REPRODUCED: the Section 9 rise-then-fall "
                            "trade-off holds."
                          : "E3 SHAPE MISMATCH: tune the T model or "
                            "headroom.");
  return rises && falls ? 0 : 1;
}

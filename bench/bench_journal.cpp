// Journal group-commit benchmark: sweeps concurrent writer counts against
// batch windows and reports acked-events/s, per-append ack latency
// percentiles, and the realized batching factor (appends per fsync), as
// JSON. This is the durability cost story in numbers: every acked event
// paid an fsync before the ack, and the batching factor shows how many of
// those acks shared one.
//
// The sweep drives storage::Journal directly — the group-commit mechanism
// lives there; the service above it serializes events under a writer lock,
// so journal-level concurrency is where sharing happens.
//
// Usage: bench_journal [output.json] [--smoke]
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common/macros.h"
#include "obs/metrics.h"
#include "storage/fs.h"
#include "storage/journal.h"

#ifndef PPDB_BENCH_BUILD_TYPE
#define PPDB_BENCH_BUILD_TYPE "unknown"
#endif

namespace ppdb {
namespace {

namespace fs = std::filesystem;
using std::chrono::duration_cast;
using std::chrono::microseconds;
using std::chrono::steady_clock;

struct CellResult {
  int writers = 0;
  int window_us = 0;
  int events = 0;
  double events_per_s = 0.0;
  double batch_factor = 0.0;  // appends per fsync within the cell
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
};

double PercentileUs(std::vector<microseconds>& latencies, double q) {
  if (latencies.empty()) return 0.0;
  std::sort(latencies.begin(), latencies.end());
  size_t index =
      static_cast<size_t>(q * static_cast<double>(latencies.size() - 1));
  return static_cast<double>(latencies[index].count());
}

CellResult RunCell(const fs::path& dir, int writers, int window_us,
                   int total_events) {
  fs::remove_all(dir);
  fs::create_directories(dir);
  storage::Journal::Options options;
  options.batch_window = microseconds(window_us);
  auto journal = storage::Journal::Open(dir.string(), "gen-0",
                                        storage::GetRealFileSystem(), options);
  PPDB_CHECK_OK(journal.status());

  // A representative encoded event frame (~the size of a set-preference).
  const std::string payload =
      "pref 123456 weight 3 4 5 purpose-from-the-bench-sweep";

  obs::Histogram* fsyncs = obs::MetricsRegistry::Default().GetHistogram(
      "ppdb_journal_fsync_seconds", "");
  const int64_t fsyncs_before = fsyncs->Count();

  const int per_writer = total_events / writers;
  std::vector<std::vector<microseconds>> lat_per_thread(
      static_cast<size_t>(writers));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(writers));
  const auto wall_start = steady_clock::now();
  for (int t = 0; t < writers; ++t) {
    threads.emplace_back([&, t] {
      auto& lat = lat_per_thread[static_cast<size_t>(t)];
      lat.reserve(static_cast<size_t>(per_writer));
      for (int i = 0; i < per_writer; ++i) {
        const auto start = steady_clock::now();
        PPDB_CHECK_OK(journal.value()->Append(payload));
        lat.push_back(duration_cast<microseconds>(steady_clock::now() - start));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  const double wall_s =
      std::chrono::duration<double>(steady_clock::now() - wall_start).count();

  std::vector<microseconds> latencies;
  latencies.reserve(static_cast<size_t>(per_writer * writers));
  for (auto& lat : lat_per_thread) {
    latencies.insert(latencies.end(), lat.begin(), lat.end());
  }
  const int64_t cell_fsyncs = fsyncs->Count() - fsyncs_before;

  CellResult result;
  result.writers = writers;
  result.window_us = window_us;
  result.events = per_writer * writers;
  result.events_per_s = static_cast<double>(result.events) / wall_s;
  result.batch_factor =
      cell_fsyncs > 0 ? static_cast<double>(result.events) /
                            static_cast<double>(cell_fsyncs)
                      : 0.0;
  result.p50_us = PercentileUs(latencies, 0.50);
  result.p95_us = PercentileUs(latencies, 0.95);
  result.p99_us = PercentileUs(latencies, 0.99);
  return result;
}

int Run(const std::string& output_path, bool smoke) {
  const fs::path root = fs::temp_directory_path() /
                        ("ppdb_bench_journal_" + std::to_string(::getpid()));
  const int total_events = smoke ? 240 : 4800;

  const int writer_counts[] = {1, 2, 4, 8};
  const int windows_us[] = {0, 100, 1000};
  std::vector<CellResult> results;
  for (int window : windows_us) {
    for (int writers : writer_counts) {
      results.push_back(
          RunCell(root / "journal", writers, window, total_events));
      const CellResult& r = results.back();
      std::fprintf(stderr,
                   "writers=%d window=%dus: %.0f acked-events/s "
                   "batch=%.1f p95=%.0fus\n",
                   r.writers, r.window_us, r.events_per_s, r.batch_factor,
                   r.p95_us);
    }
  }
  fs::remove_all(root);

  std::ofstream out(output_path);
  out << "{\n  \"benchmark\": \"journal_group_commit\",\n"
      // The build type of the code under test; tools/run_bench.sh refuses
      // to record baselines unless this is "release".
      << "  \"library_build_type\": \"" << PPDB_BENCH_BUILD_TYPE << "\",\n"
      << "  \"events_per_cell\": " << total_events << ",\n"
      << "  \"sweep\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const CellResult& r = results[i];
    char line[256];
    std::snprintf(line, sizeof(line),
                  "    {\"writers\": %d, \"window_us\": %d, \"events\": %d, "
                  "\"acked_events_per_s\": %.0f, \"appends_per_fsync\": %.2f, "
                  "\"ack_p50_us\": %.0f, \"ack_p95_us\": %.0f, "
                  "\"ack_p99_us\": %.0f}%s\n",
                  r.writers, r.window_us, r.events, r.events_per_s,
                  r.batch_factor, r.p50_us, r.p95_us, r.p99_us,
                  i + 1 < results.size() ? "," : "");
    out << line;
  }
  out << "  ],\n";

  // The journal's own fsync histogram, accumulated across the whole sweep
  // (see OBSERVABILITY.md): the device-level floor under every ack above.
  obs::Histogram* fsyncs = obs::MetricsRegistry::Default().GetHistogram(
      "ppdb_journal_fsync_seconds", "");
  char line[256];
  std::snprintf(line, sizeof(line),
                "  \"fsync_seconds\": {\"count\": %lld, \"p50_ms\": %.3f, "
                "\"p95_ms\": %.3f, \"p99_ms\": %.3f}\n",
                static_cast<long long>(fsyncs->Count()),
                fsyncs->Percentile(0.50) * 1000.0,
                fsyncs->Percentile(0.95) * 1000.0,
                fsyncs->Percentile(0.99) * 1000.0);
  out << line << "}\n";
  if (!out) {
    std::fprintf(stderr, "error: failed to write %s\n", output_path.c_str());
    return 1;
  }
  std::fprintf(stderr, "wrote %s\n", output_path.c_str());
  return 0;
}

}  // namespace
}  // namespace ppdb

int main(int argc, char** argv) {
  std::string output = "BENCH_journal.json";
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") {
      smoke = true;
    } else {
      output = argv[i];
    }
  }
  return ppdb::Run(output, smoke);
}

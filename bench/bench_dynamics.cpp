// Dynamics — the §10 future-work experiment: iterated house/provider
// dynamics. Each round the house best-responds to whoever is left; the
// providers its chosen policy pushes past their thresholds leave for good.
// The bench traces the trajectory on a Westin-mixed population and checks
// that it converges to a stable policy/population pair.
#include <cstdio>
#include <iostream>

#include "common/macros.h"
#include "sim/dynamics.h"
#include "sim/population.h"
#include "stats/table_printer.h"

namespace {

using namespace ppdb;  // NOLINT(build/namespaces)

}  // namespace

int main() {
  std::printf("=== Dynamics: iterated house best-response vs provider "
              "departure ===\n\n");

  sim::PopulationConfig config;
  config.num_providers = 2000;
  config.attributes = {{"purchases", 3.0, 120, 40},
                       {"location", 4.0, 0, 1}};
  config.purposes = {"service", "advertising"};
  config.seed = 5150;
  auto population_result = sim::PopulationGenerator(config).Generate();
  PPDB_CHECK_OK(population_result.status());
  sim::Population population = std::move(population_result).value();
  auto policy = sim::MakeUniformPolicy(config.attributes, config.purposes,
                                       0.0, 0.0, 0.0, &population.config);
  PPDB_CHECK_OK(policy.status());
  population.config.policy = std::move(policy).value();

  violation::SearchOptions options;
  options.utility_per_provider = 1.0;
  options.value_model = violation::MakeLinearExposureValue(0.6);

  auto result =
      sim::RunHouseProviderDynamics(population.config, options, 16);
  PPDB_CHECK_OK(result.status());

  stats::TablePrinter table({"round", "population", "policy moves",
                             "house utility", "departures"});
  for (const sim::DynamicsRound& round : result->rounds) {
    table.AddRow({stats::TablePrinter::FormatInt(round.round),
                  stats::TablePrinter::FormatInt(round.population),
                  stats::TablePrinter::FormatInt(round.moves),
                  stats::TablePrinter::FormatDouble(round.utility, 1),
                  stats::TablePrinter::FormatInt(round.departures)});
  }
  table.Print(std::cout);

  bool population_monotone = true;
  for (size_t r = 1; r < result->rounds.size(); ++r) {
    population_monotone = population_monotone &&
                          result->rounds[r].population <=
                              result->rounds[r - 1].population;
  }
  std::printf(
      "\nConverged: %s after %zu round(s); final population %lld of %lld; "
      "population monotone: %s; final round has no departures: %s.\n",
      result->converged ? "yes" : "NO", result->rounds.size(),
      static_cast<long long>(
          result->final_config.preferences.num_providers()),
      static_cast<long long>(config.num_providers),
      population_monotone ? "yes" : "NO",
      result->final_round().departures == 0 ? "yes" : "NO");
  bool ok = result->converged && population_monotone &&
            result->final_round().departures == 0;
  std::printf("%s\n",
              ok ? "DYNAMICS REPRODUCED: the iterated game reaches a "
                   "stable policy/population fixed point."
                 : "DYNAMICS SHAPE MISMATCH.");
  return ok ? 0 : 1;
}

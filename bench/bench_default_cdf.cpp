// E5 — Section 10's proposed methodology: "empirically construct a
// cumulative distribution function of the number of defaults as the house
// expands its privacy policies ... then used to examine particular house
// scenarios projected by the modification of its privacy policies."
//
// The bench widens a policy step by step over a Westin-mixed population,
// records each provider's default onset, and prints the resulting CDF
// (overall and per segment) plus an ASCII rendering.
#include <cstdio>
#include <iostream>

#include "common/macros.h"
#include "sim/population.h"
#include "sim/scenario.h"
#include "stats/histogram.h"
#include "stats/table_printer.h"
#include "violation/what_if.h"

namespace {

using namespace ppdb;  // NOLINT(build/namespaces)

}  // namespace

int main() {
  std::printf("=== E5: Section 10 — empirical default CDF under policy "
              "expansion ===\n\n");

  sim::PopulationConfig config;
  config.num_providers = 10000;
  config.attributes = {{"income", 5.0, 65000, 20000},
                       {"health", 4.0, 70, 15},
                       {"location", 3.0, 0, 1}};
  config.purposes = {"service", "analytics"};
  config.seed = 31337;
  for (sim::SegmentProfile& profile : config.profiles) {
    profile.statement_probability = 1.0;
  }
  auto population_result = sim::PopulationGenerator(config).Generate();
  PPDB_CHECK_OK(population_result.status());
  sim::Population population = std::move(population_result).value();

  auto policy = sim::MakeUniformPolicy(config.attributes, config.purposes,
                                       0.33, 0.33, 0.4, &population.config);
  PPDB_CHECK_OK(policy.status());
  population.config.policy = std::move(policy).value();
  PPDB_CHECK_OK(sim::CalibrateThresholdsToPolicy(&population, 4.2, 1.3, 5));

  std::vector<violation::ExpansionStep> schedule;
  for (int round = 0; round < 4; ++round) {
    for (privacy::Dimension dim : privacy::kOrderedDimensions) {
      schedule.push_back(violation::ExpansionStep{dim, 1, {}});
    }
  }

  sim::ScenarioRunner runner(&population);
  auto onsets = runner.DefaultOnsets(schedule);
  PPDB_CHECK_OK(onsets.status());

  std::array<int64_t, 3> segment_totals = {0, 0, 0};
  for (sim::WestinSegment s : population.segments) {
    ++segment_totals[static_cast<size_t>(s)];
  }

  stats::TablePrinter table({"widening step", "F(step) overall",
                             "fundamentalist", "pragmatist", "unconcerned"});
  auto segment_cdf = [&](sim::WestinSegment s, int step) {
    const stats::EmpiricalCdf& cdf =
        onsets->onset_by_segment[static_cast<size_t>(s)];
    int64_t total = segment_totals[static_cast<size_t>(s)];
    if (total == 0) return 0.0;
    return static_cast<double>(cdf.count()) *
           cdf.Evaluate(static_cast<double>(step)) /
           static_cast<double>(total);
  };
  double previous = -1.0;
  bool monotone = true;
  bool ordered_everywhere = true;
  for (int step = 0; step <= static_cast<int>(schedule.size()); ++step) {
    double overall = onsets->FractionDefaultedBy(step);
    monotone = monotone && overall >= previous;
    previous = overall;
    double f = segment_cdf(sim::WestinSegment::kFundamentalist, step);
    double p = segment_cdf(sim::WestinSegment::kPragmatist, step);
    double u = segment_cdf(sim::WestinSegment::kUnconcerned, step);
    if (step > 0) ordered_everywhere = ordered_everywhere && f >= p && p >= u;
    table.AddRow({stats::TablePrinter::FormatInt(step),
                  stats::TablePrinter::FormatDouble(overall, 4),
                  stats::TablePrinter::FormatDouble(f, 4),
                  stats::TablePrinter::FormatDouble(p, 4),
                  stats::TablePrinter::FormatDouble(u, 4)});
  }
  table.Print(std::cout);

  // Onset histogram (the CDF's density).
  auto histogram = stats::Histogram::Create(
      0.5, static_cast<double>(schedule.size()) + 0.5,
      static_cast<int>(schedule.size()));
  PPDB_CHECK_OK(histogram.status());
  for (double onset : onsets->onset_steps.SortedSamples()) {
    histogram->Add(onset);
  }
  std::printf("\nDefault-onset histogram (providers newly defaulting per "
              "step):\n%s",
              histogram->ToAsciiArt(48).c_str());
  std::printf("\n%lld of %lld providers never defaulted.\n",
              static_cast<long long>(onsets->never_defaulted),
              static_cast<long long>(population.num_providers()));

  std::printf(
      "\nPaper-vs-measured (qualitative): CDF monotone non-decreasing: %s; "
      "segment ordering fundamentalist >= pragmatist >= unconcerned at "
      "every step: %s.\n",
      monotone ? "yes" : "NO", ordered_everywhere ? "yes" : "NO");
  std::printf("%s\n", monotone && ordered_everywhere
                          ? "E5 REPRODUCED: the Section 10 CDF "
                            "construction behaves as the paper projects."
                          : "E5 SHAPE MISMATCH.");
  return monotone && ordered_everywhere ? 0 : 1;
}

# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/.review-build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/.review-build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_healthcare_audit "/root/repo/.review-build/examples/healthcare_audit")
set_tests_properties(example_healthcare_audit PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_social_policy_comparison "/root/repo/.review-build/examples/social_policy_comparison")
set_tests_properties(example_social_policy_comparison PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_westin_population_study "/root/repo/.review-build/examples/westin_population_study")
set_tests_properties(example_westin_population_study PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_policy_negotiation "/root/repo/.review-build/examples/policy_negotiation")
set_tests_properties(example_policy_negotiation PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_live_monitoring "/root/repo/.review-build/examples/live_monitoring")
set_tests_properties(example_live_monitoring PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")

file(REMOVE_RECURSE
  "CMakeFiles/live_monitoring.dir/live_monitoring.cpp.o"
  "CMakeFiles/live_monitoring.dir/live_monitoring.cpp.o.d"
  "live_monitoring"
  "live_monitoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/live_monitoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for live_monitoring.
# This may be replaced when dependencies are built.

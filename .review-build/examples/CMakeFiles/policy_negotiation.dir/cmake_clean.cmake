file(REMOVE_RECURSE
  "CMakeFiles/policy_negotiation.dir/policy_negotiation.cpp.o"
  "CMakeFiles/policy_negotiation.dir/policy_negotiation.cpp.o.d"
  "policy_negotiation"
  "policy_negotiation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/policy_negotiation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

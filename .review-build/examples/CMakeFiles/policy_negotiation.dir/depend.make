# Empty dependencies file for policy_negotiation.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/healthcare_audit.dir/healthcare_audit.cpp.o"
  "CMakeFiles/healthcare_audit.dir/healthcare_audit.cpp.o.d"
  "healthcare_audit"
  "healthcare_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/healthcare_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

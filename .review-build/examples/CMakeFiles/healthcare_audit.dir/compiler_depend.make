# Empty compiler generated dependencies file for healthcare_audit.
# This may be replaced when dependencies are built.

# Empty dependencies file for westin_population_study.
# This may be replaced when dependencies are built.

# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for westin_population_study.

file(REMOVE_RECURSE
  "CMakeFiles/westin_population_study.dir/westin_population_study.cpp.o"
  "CMakeFiles/westin_population_study.dir/westin_population_study.cpp.o.d"
  "westin_population_study"
  "westin_population_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/westin_population_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for social_policy_comparison.
# This may be replaced when dependencies are built.

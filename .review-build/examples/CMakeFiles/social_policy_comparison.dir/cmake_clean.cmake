file(REMOVE_RECURSE
  "CMakeFiles/social_policy_comparison.dir/social_policy_comparison.cpp.o"
  "CMakeFiles/social_policy_comparison.dir/social_policy_comparison.cpp.o.d"
  "social_policy_comparison"
  "social_policy_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/social_policy_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

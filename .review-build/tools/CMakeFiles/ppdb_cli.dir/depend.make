# Empty dependencies file for ppdb_cli.
# This may be replaced when dependencies are built.

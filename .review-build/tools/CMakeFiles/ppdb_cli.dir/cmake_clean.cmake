file(REMOVE_RECURSE
  "CMakeFiles/ppdb_cli.dir/ppdb_cli.cpp.o"
  "CMakeFiles/ppdb_cli.dir/ppdb_cli.cpp.o.d"
  "ppdb_cli"
  "ppdb_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppdb_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for ppdb_analyze.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ppdb_analyze.dir/analyzer_main.cc.o"
  "CMakeFiles/ppdb_analyze.dir/analyzer_main.cc.o.d"
  "CMakeFiles/ppdb_analyze.dir/determinism.cc.o"
  "CMakeFiles/ppdb_analyze.dir/determinism.cc.o.d"
  "CMakeFiles/ppdb_analyze.dir/lock_order.cc.o"
  "CMakeFiles/ppdb_analyze.dir/lock_order.cc.o.d"
  "CMakeFiles/ppdb_analyze.dir/source_lexer.cc.o"
  "CMakeFiles/ppdb_analyze.dir/source_lexer.cc.o.d"
  "ppdb_analyze"
  "ppdb_analyze.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppdb_analyze.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

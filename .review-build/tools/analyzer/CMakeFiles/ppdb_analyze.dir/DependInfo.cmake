
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/analyzer/analyzer_main.cc" "tools/analyzer/CMakeFiles/ppdb_analyze.dir/analyzer_main.cc.o" "gcc" "tools/analyzer/CMakeFiles/ppdb_analyze.dir/analyzer_main.cc.o.d"
  "/root/repo/tools/analyzer/determinism.cc" "tools/analyzer/CMakeFiles/ppdb_analyze.dir/determinism.cc.o" "gcc" "tools/analyzer/CMakeFiles/ppdb_analyze.dir/determinism.cc.o.d"
  "/root/repo/tools/analyzer/lock_order.cc" "tools/analyzer/CMakeFiles/ppdb_analyze.dir/lock_order.cc.o" "gcc" "tools/analyzer/CMakeFiles/ppdb_analyze.dir/lock_order.cc.o.d"
  "/root/repo/tools/analyzer/source_lexer.cc" "tools/analyzer/CMakeFiles/ppdb_analyze.dir/source_lexer.cc.o" "gcc" "tools/analyzer/CMakeFiles/ppdb_analyze.dir/source_lexer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

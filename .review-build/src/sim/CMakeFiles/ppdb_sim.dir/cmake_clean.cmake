file(REMOVE_RECURSE
  "CMakeFiles/ppdb_sim.dir/dynamics.cc.o"
  "CMakeFiles/ppdb_sim.dir/dynamics.cc.o.d"
  "CMakeFiles/ppdb_sim.dir/population.cc.o"
  "CMakeFiles/ppdb_sim.dir/population.cc.o.d"
  "CMakeFiles/ppdb_sim.dir/scenario.cc.o"
  "CMakeFiles/ppdb_sim.dir/scenario.cc.o.d"
  "CMakeFiles/ppdb_sim.dir/westin.cc.o"
  "CMakeFiles/ppdb_sim.dir/westin.cc.o.d"
  "libppdb_sim.a"
  "libppdb_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppdb_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

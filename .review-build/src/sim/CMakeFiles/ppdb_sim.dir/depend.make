# Empty dependencies file for ppdb_sim.
# This may be replaced when dependencies are built.

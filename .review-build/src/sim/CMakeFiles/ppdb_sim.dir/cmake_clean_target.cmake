file(REMOVE_RECURSE
  "libppdb_sim.a"
)

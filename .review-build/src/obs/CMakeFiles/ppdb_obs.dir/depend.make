# Empty dependencies file for ppdb_obs.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ppdb_obs.dir/metrics.cc.o"
  "CMakeFiles/ppdb_obs.dir/metrics.cc.o.d"
  "CMakeFiles/ppdb_obs.dir/trace.cc.o"
  "CMakeFiles/ppdb_obs.dir/trace.cc.o.d"
  "libppdb_obs.a"
  "libppdb_obs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppdb_obs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

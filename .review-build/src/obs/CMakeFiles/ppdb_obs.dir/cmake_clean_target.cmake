file(REMOVE_RECURSE
  "libppdb_obs.a"
)

# Empty dependencies file for ppdb_relational.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/relational/catalog.cc" "src/relational/CMakeFiles/ppdb_relational.dir/catalog.cc.o" "gcc" "src/relational/CMakeFiles/ppdb_relational.dir/catalog.cc.o.d"
  "/root/repo/src/relational/csv.cc" "src/relational/CMakeFiles/ppdb_relational.dir/csv.cc.o" "gcc" "src/relational/CMakeFiles/ppdb_relational.dir/csv.cc.o.d"
  "/root/repo/src/relational/expression.cc" "src/relational/CMakeFiles/ppdb_relational.dir/expression.cc.o" "gcc" "src/relational/CMakeFiles/ppdb_relational.dir/expression.cc.o.d"
  "/root/repo/src/relational/query.cc" "src/relational/CMakeFiles/ppdb_relational.dir/query.cc.o" "gcc" "src/relational/CMakeFiles/ppdb_relational.dir/query.cc.o.d"
  "/root/repo/src/relational/schema.cc" "src/relational/CMakeFiles/ppdb_relational.dir/schema.cc.o" "gcc" "src/relational/CMakeFiles/ppdb_relational.dir/schema.cc.o.d"
  "/root/repo/src/relational/sql.cc" "src/relational/CMakeFiles/ppdb_relational.dir/sql.cc.o" "gcc" "src/relational/CMakeFiles/ppdb_relational.dir/sql.cc.o.d"
  "/root/repo/src/relational/table.cc" "src/relational/CMakeFiles/ppdb_relational.dir/table.cc.o" "gcc" "src/relational/CMakeFiles/ppdb_relational.dir/table.cc.o.d"
  "/root/repo/src/relational/value.cc" "src/relational/CMakeFiles/ppdb_relational.dir/value.cc.o" "gcc" "src/relational/CMakeFiles/ppdb_relational.dir/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/.review-build/src/common/CMakeFiles/ppdb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/ppdb_relational.dir/catalog.cc.o"
  "CMakeFiles/ppdb_relational.dir/catalog.cc.o.d"
  "CMakeFiles/ppdb_relational.dir/csv.cc.o"
  "CMakeFiles/ppdb_relational.dir/csv.cc.o.d"
  "CMakeFiles/ppdb_relational.dir/expression.cc.o"
  "CMakeFiles/ppdb_relational.dir/expression.cc.o.d"
  "CMakeFiles/ppdb_relational.dir/query.cc.o"
  "CMakeFiles/ppdb_relational.dir/query.cc.o.d"
  "CMakeFiles/ppdb_relational.dir/schema.cc.o"
  "CMakeFiles/ppdb_relational.dir/schema.cc.o.d"
  "CMakeFiles/ppdb_relational.dir/sql.cc.o"
  "CMakeFiles/ppdb_relational.dir/sql.cc.o.d"
  "CMakeFiles/ppdb_relational.dir/table.cc.o"
  "CMakeFiles/ppdb_relational.dir/table.cc.o.d"
  "CMakeFiles/ppdb_relational.dir/value.cc.o"
  "CMakeFiles/ppdb_relational.dir/value.cc.o.d"
  "libppdb_relational.a"
  "libppdb_relational.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppdb_relational.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

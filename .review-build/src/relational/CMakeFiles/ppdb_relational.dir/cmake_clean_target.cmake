file(REMOVE_RECURSE
  "libppdb_relational.a"
)

file(REMOVE_RECURSE
  "libppdb_stats.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/confidence.cc" "src/stats/CMakeFiles/ppdb_stats.dir/confidence.cc.o" "gcc" "src/stats/CMakeFiles/ppdb_stats.dir/confidence.cc.o.d"
  "/root/repo/src/stats/empirical_cdf.cc" "src/stats/CMakeFiles/ppdb_stats.dir/empirical_cdf.cc.o" "gcc" "src/stats/CMakeFiles/ppdb_stats.dir/empirical_cdf.cc.o.d"
  "/root/repo/src/stats/histogram.cc" "src/stats/CMakeFiles/ppdb_stats.dir/histogram.cc.o" "gcc" "src/stats/CMakeFiles/ppdb_stats.dir/histogram.cc.o.d"
  "/root/repo/src/stats/rank_correlation.cc" "src/stats/CMakeFiles/ppdb_stats.dir/rank_correlation.cc.o" "gcc" "src/stats/CMakeFiles/ppdb_stats.dir/rank_correlation.cc.o.d"
  "/root/repo/src/stats/running_stats.cc" "src/stats/CMakeFiles/ppdb_stats.dir/running_stats.cc.o" "gcc" "src/stats/CMakeFiles/ppdb_stats.dir/running_stats.cc.o.d"
  "/root/repo/src/stats/table_printer.cc" "src/stats/CMakeFiles/ppdb_stats.dir/table_printer.cc.o" "gcc" "src/stats/CMakeFiles/ppdb_stats.dir/table_printer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/.review-build/src/common/CMakeFiles/ppdb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/ppdb_stats.dir/confidence.cc.o"
  "CMakeFiles/ppdb_stats.dir/confidence.cc.o.d"
  "CMakeFiles/ppdb_stats.dir/empirical_cdf.cc.o"
  "CMakeFiles/ppdb_stats.dir/empirical_cdf.cc.o.d"
  "CMakeFiles/ppdb_stats.dir/histogram.cc.o"
  "CMakeFiles/ppdb_stats.dir/histogram.cc.o.d"
  "CMakeFiles/ppdb_stats.dir/rank_correlation.cc.o"
  "CMakeFiles/ppdb_stats.dir/rank_correlation.cc.o.d"
  "CMakeFiles/ppdb_stats.dir/running_stats.cc.o"
  "CMakeFiles/ppdb_stats.dir/running_stats.cc.o.d"
  "CMakeFiles/ppdb_stats.dir/table_printer.cc.o"
  "CMakeFiles/ppdb_stats.dir/table_printer.cc.o.d"
  "libppdb_stats.a"
  "libppdb_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppdb_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

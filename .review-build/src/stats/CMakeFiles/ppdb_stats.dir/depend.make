# Empty dependencies file for ppdb_stats.
# This may be replaced when dependencies are built.

# Empty dependencies file for ppdb_violation.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/violation/change_impact.cc" "src/violation/CMakeFiles/ppdb_violation.dir/change_impact.cc.o" "gcc" "src/violation/CMakeFiles/ppdb_violation.dir/change_impact.cc.o.d"
  "/root/repo/src/violation/conflict.cc" "src/violation/CMakeFiles/ppdb_violation.dir/conflict.cc.o" "gcc" "src/violation/CMakeFiles/ppdb_violation.dir/conflict.cc.o.d"
  "/root/repo/src/violation/default_model.cc" "src/violation/CMakeFiles/ppdb_violation.dir/default_model.cc.o" "gcc" "src/violation/CMakeFiles/ppdb_violation.dir/default_model.cc.o.d"
  "/root/repo/src/violation/detector.cc" "src/violation/CMakeFiles/ppdb_violation.dir/detector.cc.o" "gcc" "src/violation/CMakeFiles/ppdb_violation.dir/detector.cc.o.d"
  "/root/repo/src/violation/incremental.cc" "src/violation/CMakeFiles/ppdb_violation.dir/incremental.cc.o" "gcc" "src/violation/CMakeFiles/ppdb_violation.dir/incremental.cc.o.d"
  "/root/repo/src/violation/kernel/severity_kernel.cc" "src/violation/CMakeFiles/ppdb_violation.dir/kernel/severity_kernel.cc.o" "gcc" "src/violation/CMakeFiles/ppdb_violation.dir/kernel/severity_kernel.cc.o.d"
  "/root/repo/src/violation/kernel/severity_kernel_avx2.cc" "src/violation/CMakeFiles/ppdb_violation.dir/kernel/severity_kernel_avx2.cc.o" "gcc" "src/violation/CMakeFiles/ppdb_violation.dir/kernel/severity_kernel_avx2.cc.o.d"
  "/root/repo/src/violation/kernel/severity_kernel_neon.cc" "src/violation/CMakeFiles/ppdb_violation.dir/kernel/severity_kernel_neon.cc.o" "gcc" "src/violation/CMakeFiles/ppdb_violation.dir/kernel/severity_kernel_neon.cc.o.d"
  "/root/repo/src/violation/live_monitor.cc" "src/violation/CMakeFiles/ppdb_violation.dir/live_monitor.cc.o" "gcc" "src/violation/CMakeFiles/ppdb_violation.dir/live_monitor.cc.o.d"
  "/root/repo/src/violation/metrics.cc" "src/violation/CMakeFiles/ppdb_violation.dir/metrics.cc.o" "gcc" "src/violation/CMakeFiles/ppdb_violation.dir/metrics.cc.o.d"
  "/root/repo/src/violation/policy_search.cc" "src/violation/CMakeFiles/ppdb_violation.dir/policy_search.cc.o" "gcc" "src/violation/CMakeFiles/ppdb_violation.dir/policy_search.cc.o.d"
  "/root/repo/src/violation/probability.cc" "src/violation/CMakeFiles/ppdb_violation.dir/probability.cc.o" "gcc" "src/violation/CMakeFiles/ppdb_violation.dir/probability.cc.o.d"
  "/root/repo/src/violation/report.cc" "src/violation/CMakeFiles/ppdb_violation.dir/report.cc.o" "gcc" "src/violation/CMakeFiles/ppdb_violation.dir/report.cc.o.d"
  "/root/repo/src/violation/report_io.cc" "src/violation/CMakeFiles/ppdb_violation.dir/report_io.cc.o" "gcc" "src/violation/CMakeFiles/ppdb_violation.dir/report_io.cc.o.d"
  "/root/repo/src/violation/utility.cc" "src/violation/CMakeFiles/ppdb_violation.dir/utility.cc.o" "gcc" "src/violation/CMakeFiles/ppdb_violation.dir/utility.cc.o.d"
  "/root/repo/src/violation/what_if.cc" "src/violation/CMakeFiles/ppdb_violation.dir/what_if.cc.o" "gcc" "src/violation/CMakeFiles/ppdb_violation.dir/what_if.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/.review-build/src/privacy/CMakeFiles/ppdb_privacy.dir/DependInfo.cmake"
  "/root/repo/.review-build/src/relational/CMakeFiles/ppdb_relational.dir/DependInfo.cmake"
  "/root/repo/.review-build/src/stats/CMakeFiles/ppdb_stats.dir/DependInfo.cmake"
  "/root/repo/.review-build/src/obs/CMakeFiles/ppdb_obs.dir/DependInfo.cmake"
  "/root/repo/.review-build/src/common/CMakeFiles/ppdb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libppdb_violation.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/server/broker.cc" "src/server/CMakeFiles/ppdb_server.dir/broker.cc.o" "gcc" "src/server/CMakeFiles/ppdb_server.dir/broker.cc.o.d"
  "/root/repo/src/server/net/conn_metrics.cc" "src/server/CMakeFiles/ppdb_server.dir/net/conn_metrics.cc.o" "gcc" "src/server/CMakeFiles/ppdb_server.dir/net/conn_metrics.cc.o.d"
  "/root/repo/src/server/net/framer.cc" "src/server/CMakeFiles/ppdb_server.dir/net/framer.cc.o" "gcc" "src/server/CMakeFiles/ppdb_server.dir/net/framer.cc.o.d"
  "/root/repo/src/server/net/poller.cc" "src/server/CMakeFiles/ppdb_server.dir/net/poller.cc.o" "gcc" "src/server/CMakeFiles/ppdb_server.dir/net/poller.cc.o.d"
  "/root/repo/src/server/net/tcp_server.cc" "src/server/CMakeFiles/ppdb_server.dir/net/tcp_server.cc.o" "gcc" "src/server/CMakeFiles/ppdb_server.dir/net/tcp_server.cc.o.d"
  "/root/repo/src/server/net/transport.cc" "src/server/CMakeFiles/ppdb_server.dir/net/transport.cc.o" "gcc" "src/server/CMakeFiles/ppdb_server.dir/net/transport.cc.o.d"
  "/root/repo/src/server/request.cc" "src/server/CMakeFiles/ppdb_server.dir/request.cc.o" "gcc" "src/server/CMakeFiles/ppdb_server.dir/request.cc.o.d"
  "/root/repo/src/server/serve.cc" "src/server/CMakeFiles/ppdb_server.dir/serve.cc.o" "gcc" "src/server/CMakeFiles/ppdb_server.dir/serve.cc.o.d"
  "/root/repo/src/server/serve_core.cc" "src/server/CMakeFiles/ppdb_server.dir/serve_core.cc.o" "gcc" "src/server/CMakeFiles/ppdb_server.dir/serve_core.cc.o.d"
  "/root/repo/src/server/service.cc" "src/server/CMakeFiles/ppdb_server.dir/service.cc.o" "gcc" "src/server/CMakeFiles/ppdb_server.dir/service.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/.review-build/src/storage/CMakeFiles/ppdb_storage.dir/DependInfo.cmake"
  "/root/repo/.review-build/src/violation/CMakeFiles/ppdb_violation.dir/DependInfo.cmake"
  "/root/repo/.review-build/src/privacy/CMakeFiles/ppdb_privacy.dir/DependInfo.cmake"
  "/root/repo/.review-build/src/relational/CMakeFiles/ppdb_relational.dir/DependInfo.cmake"
  "/root/repo/.review-build/src/obs/CMakeFiles/ppdb_obs.dir/DependInfo.cmake"
  "/root/repo/.review-build/src/common/CMakeFiles/ppdb_common.dir/DependInfo.cmake"
  "/root/repo/.review-build/src/audit/CMakeFiles/ppdb_audit.dir/DependInfo.cmake"
  "/root/repo/.review-build/src/stats/CMakeFiles/ppdb_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty dependencies file for ppdb_server.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libppdb_server.a"
)

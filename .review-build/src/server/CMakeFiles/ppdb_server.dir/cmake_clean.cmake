file(REMOVE_RECURSE
  "CMakeFiles/ppdb_server.dir/broker.cc.o"
  "CMakeFiles/ppdb_server.dir/broker.cc.o.d"
  "CMakeFiles/ppdb_server.dir/net/conn_metrics.cc.o"
  "CMakeFiles/ppdb_server.dir/net/conn_metrics.cc.o.d"
  "CMakeFiles/ppdb_server.dir/net/framer.cc.o"
  "CMakeFiles/ppdb_server.dir/net/framer.cc.o.d"
  "CMakeFiles/ppdb_server.dir/net/poller.cc.o"
  "CMakeFiles/ppdb_server.dir/net/poller.cc.o.d"
  "CMakeFiles/ppdb_server.dir/net/tcp_server.cc.o"
  "CMakeFiles/ppdb_server.dir/net/tcp_server.cc.o.d"
  "CMakeFiles/ppdb_server.dir/net/transport.cc.o"
  "CMakeFiles/ppdb_server.dir/net/transport.cc.o.d"
  "CMakeFiles/ppdb_server.dir/request.cc.o"
  "CMakeFiles/ppdb_server.dir/request.cc.o.d"
  "CMakeFiles/ppdb_server.dir/serve.cc.o"
  "CMakeFiles/ppdb_server.dir/serve.cc.o.d"
  "CMakeFiles/ppdb_server.dir/serve_core.cc.o"
  "CMakeFiles/ppdb_server.dir/serve_core.cc.o.d"
  "CMakeFiles/ppdb_server.dir/service.cc.o"
  "CMakeFiles/ppdb_server.dir/service.cc.o.d"
  "libppdb_server.a"
  "libppdb_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppdb_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/ppdb_common.dir/circuit_breaker.cc.o"
  "CMakeFiles/ppdb_common.dir/circuit_breaker.cc.o.d"
  "CMakeFiles/ppdb_common.dir/crc32c.cc.o"
  "CMakeFiles/ppdb_common.dir/crc32c.cc.o.d"
  "CMakeFiles/ppdb_common.dir/deadline.cc.o"
  "CMakeFiles/ppdb_common.dir/deadline.cc.o.d"
  "CMakeFiles/ppdb_common.dir/deadlock.cc.o"
  "CMakeFiles/ppdb_common.dir/deadlock.cc.o.d"
  "CMakeFiles/ppdb_common.dir/logging.cc.o"
  "CMakeFiles/ppdb_common.dir/logging.cc.o.d"
  "CMakeFiles/ppdb_common.dir/retry.cc.o"
  "CMakeFiles/ppdb_common.dir/retry.cc.o.d"
  "CMakeFiles/ppdb_common.dir/rng.cc.o"
  "CMakeFiles/ppdb_common.dir/rng.cc.o.d"
  "CMakeFiles/ppdb_common.dir/status.cc.o"
  "CMakeFiles/ppdb_common.dir/status.cc.o.d"
  "CMakeFiles/ppdb_common.dir/string_util.cc.o"
  "CMakeFiles/ppdb_common.dir/string_util.cc.o.d"
  "CMakeFiles/ppdb_common.dir/thread_pool.cc.o"
  "CMakeFiles/ppdb_common.dir/thread_pool.cc.o.d"
  "libppdb_common.a"
  "libppdb_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppdb_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libppdb_common.a"
)

# Empty compiler generated dependencies file for ppdb_common.
# This may be replaced when dependencies are built.

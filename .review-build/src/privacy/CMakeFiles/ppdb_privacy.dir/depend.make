# Empty dependencies file for ppdb_privacy.
# This may be replaced when dependencies are built.

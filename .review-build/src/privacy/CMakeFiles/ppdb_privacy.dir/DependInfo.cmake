
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/privacy/config.cc" "src/privacy/CMakeFiles/ppdb_privacy.dir/config.cc.o" "gcc" "src/privacy/CMakeFiles/ppdb_privacy.dir/config.cc.o.d"
  "/root/repo/src/privacy/dimension.cc" "src/privacy/CMakeFiles/ppdb_privacy.dir/dimension.cc.o" "gcc" "src/privacy/CMakeFiles/ppdb_privacy.dir/dimension.cc.o.d"
  "/root/repo/src/privacy/house_policy.cc" "src/privacy/CMakeFiles/ppdb_privacy.dir/house_policy.cc.o" "gcc" "src/privacy/CMakeFiles/ppdb_privacy.dir/house_policy.cc.o.d"
  "/root/repo/src/privacy/ordered_scale.cc" "src/privacy/CMakeFiles/ppdb_privacy.dir/ordered_scale.cc.o" "gcc" "src/privacy/CMakeFiles/ppdb_privacy.dir/ordered_scale.cc.o.d"
  "/root/repo/src/privacy/policy_diff.cc" "src/privacy/CMakeFiles/ppdb_privacy.dir/policy_diff.cc.o" "gcc" "src/privacy/CMakeFiles/ppdb_privacy.dir/policy_diff.cc.o.d"
  "/root/repo/src/privacy/policy_dsl.cc" "src/privacy/CMakeFiles/ppdb_privacy.dir/policy_dsl.cc.o" "gcc" "src/privacy/CMakeFiles/ppdb_privacy.dir/policy_dsl.cc.o.d"
  "/root/repo/src/privacy/privacy_tuple.cc" "src/privacy/CMakeFiles/ppdb_privacy.dir/privacy_tuple.cc.o" "gcc" "src/privacy/CMakeFiles/ppdb_privacy.dir/privacy_tuple.cc.o.d"
  "/root/repo/src/privacy/provider_prefs.cc" "src/privacy/CMakeFiles/ppdb_privacy.dir/provider_prefs.cc.o" "gcc" "src/privacy/CMakeFiles/ppdb_privacy.dir/provider_prefs.cc.o.d"
  "/root/repo/src/privacy/purpose.cc" "src/privacy/CMakeFiles/ppdb_privacy.dir/purpose.cc.o" "gcc" "src/privacy/CMakeFiles/ppdb_privacy.dir/purpose.cc.o.d"
  "/root/repo/src/privacy/sensitivity.cc" "src/privacy/CMakeFiles/ppdb_privacy.dir/sensitivity.cc.o" "gcc" "src/privacy/CMakeFiles/ppdb_privacy.dir/sensitivity.cc.o.d"
  "/root/repo/src/privacy/tuple_columns.cc" "src/privacy/CMakeFiles/ppdb_privacy.dir/tuple_columns.cc.o" "gcc" "src/privacy/CMakeFiles/ppdb_privacy.dir/tuple_columns.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/.review-build/src/common/CMakeFiles/ppdb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/ppdb_privacy.dir/config.cc.o"
  "CMakeFiles/ppdb_privacy.dir/config.cc.o.d"
  "CMakeFiles/ppdb_privacy.dir/dimension.cc.o"
  "CMakeFiles/ppdb_privacy.dir/dimension.cc.o.d"
  "CMakeFiles/ppdb_privacy.dir/house_policy.cc.o"
  "CMakeFiles/ppdb_privacy.dir/house_policy.cc.o.d"
  "CMakeFiles/ppdb_privacy.dir/ordered_scale.cc.o"
  "CMakeFiles/ppdb_privacy.dir/ordered_scale.cc.o.d"
  "CMakeFiles/ppdb_privacy.dir/policy_diff.cc.o"
  "CMakeFiles/ppdb_privacy.dir/policy_diff.cc.o.d"
  "CMakeFiles/ppdb_privacy.dir/policy_dsl.cc.o"
  "CMakeFiles/ppdb_privacy.dir/policy_dsl.cc.o.d"
  "CMakeFiles/ppdb_privacy.dir/privacy_tuple.cc.o"
  "CMakeFiles/ppdb_privacy.dir/privacy_tuple.cc.o.d"
  "CMakeFiles/ppdb_privacy.dir/provider_prefs.cc.o"
  "CMakeFiles/ppdb_privacy.dir/provider_prefs.cc.o.d"
  "CMakeFiles/ppdb_privacy.dir/purpose.cc.o"
  "CMakeFiles/ppdb_privacy.dir/purpose.cc.o.d"
  "CMakeFiles/ppdb_privacy.dir/sensitivity.cc.o"
  "CMakeFiles/ppdb_privacy.dir/sensitivity.cc.o.d"
  "CMakeFiles/ppdb_privacy.dir/tuple_columns.cc.o"
  "CMakeFiles/ppdb_privacy.dir/tuple_columns.cc.o.d"
  "libppdb_privacy.a"
  "libppdb_privacy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppdb_privacy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libppdb_privacy.a"
)

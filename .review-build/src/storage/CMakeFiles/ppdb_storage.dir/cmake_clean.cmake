file(REMOVE_RECURSE
  "CMakeFiles/ppdb_storage.dir/database_io.cc.o"
  "CMakeFiles/ppdb_storage.dir/database_io.cc.o.d"
  "CMakeFiles/ppdb_storage.dir/fs.cc.o"
  "CMakeFiles/ppdb_storage.dir/fs.cc.o.d"
  "CMakeFiles/ppdb_storage.dir/journal.cc.o"
  "CMakeFiles/ppdb_storage.dir/journal.cc.o.d"
  "libppdb_storage.a"
  "libppdb_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppdb_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libppdb_storage.a"
)

# Empty dependencies file for ppdb_storage.
# This may be replaced when dependencies are built.

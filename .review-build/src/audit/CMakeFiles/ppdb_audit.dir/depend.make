# Empty dependencies file for ppdb_audit.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/audit/audit_log.cc" "src/audit/CMakeFiles/ppdb_audit.dir/audit_log.cc.o" "gcc" "src/audit/CMakeFiles/ppdb_audit.dir/audit_log.cc.o.d"
  "/root/repo/src/audit/dp_release.cc" "src/audit/CMakeFiles/ppdb_audit.dir/dp_release.cc.o" "gcc" "src/audit/CMakeFiles/ppdb_audit.dir/dp_release.cc.o.d"
  "/root/repo/src/audit/generalizer.cc" "src/audit/CMakeFiles/ppdb_audit.dir/generalizer.cc.o" "gcc" "src/audit/CMakeFiles/ppdb_audit.dir/generalizer.cc.o.d"
  "/root/repo/src/audit/k_anonymity.cc" "src/audit/CMakeFiles/ppdb_audit.dir/k_anonymity.cc.o" "gcc" "src/audit/CMakeFiles/ppdb_audit.dir/k_anonymity.cc.o.d"
  "/root/repo/src/audit/ledger.cc" "src/audit/CMakeFiles/ppdb_audit.dir/ledger.cc.o" "gcc" "src/audit/CMakeFiles/ppdb_audit.dir/ledger.cc.o.d"
  "/root/repo/src/audit/monitor.cc" "src/audit/CMakeFiles/ppdb_audit.dir/monitor.cc.o" "gcc" "src/audit/CMakeFiles/ppdb_audit.dir/monitor.cc.o.d"
  "/root/repo/src/audit/retention_sweeper.cc" "src/audit/CMakeFiles/ppdb_audit.dir/retention_sweeper.cc.o" "gcc" "src/audit/CMakeFiles/ppdb_audit.dir/retention_sweeper.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/.review-build/src/privacy/CMakeFiles/ppdb_privacy.dir/DependInfo.cmake"
  "/root/repo/.review-build/src/relational/CMakeFiles/ppdb_relational.dir/DependInfo.cmake"
  "/root/repo/.review-build/src/violation/CMakeFiles/ppdb_violation.dir/DependInfo.cmake"
  "/root/repo/.review-build/src/stats/CMakeFiles/ppdb_stats.dir/DependInfo.cmake"
  "/root/repo/.review-build/src/obs/CMakeFiles/ppdb_obs.dir/DependInfo.cmake"
  "/root/repo/.review-build/src/common/CMakeFiles/ppdb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/ppdb_audit.dir/audit_log.cc.o"
  "CMakeFiles/ppdb_audit.dir/audit_log.cc.o.d"
  "CMakeFiles/ppdb_audit.dir/dp_release.cc.o"
  "CMakeFiles/ppdb_audit.dir/dp_release.cc.o.d"
  "CMakeFiles/ppdb_audit.dir/generalizer.cc.o"
  "CMakeFiles/ppdb_audit.dir/generalizer.cc.o.d"
  "CMakeFiles/ppdb_audit.dir/k_anonymity.cc.o"
  "CMakeFiles/ppdb_audit.dir/k_anonymity.cc.o.d"
  "CMakeFiles/ppdb_audit.dir/ledger.cc.o"
  "CMakeFiles/ppdb_audit.dir/ledger.cc.o.d"
  "CMakeFiles/ppdb_audit.dir/monitor.cc.o"
  "CMakeFiles/ppdb_audit.dir/monitor.cc.o.d"
  "CMakeFiles/ppdb_audit.dir/retention_sweeper.cc.o"
  "CMakeFiles/ppdb_audit.dir/retention_sweeper.cc.o.d"
  "libppdb_audit.a"
  "libppdb_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppdb_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libppdb_audit.a"
)

# Empty dependencies file for privacy_tests.
# This may be replaced when dependencies are built.

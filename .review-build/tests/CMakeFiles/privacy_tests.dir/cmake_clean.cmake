file(REMOVE_RECURSE
  "CMakeFiles/privacy_tests.dir/privacy_dsl_test.cc.o"
  "CMakeFiles/privacy_tests.dir/privacy_dsl_test.cc.o.d"
  "CMakeFiles/privacy_tests.dir/privacy_policy_diff_test.cc.o"
  "CMakeFiles/privacy_tests.dir/privacy_policy_diff_test.cc.o.d"
  "CMakeFiles/privacy_tests.dir/privacy_policy_test.cc.o"
  "CMakeFiles/privacy_tests.dir/privacy_policy_test.cc.o.d"
  "CMakeFiles/privacy_tests.dir/privacy_purpose_test.cc.o"
  "CMakeFiles/privacy_tests.dir/privacy_purpose_test.cc.o.d"
  "CMakeFiles/privacy_tests.dir/privacy_scale_test.cc.o"
  "CMakeFiles/privacy_tests.dir/privacy_scale_test.cc.o.d"
  "CMakeFiles/privacy_tests.dir/privacy_tuple_test.cc.o"
  "CMakeFiles/privacy_tests.dir/privacy_tuple_test.cc.o.d"
  "privacy_tests"
  "privacy_tests.pdb"
  "privacy_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/privacy_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/server_tests.dir/server_broker_test.cc.o"
  "CMakeFiles/server_tests.dir/server_broker_test.cc.o.d"
  "CMakeFiles/server_tests.dir/server_journal_crash_test.cc.o"
  "CMakeFiles/server_tests.dir/server_journal_crash_test.cc.o.d"
  "CMakeFiles/server_tests.dir/server_net_framer_test.cc.o"
  "CMakeFiles/server_tests.dir/server_net_framer_test.cc.o.d"
  "CMakeFiles/server_tests.dir/server_net_tcp_test.cc.o"
  "CMakeFiles/server_tests.dir/server_net_tcp_test.cc.o.d"
  "CMakeFiles/server_tests.dir/server_net_transport_test.cc.o"
  "CMakeFiles/server_tests.dir/server_net_transport_test.cc.o.d"
  "CMakeFiles/server_tests.dir/server_request_test.cc.o"
  "CMakeFiles/server_tests.dir/server_request_test.cc.o.d"
  "CMakeFiles/server_tests.dir/server_serve_test.cc.o"
  "CMakeFiles/server_tests.dir/server_serve_test.cc.o.d"
  "CMakeFiles/server_tests.dir/server_service_test.cc.o"
  "CMakeFiles/server_tests.dir/server_service_test.cc.o.d"
  "server_tests"
  "server_tests.pdb"
  "server_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/server_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for server_tests.
# This may be replaced when dependencies are built.

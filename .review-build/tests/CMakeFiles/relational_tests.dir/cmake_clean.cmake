file(REMOVE_RECURSE
  "CMakeFiles/relational_tests.dir/relational_csv_test.cc.o"
  "CMakeFiles/relational_tests.dir/relational_csv_test.cc.o.d"
  "CMakeFiles/relational_tests.dir/relational_expression_test.cc.o"
  "CMakeFiles/relational_tests.dir/relational_expression_test.cc.o.d"
  "CMakeFiles/relational_tests.dir/relational_multirecord_test.cc.o"
  "CMakeFiles/relational_tests.dir/relational_multirecord_test.cc.o.d"
  "CMakeFiles/relational_tests.dir/relational_query_test.cc.o"
  "CMakeFiles/relational_tests.dir/relational_query_test.cc.o.d"
  "CMakeFiles/relational_tests.dir/relational_sql_test.cc.o"
  "CMakeFiles/relational_tests.dir/relational_sql_test.cc.o.d"
  "CMakeFiles/relational_tests.dir/relational_table_test.cc.o"
  "CMakeFiles/relational_tests.dir/relational_table_test.cc.o.d"
  "CMakeFiles/relational_tests.dir/relational_value_test.cc.o"
  "CMakeFiles/relational_tests.dir/relational_value_test.cc.o.d"
  "relational_tests"
  "relational_tests.pdb"
  "relational_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relational_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

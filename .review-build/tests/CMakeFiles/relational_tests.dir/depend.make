# Empty dependencies file for relational_tests.
# This may be replaced when dependencies are built.

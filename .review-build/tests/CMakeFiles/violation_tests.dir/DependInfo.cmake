
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/violation_change_impact_test.cc" "tests/CMakeFiles/violation_tests.dir/violation_change_impact_test.cc.o" "gcc" "tests/CMakeFiles/violation_tests.dir/violation_change_impact_test.cc.o.d"
  "/root/repo/tests/violation_conflict_test.cc" "tests/CMakeFiles/violation_tests.dir/violation_conflict_test.cc.o" "gcc" "tests/CMakeFiles/violation_tests.dir/violation_conflict_test.cc.o.d"
  "/root/repo/tests/violation_detector_test.cc" "tests/CMakeFiles/violation_tests.dir/violation_detector_test.cc.o" "gcc" "tests/CMakeFiles/violation_tests.dir/violation_detector_test.cc.o.d"
  "/root/repo/tests/violation_incremental_test.cc" "tests/CMakeFiles/violation_tests.dir/violation_incremental_test.cc.o" "gcc" "tests/CMakeFiles/violation_tests.dir/violation_incremental_test.cc.o.d"
  "/root/repo/tests/violation_kernel_test.cc" "tests/CMakeFiles/violation_tests.dir/violation_kernel_test.cc.o" "gcc" "tests/CMakeFiles/violation_tests.dir/violation_kernel_test.cc.o.d"
  "/root/repo/tests/violation_live_monitor_test.cc" "tests/CMakeFiles/violation_tests.dir/violation_live_monitor_test.cc.o" "gcc" "tests/CMakeFiles/violation_tests.dir/violation_live_monitor_test.cc.o.d"
  "/root/repo/tests/violation_paper_example_test.cc" "tests/CMakeFiles/violation_tests.dir/violation_paper_example_test.cc.o" "gcc" "tests/CMakeFiles/violation_tests.dir/violation_paper_example_test.cc.o.d"
  "/root/repo/tests/violation_parallel_test.cc" "tests/CMakeFiles/violation_tests.dir/violation_parallel_test.cc.o" "gcc" "tests/CMakeFiles/violation_tests.dir/violation_parallel_test.cc.o.d"
  "/root/repo/tests/violation_policy_search_test.cc" "tests/CMakeFiles/violation_tests.dir/violation_policy_search_test.cc.o" "gcc" "tests/CMakeFiles/violation_tests.dir/violation_policy_search_test.cc.o.d"
  "/root/repo/tests/violation_probability_test.cc" "tests/CMakeFiles/violation_tests.dir/violation_probability_test.cc.o" "gcc" "tests/CMakeFiles/violation_tests.dir/violation_probability_test.cc.o.d"
  "/root/repo/tests/violation_report_io_test.cc" "tests/CMakeFiles/violation_tests.dir/violation_report_io_test.cc.o" "gcc" "tests/CMakeFiles/violation_tests.dir/violation_report_io_test.cc.o.d"
  "/root/repo/tests/violation_utility_test.cc" "tests/CMakeFiles/violation_tests.dir/violation_utility_test.cc.o" "gcc" "tests/CMakeFiles/violation_tests.dir/violation_utility_test.cc.o.d"
  "/root/repo/tests/violation_what_if_test.cc" "tests/CMakeFiles/violation_tests.dir/violation_what_if_test.cc.o" "gcc" "tests/CMakeFiles/violation_tests.dir/violation_what_if_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/.review-build/src/server/CMakeFiles/ppdb_server.dir/DependInfo.cmake"
  "/root/repo/.review-build/src/storage/CMakeFiles/ppdb_storage.dir/DependInfo.cmake"
  "/root/repo/.review-build/src/audit/CMakeFiles/ppdb_audit.dir/DependInfo.cmake"
  "/root/repo/.review-build/src/sim/CMakeFiles/ppdb_sim.dir/DependInfo.cmake"
  "/root/repo/.review-build/src/violation/CMakeFiles/ppdb_violation.dir/DependInfo.cmake"
  "/root/repo/.review-build/src/privacy/CMakeFiles/ppdb_privacy.dir/DependInfo.cmake"
  "/root/repo/.review-build/src/relational/CMakeFiles/ppdb_relational.dir/DependInfo.cmake"
  "/root/repo/.review-build/src/stats/CMakeFiles/ppdb_stats.dir/DependInfo.cmake"
  "/root/repo/.review-build/src/common/CMakeFiles/ppdb_common.dir/DependInfo.cmake"
  "/root/repo/.review-build/src/obs/CMakeFiles/ppdb_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/violation_tests.dir/violation_change_impact_test.cc.o"
  "CMakeFiles/violation_tests.dir/violation_change_impact_test.cc.o.d"
  "CMakeFiles/violation_tests.dir/violation_conflict_test.cc.o"
  "CMakeFiles/violation_tests.dir/violation_conflict_test.cc.o.d"
  "CMakeFiles/violation_tests.dir/violation_detector_test.cc.o"
  "CMakeFiles/violation_tests.dir/violation_detector_test.cc.o.d"
  "CMakeFiles/violation_tests.dir/violation_incremental_test.cc.o"
  "CMakeFiles/violation_tests.dir/violation_incremental_test.cc.o.d"
  "CMakeFiles/violation_tests.dir/violation_kernel_test.cc.o"
  "CMakeFiles/violation_tests.dir/violation_kernel_test.cc.o.d"
  "CMakeFiles/violation_tests.dir/violation_live_monitor_test.cc.o"
  "CMakeFiles/violation_tests.dir/violation_live_monitor_test.cc.o.d"
  "CMakeFiles/violation_tests.dir/violation_paper_example_test.cc.o"
  "CMakeFiles/violation_tests.dir/violation_paper_example_test.cc.o.d"
  "CMakeFiles/violation_tests.dir/violation_parallel_test.cc.o"
  "CMakeFiles/violation_tests.dir/violation_parallel_test.cc.o.d"
  "CMakeFiles/violation_tests.dir/violation_policy_search_test.cc.o"
  "CMakeFiles/violation_tests.dir/violation_policy_search_test.cc.o.d"
  "CMakeFiles/violation_tests.dir/violation_probability_test.cc.o"
  "CMakeFiles/violation_tests.dir/violation_probability_test.cc.o.d"
  "CMakeFiles/violation_tests.dir/violation_report_io_test.cc.o"
  "CMakeFiles/violation_tests.dir/violation_report_io_test.cc.o.d"
  "CMakeFiles/violation_tests.dir/violation_utility_test.cc.o"
  "CMakeFiles/violation_tests.dir/violation_utility_test.cc.o.d"
  "CMakeFiles/violation_tests.dir/violation_what_if_test.cc.o"
  "CMakeFiles/violation_tests.dir/violation_what_if_test.cc.o.d"
  "violation_tests"
  "violation_tests.pdb"
  "violation_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/violation_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

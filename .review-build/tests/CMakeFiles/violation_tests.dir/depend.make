# Empty dependencies file for violation_tests.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for storage_tests.
# This may be replaced when dependencies are built.

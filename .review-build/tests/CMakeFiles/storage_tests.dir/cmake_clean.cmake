file(REMOVE_RECURSE
  "CMakeFiles/storage_tests.dir/storage_crash_matrix_test.cc.o"
  "CMakeFiles/storage_tests.dir/storage_crash_matrix_test.cc.o.d"
  "CMakeFiles/storage_tests.dir/storage_database_io_test.cc.o"
  "CMakeFiles/storage_tests.dir/storage_database_io_test.cc.o.d"
  "CMakeFiles/storage_tests.dir/storage_fs_test.cc.o"
  "CMakeFiles/storage_tests.dir/storage_fs_test.cc.o.d"
  "CMakeFiles/storage_tests.dir/storage_journal_test.cc.o"
  "CMakeFiles/storage_tests.dir/storage_journal_test.cc.o.d"
  "storage_tests"
  "storage_tests.pdb"
  "storage_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storage_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for deadlock_tests.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/deadlock_tests.dir/common_deadlock_test.cc.o"
  "CMakeFiles/deadlock_tests.dir/common_deadlock_test.cc.o.d"
  "deadlock_tests"
  "deadlock_tests.pdb"
  "deadlock_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deadlock_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/obs_tests.dir/obs_metrics_test.cc.o"
  "CMakeFiles/obs_tests.dir/obs_metrics_test.cc.o.d"
  "CMakeFiles/obs_tests.dir/obs_trace_test.cc.o"
  "CMakeFiles/obs_tests.dir/obs_trace_test.cc.o.d"
  "obs_tests"
  "obs_tests.pdb"
  "obs_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/obs_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

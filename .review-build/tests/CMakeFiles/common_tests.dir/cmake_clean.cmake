file(REMOVE_RECURSE
  "CMakeFiles/common_tests.dir/common_circuit_breaker_test.cc.o"
  "CMakeFiles/common_tests.dir/common_circuit_breaker_test.cc.o.d"
  "CMakeFiles/common_tests.dir/common_deadline_test.cc.o"
  "CMakeFiles/common_tests.dir/common_deadline_test.cc.o.d"
  "CMakeFiles/common_tests.dir/common_logging_test.cc.o"
  "CMakeFiles/common_tests.dir/common_logging_test.cc.o.d"
  "CMakeFiles/common_tests.dir/common_macros_test.cc.o"
  "CMakeFiles/common_tests.dir/common_macros_test.cc.o.d"
  "CMakeFiles/common_tests.dir/common_retry_test.cc.o"
  "CMakeFiles/common_tests.dir/common_retry_test.cc.o.d"
  "CMakeFiles/common_tests.dir/common_rng_test.cc.o"
  "CMakeFiles/common_tests.dir/common_rng_test.cc.o.d"
  "CMakeFiles/common_tests.dir/common_status_test.cc.o"
  "CMakeFiles/common_tests.dir/common_status_test.cc.o.d"
  "CMakeFiles/common_tests.dir/common_string_util_test.cc.o"
  "CMakeFiles/common_tests.dir/common_string_util_test.cc.o.d"
  "CMakeFiles/common_tests.dir/common_thread_pool_test.cc.o"
  "CMakeFiles/common_tests.dir/common_thread_pool_test.cc.o.d"
  "common_tests"
  "common_tests.pdb"
  "common_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

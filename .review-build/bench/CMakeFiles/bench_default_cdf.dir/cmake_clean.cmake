file(REMOVE_RECURSE
  "CMakeFiles/bench_default_cdf.dir/bench_default_cdf.cpp.o"
  "CMakeFiles/bench_default_cdf.dir/bench_default_cdf.cpp.o.d"
  "bench_default_cdf"
  "bench_default_cdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_default_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

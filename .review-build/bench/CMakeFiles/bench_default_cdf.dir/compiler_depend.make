# Empty compiler generated dependencies file for bench_default_cdf.
# This may be replaced when dependencies are built.

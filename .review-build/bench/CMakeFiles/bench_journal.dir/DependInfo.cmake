
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_journal.cpp" "bench/CMakeFiles/bench_journal.dir/bench_journal.cpp.o" "gcc" "bench/CMakeFiles/bench_journal.dir/bench_journal.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/.review-build/src/audit/CMakeFiles/ppdb_audit.dir/DependInfo.cmake"
  "/root/repo/.review-build/src/sim/CMakeFiles/ppdb_sim.dir/DependInfo.cmake"
  "/root/repo/.review-build/src/violation/CMakeFiles/ppdb_violation.dir/DependInfo.cmake"
  "/root/repo/.review-build/src/privacy/CMakeFiles/ppdb_privacy.dir/DependInfo.cmake"
  "/root/repo/.review-build/src/relational/CMakeFiles/ppdb_relational.dir/DependInfo.cmake"
  "/root/repo/.review-build/src/stats/CMakeFiles/ppdb_stats.dir/DependInfo.cmake"
  "/root/repo/.review-build/src/common/CMakeFiles/ppdb_common.dir/DependInfo.cmake"
  "/root/repo/.review-build/src/storage/CMakeFiles/ppdb_storage.dir/DependInfo.cmake"
  "/root/repo/.review-build/src/obs/CMakeFiles/ppdb_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

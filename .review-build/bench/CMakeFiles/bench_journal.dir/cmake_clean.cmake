file(REMOVE_RECURSE
  "CMakeFiles/bench_journal.dir/bench_journal.cpp.o"
  "CMakeFiles/bench_journal.dir/bench_journal.cpp.o.d"
  "bench_journal"
  "bench_journal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_journal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_journal.
# This may be replaced when dependencies are built.

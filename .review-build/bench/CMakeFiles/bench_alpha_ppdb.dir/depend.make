# Empty dependencies file for bench_alpha_ppdb.
# This may be replaced when dependencies are built.

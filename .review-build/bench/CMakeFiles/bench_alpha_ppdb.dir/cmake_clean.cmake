file(REMOVE_RECURSE
  "CMakeFiles/bench_alpha_ppdb.dir/bench_alpha_ppdb.cpp.o"
  "CMakeFiles/bench_alpha_ppdb.dir/bench_alpha_ppdb.cpp.o.d"
  "bench_alpha_ppdb"
  "bench_alpha_ppdb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_alpha_ppdb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_server_broker.dir/bench_server_broker.cpp.o"
  "CMakeFiles/bench_server_broker.dir/bench_server_broker.cpp.o.d"
  "bench_server_broker"
  "bench_server_broker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_server_broker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

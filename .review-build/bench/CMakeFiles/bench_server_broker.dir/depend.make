# Empty dependencies file for bench_server_broker.
# This may be replaced when dependencies are built.

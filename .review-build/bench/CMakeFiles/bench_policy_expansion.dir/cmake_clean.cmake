file(REMOVE_RECURSE
  "CMakeFiles/bench_policy_expansion.dir/bench_policy_expansion.cpp.o"
  "CMakeFiles/bench_policy_expansion.dir/bench_policy_expansion.cpp.o.d"
  "bench_policy_expansion"
  "bench_policy_expansion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_policy_expansion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_dynamics.dir/bench_dynamics.cpp.o"
  "CMakeFiles/bench_dynamics.dir/bench_dynamics.cpp.o.d"
  "bench_dynamics"
  "bench_dynamics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dynamics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

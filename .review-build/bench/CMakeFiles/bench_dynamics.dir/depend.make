# Empty dependencies file for bench_dynamics.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_perf_violation.dir/bench_perf_violation.cpp.o"
  "CMakeFiles/bench_perf_violation.dir/bench_perf_violation.cpp.o.d"
  "bench_perf_violation"
  "bench_perf_violation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_perf_violation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

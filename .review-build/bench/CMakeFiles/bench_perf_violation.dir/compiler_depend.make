# Empty compiler generated dependencies file for bench_perf_violation.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_perf_audit.dir/bench_perf_audit.cpp.o"
  "CMakeFiles/bench_perf_audit.dir/bench_perf_audit.cpp.o.d"
  "bench_perf_audit"
  "bench_perf_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_perf_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

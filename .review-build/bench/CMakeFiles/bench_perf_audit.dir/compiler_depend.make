# Empty compiler generated dependencies file for bench_perf_audit.
# This may be replaced when dependencies are built.

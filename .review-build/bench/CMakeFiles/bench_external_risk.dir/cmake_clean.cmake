file(REMOVE_RECURSE
  "CMakeFiles/bench_external_risk.dir/bench_external_risk.cpp.o"
  "CMakeFiles/bench_external_risk.dir/bench_external_risk.cpp.o.d"
  "bench_external_risk"
  "bench_external_risk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_external_risk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_external_risk.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for bench_fig1_geometry.
# This may be replaced when dependencies are built.

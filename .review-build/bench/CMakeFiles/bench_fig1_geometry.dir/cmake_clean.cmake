file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_geometry.dir/bench_fig1_geometry.cpp.o"
  "CMakeFiles/bench_fig1_geometry.dir/bench_fig1_geometry.cpp.o.d"
  "bench_fig1_geometry"
  "bench_fig1_geometry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_geometry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
